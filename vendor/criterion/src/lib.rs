//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API surface the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `criterion_group!` / `criterion_main!`) with a simple
//! wall-clock measurement loop: warm up for `warm_up_time`, then collect up
//! to `sample_size` samples bounded by `measurement_time`, and report the
//! median nanoseconds per iteration on stdout as
//! `bench: <group>/<id> median_ns <n> samples <k>`.
//!
//! The output format is stable so tooling (`bench_report`) can parse it, but
//! there is no statistical analysis, plotting or comparison with saved
//! baselines.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level handle passed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies the command-line filter (substring match on bench ids).
    pub fn with_filter(mut self, filter: Option<String>) -> Self {
        self.filter = filter;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(500),
            filter: self.filter.clone(),
        }
    }
}

/// Identifier of one benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    filter: Option<String>,
}

impl BenchmarkGroup {
    /// Sets the target number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets how long to warm up before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Bounds the total measurement time.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs a benchmark closure.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id, |b| f(b));
        self
    }

    /// Runs a benchmark closure with an input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, |b| f(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id.id);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.samples_ns.sort_unstable();
        let median = bencher
            .samples_ns
            .get(bencher.samples_ns.len() / 2)
            .copied()
            .unwrap_or(0);
        println!(
            "bench: {full} median_ns {median} samples {}",
            bencher.samples_ns.len()
        );
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Times one benchmark body.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples_ns: Vec<u64>,
}

impl Bencher {
    /// Measures the closure: warm-up, then timed samples. Each sample is one
    /// invocation (batched only when a single call is faster than ~1µs, to
    /// keep timer quantisation out of the medians).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, and estimate the cost of one call while doing it.
        let warm_start = Instant::now();
        let mut calls: u32 = 0;
        while warm_start.elapsed() < self.warm_up || calls == 0 {
            std::hint::black_box(f());
            calls += 1;
            if calls >= 1_000_000 {
                break;
            }
        }
        let per_call = warm_start.elapsed().as_nanos() / u128::from(calls.max(1));
        let batch: u64 = if per_call >= 1_000 {
            1
        } else {
            (1_000 / per_call.max(1)) as u64 + 1
        };

        let deadline = Instant::now() + self.measurement;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let ns = start.elapsed().as_nanos() as u64 / batch;
            self.samples_ns.push(ns);
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

/// Re-export spelled like criterion's: prevents the optimiser from deleting
/// benchmark bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(filter: Option<String>) {
            let mut criterion = $crate::Criterion::default().with_filter(filter);
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench`; anything else positional is a
            // filter, mirroring criterion's CLI closely enough for `cargo
            // bench <filter>`.
            let filter = std::env::args()
                .skip(1)
                .find(|a| !a.starts_with("--"));
            $( $group(filter.clone()); )+
        }
    };
}
