//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace is built in a hermetic environment with no access to
//! crates.io, and nothing in it actually serialises values — the `serde`
//! derives on the type definitions only exist so that downstream users can
//! opt into serialisation later. These derive macros therefore accept the
//! full `#[derive(Serialize, Deserialize)]` + `#[serde(...)]` surface used
//! in the workspace and expand to nothing; the matching trait impls come
//! from blanket impls in the sibling `serde` stub.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
