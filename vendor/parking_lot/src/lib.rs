//! Offline stand-in for `parking_lot`: wraps `std::sync` primitives behind
//! parking_lot's non-poisoning API (a poisoned std lock is recovered rather
//! than propagated, matching parking_lot's behaviour of not poisoning).

use std::fmt;
use std::sync::{self, TryLockError};

/// A mutex whose `lock` never fails.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// A held [`Mutex`] lock.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the lock if it is free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }
}
