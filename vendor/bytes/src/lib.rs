//! Offline stand-in for the `bytes` crate: `Vec<u8>`-backed [`Bytes`] /
//! [`BytesMut`] and big-endian [`Buf`] / [`BufMut`], covering the codec's
//! needs (no refcounted slicing; `freeze` simply transfers ownership).

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Copies the contents into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Appends raw bytes (same as the real crate's inherent method, so the
    /// `BufMut` import is not required just to extend).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Splits off and returns the first `at` bytes, leaving the rest.
    ///
    /// The real crate does this without copying via refcounted buffers; the
    /// stub pays a copy-and-shift, which is fine at stub scale.
    ///
    /// # Panics
    ///
    /// Panics if `at` is out of bounds, like the real crate.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let head = self.data[..at].to_vec();
        self.data.drain(..at);
        BytesMut { data: head }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Reading big-endian values off the front of a buffer.
pub trait Buf {
    /// Discards the first `n` bytes.
    fn advance(&mut self, n: usize);
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.advance(1);
        v
    }

    fn get_u32(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        let v = u32::from_be_bytes(head.try_into().expect("4 bytes"));
        *self = rest;
        v
    }

    fn get_u64(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        let v = u64::from_be_bytes(head.try_into().expect("8 bytes"));
        *self = rest;
        v
    }
}

/// Appending big-endian values to the back of a buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_i64(&mut self, v: i64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(42);
        buf.put_i64(-1);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        let mut view: &[u8] = &frozen;
        assert_eq!(view.get_u8(), 7);
        assert_eq!(view.get_u32(), 0xDEAD_BEEF);
        assert_eq!(view.get_u64(), 42);
        assert_eq!(view.get_u64() as i64, -1);
        assert_eq!(view, b"xy");
        assert_eq!(frozen.to_vec().len(), 1 + 4 + 8 + 8 + 2);
    }
}
