//! Offline stand-in for the parts of `crossbeam` the workspace uses:
//! `channel::{unbounded, Sender, Receiver, RecvTimeoutError}`, backed by
//! `std::sync::mpsc`. The transports here are single-producer per ordered
//! role pair, so mpsc's semantics are sufficient.

pub mod channel {
    //! Unbounded FIFO channels.

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::RecvTimeoutError;

    /// The sending half of an unbounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T>(mpsc::Sender<T>);

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only if the receiving half was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the oldest message, blocking until one arrives or every
        /// sender is dropped.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.recv()
        }

        /// Dequeues the oldest message, blocking up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Dequeues the oldest message if one is already queued.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_timeout() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
