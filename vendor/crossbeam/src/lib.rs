//! Offline stand-in for the parts of `crossbeam` the workspace uses:
//!
//! * `channel::{unbounded, Sender, Receiver, RecvTimeoutError}`, backed by
//!   `std::sync::mpsc` (the transports here are single-producer per ordered
//!   role pair, so mpsc's semantics are sufficient);
//! * `deque::{Worker, Stealer, Injector, Steal}`, the work-stealing deque
//!   API of `crossbeam-deque`, backed by mutex-protected `VecDeque`s — the
//!   same signatures, without the lock-free internals; swapping the real
//!   crate back in is a one-line change in the root `Cargo.toml`;
//! * `utils::Backoff`, an exponential spin/yield backoff for idle loops.

pub mod deque {
    //! Work-stealing FIFO deques: each worker owns a [`Worker`], hands out
    //! [`Stealer`]s to its peers, and a shared [`Injector`] seeds the pool.
    //!
    //! The mutex-backed implementation keeps the exact `crossbeam-deque`
    //! surface (including the three-valued [`Steal`] result — this stub's
    //! locks never report [`Steal::Retry`], but callers must handle it so
    //! they stay correct against the real lock-free crate).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Mutex};

    /// The result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if the attempt succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                Steal::Empty | Steal::Retry => None,
            }
        }

        /// Returns `true` if the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    fn lock<T>(queue: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The owner's end of a work-stealing queue.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a FIFO worker queue (tasks pop in push order).
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Enqueues a task on the owner's end.
        pub fn push(&self, task: T) {
            lock(&self.queue).push_back(task);
        }

        /// Dequeues the owner's next task.
        pub fn pop(&self) -> Option<T> {
            lock(&self.queue).pop_front()
        }

        /// Returns `true` if the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }

        /// A handle other workers use to steal from this queue.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> fmt::Debug for Worker<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Worker { .. }")
        }
    }

    /// A thief's handle to another worker's queue.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Steals the oldest task from the victim's queue.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.queue).pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Returns `true` if the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> fmt::Debug for Stealer<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Stealer { .. }")
        }
    }

    /// A shared FIFO all workers can push to and steal from; seeds the pool.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// An empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task.
        pub fn push(&self, task: T) {
            lock(&self.queue).push_back(task);
        }

        /// Steals the oldest task.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.queue).pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Returns `true` if the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    impl<T> fmt::Debug for Injector<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Injector { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn worker_pops_fifo_and_stealers_take_the_oldest() {
            let w = Worker::new_fifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(s.steal(), Steal::Success(1));
            assert_eq!(w.pop(), Some(2));
            assert_eq!(s.clone().steal(), Steal::Success(3));
            assert_eq!(s.steal(), Steal::Empty);
            assert!(w.is_empty() && s.is_empty());
        }

        #[test]
        fn injector_is_shared_fifo() {
            let inj = Injector::new();
            assert!(inj.is_empty());
            inj.push("a");
            inj.push("b");
            assert_eq!(inj.steal().success(), Some("a"));
            assert_eq!(inj.steal().success(), Some("b"));
            assert!(inj.steal().is_empty());
        }
    }
}

pub mod utils {
    //! Small concurrency utilities.

    /// Exponential backoff for spin loops: spin a few rounds, then yield the
    /// thread, mirroring `crossbeam_utils::Backoff`.
    #[derive(Debug, Default)]
    pub struct Backoff {
        step: u32,
    }

    impl Backoff {
        const SPIN_LIMIT: u32 = 6;
        const YIELD_LIMIT: u32 = 10;

        /// A fresh backoff.
        pub fn new() -> Self {
            Backoff::default()
        }

        /// Resets the backoff to the spinning phase.
        pub fn reset(&mut self) {
            self.step = 0;
        }

        /// Backs off one round: busy-spin while young, yield once saturated.
        pub fn snooze(&mut self) {
            if self.step <= Self::SPIN_LIMIT {
                for _ in 0..1u32 << self.step {
                    std::hint::spin_loop();
                }
            } else {
                std::thread::yield_now();
            }
            if self.step <= Self::YIELD_LIMIT {
                self.step += 1;
            }
        }

        /// Whether the backoff has saturated (callers may choose to park).
        pub fn is_completed(&self) -> bool {
            self.step > Self::YIELD_LIMIT
        }
    }
}

pub mod channel {
    //! Unbounded FIFO channels.

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::RecvTimeoutError;

    /// The sending half of an unbounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T>(mpsc::Sender<T>);

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only if the receiving half was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the oldest message, blocking until one arrives or every
        /// sender is dropped.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.recv()
        }

        /// Dequeues the oldest message, blocking up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Dequeues the oldest message if one is already queued.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_timeout() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
