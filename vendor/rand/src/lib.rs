//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! Only the pieces the workspace uses are provided: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_bool` and `Rng::gen_range` over
//! integer ranges. The generator is SplitMix64 — deterministic, seedable and
//! statistically fine for the randomized-protocol generators and property
//! tests this repository uses it for (nothing here is cryptographic).

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator seeded from a single `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, exactly like rand's `gen_bool`.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Samples uniformly from an integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges that can be sampled from (integer `a..b` and `a..=b`).
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integers that uniform ranges can be sampled over. A single blanket
/// `SampleRange` impl per range type (below) keeps type inference working
/// exactly as with the real crate's `SampleUniform`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Widens to `u128` (two's-complement for signed types).
    fn to_u128(self) -> u128;
    /// The inverse of [`SampleUniform::to_u128`], truncating.
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u128(self) -> u128 {
                self as u128
            }
            fn from_u128(v: u128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let span = self.end.to_u128().wrapping_sub(self.start.to_u128());
        let offset = u128::from(rng.next_u64()) % span;
        T::from_u128(self.start.to_u128().wrapping_add(offset))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from an empty range");
        let span = end.to_u128().wrapping_sub(start.to_u128()).wrapping_add(1);
        if span == 0 {
            return T::from_u128(u128::from(rng.next_u64()));
        }
        let offset = u128::from(rng.next_u64()) % span;
        T::from_u128(start.to_u128().wrapping_add(offset))
    }
}

/// The named generators.
pub mod rngs {
    pub use super::StdRng;
}

/// A deterministic, seedable generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        StdRng { state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(0..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
