//! Offline stand-in for the `serde` crate.
//!
//! See `vendor/serde_derive` for the rationale. `Serialize` and
//! `Deserialize` are exposed both as derive macros (expanding to nothing)
//! and as marker traits with blanket impls, so `#[derive(Serialize)]` and
//! `T: Serialize` bounds both compile without pulling in the real crate.
//! Swapping the real serde back in is a one-line change in the workspace
//! manifest; no source file needs to change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; satisfied by every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub mod de {
    pub use crate::DeserializeOwned;
}
