//! Offline stand-in for the `proptest` crate.
//!
//! The workspace is built hermetically (no crates.io), so this crate provides
//! the subset of proptest the test-suites use: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map` / `prop_recursive` / `boxed`, [`Just`],
//! [`any`], integer-range and simple-regex string strategies, tuple
//! strategies, [`prop_oneof!`] and [`collection::vec`].
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case reports the assertion as-is;
//! * **deterministic** — every test function derives its RNG seed from its
//!   own name, so runs are reproducible without a persistence file;
//! * `prop_assert!`/`prop_assert_eq!` are plain `assert!`/`assert_eq!`.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic RNG driving the strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose seed is derived from a name (FNV-1a), so each test
    /// function gets a stable but distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates the leaves and
    /// `recurse` wraps a strategy for depth `d` into one for depth `d + 1`.
    /// `_desired_size` and `_expected_branch_size` are accepted for API
    /// compatibility and ignored (no shrinking, so no size budget).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // Mix leaves back in at every level so expected sizes stay small.
            let deeper = recurse(strat).boxed();
            strat = UnionStrategy {
                options: vec![leaf.clone(), deeper],
            }
            .boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// The strategy behind [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between several strategies (the engine of `prop_oneof!`).
pub struct UnionStrategy<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> UnionStrategy<T> {
    /// A union over the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        UnionStrategy { options }
    }
}

impl<T> Strategy for UnionStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// String strategies from a tiny regex subset: a sequence of elements, each a
/// literal character or a `[class]` (with `a-z` ranges), optionally followed
/// by a `{lo,hi}` / `{n}` repetition. Enough for the identifier- and
/// payload-shaped patterns the test-suites use; anything unparseable is
/// treated as a literal.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // One element: a class or a literal character.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let Some(close) = chars[i..].iter().position(|&c| c == ']') else {
                    out.push(chars[i]);
                    i += 1;
                    continue;
                };
                let class: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                expand_class(&class)
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional repetition.
            let mut repeat = (1, 1);
            if i < chars.len() && chars[i] == '{' {
                if let Some(close) = chars[i..].iter().position(|&c| c == '}') {
                    let body: String = chars[i + 1..i + close].iter().collect();
                    i += close + 1;
                    repeat = parse_repeat_body(&body);
                }
            }
            let (lo, hi) = repeat;
            if alphabet.is_empty() {
                continue;
            }
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..len {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }
}

fn expand_class(src: &str) -> Vec<char> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
            for c in lo..=hi {
                if let Some(c) = char::from_u32(c) {
                    out.push(c);
                }
            }
            i += 3;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    out
}

fn parse_repeat_body(body: &str) -> (usize, usize) {
    match body.split_once(',') {
        Some((lo, hi)) => {
            let lo = lo.trim().parse().unwrap_or(0);
            let hi = hi.trim().parse().unwrap_or(lo);
            (lo, hi.max(lo))
        }
        None => {
            let n = body.trim().parse().unwrap_or(1);
            (n, n)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec`s with the given element strategy and length
    /// range.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.next_u64() as usize % span as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Declares property tests. Each function runs `cases` times with fresh
/// random inputs drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                        $body
                    }));
                    if let Err(payload) = result {
                        eprintln!("proptest case {case}/{} failed (no shrinking in the offline stub)", config.cases);
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// `assert!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::UnionStrategy::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..200 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::deterministic("regex");
        for _ in 0..100 {
            let s = "[a-c0-1 ]{0,16}".generate(&mut rng);
            assert!(s.len() <= 16);
            assert!(s.chars().all(|c| "abc01 ".contains(c)));
        }
    }

    #[test]
    fn union_and_map_compose() {
        let mut rng = TestRng::deterministic("union");
        let strat = prop_oneof![Just(1u32), (10u32..20).prop_map(|x| x * 2)];
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v == 1 || (20..40).contains(&v));
        }
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Debug)]
        enum T {
            Leaf(u8),
            Node(Vec<T>),
        }
        let strat = (0u8..5).prop_map(T::Leaf).prop_recursive(3, 24, 2, |inner| {
            collection::vec(inner, 0..3).prop_map(T::Node)
        });
        let mut rng = TestRng::deterministic("recursion");
        for _ in 0..50 {
            let _ = strat.generate(&mut rng);
        }
    }
}
