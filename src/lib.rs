//! `zooid` — multiparty session types with a well-typed-by-construction
//! process DSL, an execution runtime and executable metatheory checkers.
//!
//! This is the facade crate of the workspace; it re-exports the individual
//! layers so that applications (and the examples and integration tests in
//! this repository) can depend on a single crate:
//!
//! * [`mpst`] — global/local session types, semantic trees, projection, the
//!   asynchronous labelled-transition semantics and the trace-equivalence
//!   checkers (§3 of the paper);
//! * [`proc`] — the session-typed process language, its typing system and its
//!   operational semantics (§4.1–4.3);
//! * [`dsl`] — the Zooid DSL: well-typed-by-construction processes, the
//!   protocol projection workflow and equality up to unravelling (§4.2, §5);
//! * [`runtime`] — extraction of processes to executable programs, transports
//!   and the multi-participant session harness (§4.4–4.5);
//! * [`cfsm`] — communicating finite-state machines compiled from local
//!   types, with safety and liveness exploration;
//! * [`server`] — the multi-session server: a protocol registry compiling
//!   each protocol once, a sharded scheduler multiplexing thousands of
//!   concurrent sessions on a bounded worker pool, and compiled per-role
//!   monitors (see `examples/load_sim.rs`).
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for the ring protocol of §2.3 implemented,
//! checked and executed end to end.

#![forbid(unsafe_code)]

pub use zooid_cfsm as cfsm;
pub use zooid_dsl as dsl;
pub use zooid_mpst as mpst;
pub use zooid_proc as proc;
pub use zooid_runtime as runtime;
pub use zooid_server as server;
