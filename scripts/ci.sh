#!/usr/bin/env bash
# Tier-1 CI for the zooid workspace: release build, full test-suite, and a
# bench-report smoke run that validates the machine-readable benchmark
# report (BENCH_pr10.json schema) without paying full measurement budgets.
#
# The smoke bench-report is also the explore_parallel smoke suite: it runs
# the work-stealing explorer at threads=2 and asserts verdict and
# visited-configuration agreement with the sequential reduced engine, so a
# determinism or termination regression fails CI even before the (slower)
# proptest differential suites get their turn.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release

echo "== cargo test --workspace -q"
# The root manifest is both a package and a workspace: a bare `cargo test`
# would cover only the root crate's 17 integration tests. --workspace runs
# every crate's unit, integration (incl. the differential suites) and doc
# tests.
cargo test --workspace -q

echo "== batch differential suite (batched vs slab-compiled vs tree executors)"
# Already covered by --workspace above, but run it by name so a batching
# regression is called out on its own line before the bench smoke.
cargo test --release -q -p zooid-runtime --test batch_exec

echo "== TCP hardening suite (memory-vs-TCP differential, hostile framing)"
cargo test --release -q -p zooid-runtime --test tcp_differential

echo "== networked serving plane suite (mux protocol, admission control)"
cargo test --release -q -p zooid-server --test net_plane

echo "== incident capture suite (slab / batch-demotion / TCP-mux violations replay)"
cargo test --release -q -p zooid-server --test incidents

echo "== histogram property suite (merge monoid, bucket bounds, percentile monotonicity)"
cargo test --release -q -p zooid-server --test obs_props

echo "== hostile-world campaign (fault injection, byzantine casts, quarantine; pinned seeds)"
# Every fault schedule in the suite is pinned by seed (11, 42, 97, 98,
# 0xFA17), so a failure here is a behavioural regression, never flake.
cargo test --release -q -p zooid-server --test hostile_campaign

echo "== durability suite (kill-at-every-quantum checkpoints, WAL round-trips, arena faults)"
cargo test --release -q -p zooid-runtime --test durability

echo "== crash-recovery suite (drain/migrate, tampered checkpoints, restart-from-checkpoint)"
cargo test --release -q -p zooid-server --test crash_recovery

echo "== bench-report smoke (includes explore_parallel threads=2 agreement checks)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
report="$tmpdir/BENCH_pr10.json"
cargo run --release -p zooid-bench --bin bench-report -- --smoke --out "$report" >/dev/null

echo "== validating $report"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$report" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)

assert report["pr"] == 10, f"unexpected pr marker: {report['pr']}"
benches = report["benches"]
families = {e["bench"] for e in benches}
for family in (
    "cfsm_explore",
    "cfsm_explore_por",
    "cfsm_explore_par",
    "endpoint_step",
    "batch_step",
    "obs_overhead",
    "fault_overhead",
    "server_throughput",
    "server_throughput_tcp",
    "monitor_action",
    "checkpoint_restore",
    "wal_append",
):
    assert family in families, f"missing {family} family, got {sorted(families)}"
for entry in benches:
    for key in ("bench", "case", "median_ns", "baseline_ns", "speedup", "baseline"):
        assert key in entry, f"entry missing {key}: {entry}"
endpoint = [e for e in benches if e["bench"] == "endpoint_step"]
assert all(e["median_ns"] > 0 and e["baseline_ns"] > 0 for e in endpoint), \
    "endpoint_step medians must be positive"
assert any("chain/" in e["case"] for e in endpoint) and any(
    "fanout/" in e["case"] for e in endpoint
), "endpoint_step must cover chain and fanout"
batch = [e for e in benches if e["bench"] == "batch_step"]
assert all(e["median_ns"] > 0 and e["baseline_ns"] > 0 for e in batch), \
    "batch_step medians must be positive"
assert any("ring/" in e["case"] for e in batch) and any(
    "fanout_loop/" in e["case"] for e in batch
), "batch_step must cover ring and fanout_loop"
assert all("/w" in e["case"] and "peraction" in e["case"] for e in batch), \
    "batch_step cases must record batch width and per-action units"
obs = [e for e in benches if e["bench"] == "obs_overhead"]
assert all(e["median_ns"] > 0 and e["baseline_ns"] > 0 for e in obs), \
    "obs_overhead medians must be positive"
assert all("/w" in e["case"] and "peraction" in e["case"] for e in obs), \
    "obs_overhead cases must record batch width and per-action units"
# The observability plane must cost nearly nothing: instrumented stepping
# within 10% of the bare loop (speedup = bare/instrumented >= 0.90), with
# a small extra allowance for smoke-budget noise on the shared CI box.
for e in obs:
    assert e["speedup"] >= 0.85, \
        f"obs instrumentation overhead out of budget: {e}"
fault = [e for e in benches if e["bench"] == "fault_overhead"]
assert all(e["median_ns"] > 0 and e["baseline_ns"] > 0 for e in fault), \
    "fault_overhead medians must be positive"
assert all("peraction" in e["case"] for e in fault), \
    "fault_overhead cases must use per-action units"
# An empty-plan FaultyTransport must be a near-free wrapper: wrapped
# stepping within 10% of the bare transport (speedup = bare/wrapped
# >= 0.90), with the same smoke-noise allowance as obs_overhead.
for e in fault:
    assert e["speedup"] >= 0.85, \
        f"fault wrapper tax out of budget: {e}"
server = [e for e in benches if e["bench"] == "server_throughput"]
assert all(e["median_ns"] > 0 for e in server), "server medians must be positive"
assert any("shards4" in e["case"] for e in server), "expected a 4-shard case"
assert any("notrace" in e["case"] for e in server), "expected a notrace case"
tcp = [e for e in benches if e["bench"] == "server_throughput_tcp"]
assert all(e["median_ns"] > 0 and e["baseline_ns"] > 0 for e in tcp), \
    "server_throughput_tcp needs a live in-memory baseline"
assert any("conns" in e["case"] and "shards" in e["case"] for e in tcp), \
    "server_throughput_tcp cases must record connection and shard counts"
monitor = [e for e in benches if e["bench"] == "monitor_action"]
assert all(e["median_ns"] > 0 and e["baseline_ns"] > 0 for e in monitor)
ckpt = [e for e in benches if e["bench"] == "checkpoint_restore"]
assert all(e["median_ns"] > 0 and e["baseline_ns"] > 0 for e in ckpt), \
    "checkpoint_restore medians must be positive"
assert all("/restore" in e["case"] and "/bytes" in e["case"] for e in ckpt), \
    "checkpoint_restore cases must record checkpoint sizes"
# No speedup floor here on purpose: restore pays full re-validation on
# decode, so replay can win at shallow kill points. The family tracks the
# latency trajectory; it does not claim restore beats replay.
wal = [e for e in benches if e["bench"] == "wal_append"]
assert all(e["median_ns"] > 0 and e["baseline_ns"] > 0 for e in wal), \
    "wal_append densities must be positive"
assert all("bytesperaction" in e["case"] for e in wal), \
    "wal_append cases must use bytes-per-action units"
# The columnar WAL encoding must beat naive per-record serialization
# decisively on every case (speedup = naive/columnar bytes per action).
for e in wal:
    assert e["speedup"] >= 1.3, \
        f"columnar WAL density win below 1.3x: {e}"
explore = [e for e in benches if e["bench"] == "cfsm_explore"]
assert all(e["median_ns"] > 0 for e in explore), "cfsm_explore medians must be positive"
por = [e for e in benches if e["bench"] == "cfsm_explore_por"]
assert all(e["median_ns"] > 0 and e["baseline_ns"] > 0 for e in por)
assert all("residual" in e["case"] for e in por), "POR cases must record residual sizes"
par = [e for e in benches if e["bench"] == "cfsm_explore_par"]
assert any("threads1" in e["case"] for e in par), "expected a 1-thread case"
assert any("threads2" in e["case"] for e in par), "expected a 2-thread case"
assert all(e["median_ns"] > 0 for e in par), "parallel medians must be positive"
print(
    f"OK: {len(benches)} entries, {len(explore)} cfsm_explore, {len(por)} cfsm_explore_por, "
    f"{len(par)} cfsm_explore_par, {len(endpoint)} endpoint_step, {len(batch)} batch_step, "
    f"{len(obs)} obs_overhead, {len(fault)} fault_overhead, {len(server)} server_throughput, "
    f"{len(tcp)} server_throughput_tcp, {len(monitor)} monitor_action, "
    f"{len(ckpt)} checkpoint_restore, {len(wal)} wal_append cases"
)
EOF
else
    # Fallback when python3 is unavailable: shape-check with grep.
    grep -q '"pr": 10' "$report"
    grep -q '"bench": "cfsm_explore"' "$report"
    grep -q '"bench": "cfsm_explore_por"' "$report"
    grep -q '"bench": "cfsm_explore_par"' "$report"
    grep -q 'threads2' "$report"
    grep -q '"bench": "endpoint_step"' "$report"
    grep -q '"bench": "batch_step"' "$report"
    grep -q '"bench": "obs_overhead"' "$report"
    grep -q '"bench": "fault_overhead"' "$report"
    grep -q 'peraction' "$report"
    grep -q '"bench": "server_throughput"' "$report"
    grep -q '"bench": "server_throughput_tcp"' "$report"
    grep -q 'notrace' "$report"
    grep -q '"bench": "monitor_action"' "$report"
    grep -q '"bench": "checkpoint_restore"' "$report"
    grep -q '"bench": "wal_append"' "$report"
    grep -q 'bytesperaction' "$report"
    echo "OK (grep fallback): all twelve bench families present"
fi

echo "== CI green"
