#!/usr/bin/env bash
# Tier-1 CI for the zooid workspace: release build, full test-suite, and a
# bench-report smoke run that validates the machine-readable benchmark
# report (BENCH_pr3.json schema) without paying full measurement budgets.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "== bench-report smoke"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
report="$tmpdir/BENCH_pr3.json"
cargo run --release -p zooid-bench --bin bench-report -- --smoke --out "$report" >/dev/null

echo "== validating $report"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$report" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)

assert report["pr"] == 3, f"unexpected pr marker: {report['pr']}"
benches = report["benches"]
families = {e["bench"] for e in benches}
for family in ("cfsm_explore", "server_throughput", "monitor_action"):
    assert family in families, f"missing {family} family, got {sorted(families)}"
for entry in benches:
    for key in ("bench", "case", "median_ns", "baseline_ns", "speedup", "baseline"):
        assert key in entry, f"entry missing {key}: {entry}"
server = [e for e in benches if e["bench"] == "server_throughput"]
assert all(e["median_ns"] > 0 for e in server), "server medians must be positive"
assert any("shards4" in e["case"] for e in server), "expected a 4-shard case"
monitor = [e for e in benches if e["bench"] == "monitor_action"]
assert all(e["median_ns"] > 0 and e["baseline_ns"] > 0 for e in monitor)
explore = [e for e in benches if e["bench"] == "cfsm_explore"]
assert all(e["median_ns"] > 0 for e in explore), "cfsm_explore medians must be positive"
print(
    f"OK: {len(benches)} entries, {len(explore)} cfsm_explore, "
    f"{len(server)} server_throughput, {len(monitor)} monitor_action cases"
)
EOF
else
    # Fallback when python3 is unavailable: shape-check with grep.
    grep -q '"pr": 3' "$report"
    grep -q '"bench": "cfsm_explore"' "$report"
    grep -q '"bench": "server_throughput"' "$report"
    grep -q '"bench": "monitor_action"' "$report"
    echo "OK (grep fallback): cfsm_explore/server_throughput/monitor_action present"
fi

echo "== CI green"
