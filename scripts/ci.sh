#!/usr/bin/env bash
# Tier-1 CI for the zooid workspace: release build, full test-suite, and a
# bench-report smoke run that validates the machine-readable benchmark
# report (BENCH_pr2.json schema) without paying full measurement budgets.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "== bench-report smoke"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
report="$tmpdir/BENCH_pr2.json"
cargo run --release -p zooid-bench --bin bench-report -- --smoke --out "$report" >/dev/null

echo "== validating $report"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$report" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)

assert report["pr"] == 2, f"unexpected pr marker: {report['pr']}"
benches = report["benches"]
families = {e["bench"] for e in benches}
assert "cfsm_explore" in families, f"missing cfsm_explore family, got {sorted(families)}"
for entry in benches:
    for key in ("bench", "case", "median_ns", "baseline_ns", "speedup", "baseline"):
        assert key in entry, f"entry missing {key}: {entry}"
explore = [e for e in benches if e["bench"] == "cfsm_explore"]
assert all(e["median_ns"] > 0 for e in explore), "cfsm_explore medians must be positive"
print(f"OK: {len(benches)} entries, {len(explore)} cfsm_explore cases")
EOF
else
    # Fallback when python3 is unavailable: shape-check with grep.
    grep -q '"pr": 2' "$report"
    grep -q '"bench": "cfsm_explore"' "$report"
    echo "OK (grep fallback): cfsm_explore family present"
fi

echo "== CI green"
