//! Counterexample replay: every violation trace reported by the interned
//! engine, stepped through [`System::successors`] from the initial
//! configuration, must actually reach the offending configuration.

mod common;

use proptest::prelude::*;

use common::sabotage;
use zooid_cfsm::{Cfsm, System, Verdict, ViolationKind};
use zooid_mpst::generators::{self, RandomProtocol};
use zooid_mpst::local::LocalType;
use zooid_mpst::{Role, Sort};

fn r(name: &str) -> Role {
    Role::new(name)
}

fn machine(role: &str, local: &LocalType) -> Cfsm {
    Cfsm::from_local_type(r(role), local).unwrap()
}

/// Replays every violation trace of `outcome` through `System::successors`
/// and checks it ends at the reported configuration.
fn assert_traces_replay(system: &System, bound: usize, max_configs: usize, context: &str) {
    let outcome = system.explore(bound, max_configs);
    for (i, violation) in outcome.violations.iter().enumerate() {
        let mut current = system.initial();
        for (j, step) in violation.trace.iter().enumerate() {
            let succs = system.successors(&current, bound);
            assert!(
                succs.contains(&step.config),
                "{context}: violation {i} step {j} ({} {}) not replayable",
                step.role,
                step.action,
            );
            current = step.config.clone();
        }
        assert_eq!(
            current, violation.config,
            "{context}: violation {i} trace does not end at the reported configuration"
        );
        // BFS parent pointers: the trace is a shortest path, so it can never
        // be longer than the number of visited configurations.
        assert!(violation.trace.len() < outcome.configurations.max(1) + 1);
    }
}

#[test]
fn deadlock_orphan_and_reception_traces_replay() {
    let cases: Vec<(&str, System)> = vec![
        (
            "mutual wait",
            System::new(vec![
                machine("p", &LocalType::recv1(r("q"), "l", Sort::Nat, LocalType::End)),
                machine("q", &LocalType::recv1(r("p"), "l", Sort::Nat, LocalType::End)),
            ])
            .unwrap(),
        ),
        (
            "orphan",
            System::new(vec![
                machine("p", &LocalType::send1(r("q"), "l", Sort::Nat, LocalType::End)),
                machine("q", &LocalType::End),
            ])
            .unwrap(),
        ),
        (
            "reception error",
            System::new(vec![
                machine("p", &LocalType::send1(r("q"), "ping", Sort::Nat, LocalType::End)),
                machine("q", &LocalType::recv1(r("p"), "pong", Sort::Nat, LocalType::End)),
            ])
            .unwrap(),
        ),
        (
            // A deadlock several steps deep: p and q exchange a message
            // correctly, then both wait for each other.
            "deep deadlock",
            System::new(vec![
                machine(
                    "p",
                    &LocalType::send1(
                        r("q"),
                        "go",
                        Sort::Nat,
                        LocalType::recv1(r("q"), "l", Sort::Nat, LocalType::End),
                    ),
                ),
                machine(
                    "q",
                    &LocalType::recv1(
                        r("p"),
                        "go",
                        Sort::Nat,
                        LocalType::recv1(r("p"), "l", Sort::Nat, LocalType::End),
                    ),
                ),
            ])
            .unwrap(),
        ),
    ];
    for (name, system) in &cases {
        for bound in [1, 2, 4] {
            assert_traces_replay(system, bound, 10_000, name);
        }
    }
}

#[test]
fn deep_deadlock_traces_are_nonempty_and_shortest() {
    let system = System::new(vec![
        machine(
            "p",
            &LocalType::send1(
                r("q"),
                "go",
                Sort::Nat,
                LocalType::recv1(r("q"), "l", Sort::Nat, LocalType::End),
            ),
        ),
        machine(
            "q",
            &LocalType::recv1(
                r("p"),
                "go",
                Sort::Nat,
                LocalType::recv1(r("p"), "l", Sort::Nat, LocalType::End),
            ),
        ),
    ])
    .unwrap();
    let outcome = system.explore(2, 10_000);
    assert_eq!(outcome.verdict(), Verdict::Unsafe);
    let deadlock = outcome
        .violations
        .iter()
        .find(|v| v.kind == ViolationKind::Deadlock)
        .expect("a deadlock");
    // Reaching the mutual wait takes exactly two steps: p sends, q receives.
    assert_eq!(deadlock.trace.len(), 2);
    assert_eq!(deadlock.trace[0].role, r("p"));
    assert_eq!(deadlock.trace[1].role, r("q"));
}

#[test]
fn sabotaged_case_studies_produce_replayable_traces() {
    for (name, g) in [
        ("ring3", generators::ring3()),
        ("two_buyer", generators::two_buyer()),
        ("pipeline", generators::pipeline()),
        ("fanout/3", generators::fanout_n(3)),
    ] {
        let participants = g.participants().len();
        for cut in 0..participants {
            let Some(system) = sabotage(&g, cut) else { continue };
            for bound in [1, 2] {
                assert_traces_replay(&system, bound, 50_000, &format!("{name} cut {cut}"));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random protocols, randomly sabotaged: every reported violation trace
    /// must replay, whatever shape the violation takes.
    #[test]
    fn random_sabotaged_protocols_replay(seed in any::<u64>()) {
        let g = generators::random_global(seed, &RandomProtocol::default());
        let participants = g.participants().len();
        if participants == 0 {
            return;
        }
        let cut = (seed as usize) % participants;
        let Some(system) = sabotage(&g, cut) else { return; };
        assert_traces_replay(&system, 2, 20_000, &format!("seed {seed} cut {cut}"));
    }
}
