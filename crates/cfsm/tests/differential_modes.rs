//! Differential tests for the exploration *modes* added in PR 4: the
//! ample-set partial-order reduction ([`System::explore_por`]) and the
//! work-stealing parallel frontier ([`System::explore_parallel`]) against
//! the plain interned engine ([`System::explore`]) and the explicit-state
//! oracle ([`System::explore_exhaustive`]).
//!
//! Unlike `differential.rs` (which pins the two full engines to identical
//! configuration counts), reduction legitimately shrinks the state space:
//! what must agree are the **verdict**, `final_reachable` and `live`, and
//! every `Unsafe` outcome must carry a counterexample trace that replays
//! step-by-step through [`System::successors`]. The suite leans on the
//! protocols where a *naive* reduction goes wrong: cycles of mutually
//! enabled sends, rendezvous (bound 0) mixes, and unspecified-reception
//! saboteurs racing against reducible receives.

mod common;

use proptest::prelude::*;

use zooid_cfsm::{Cfsm, ExplorationOutcome, System, Verdict, ViolationKind};
use zooid_mpst::generators::{self, RandomProtocol};
use zooid_mpst::local::LocalType;
use zooid_mpst::{Role, Sort};

fn r(name: &str) -> Role {
    Role::new(name)
}

fn machine(role: &str, local: &LocalType) -> Cfsm {
    Cfsm::from_local_type(r(role), local).unwrap()
}

/// Replays every violation trace of `outcome` through
/// [`System::successors`], asserting each step is a real transition and the
/// trace ends at the violating configuration.
fn assert_traces_replay(system: &System, outcome: &ExplorationOutcome, bound: usize, ctx: &str) {
    for v in &outcome.violations {
        let mut cur = system.initial();
        for (i, step) in v.trace.iter().enumerate() {
            assert!(
                system.successors(&cur, bound).contains(&step.config),
                "{ctx}: trace step {i} not replayable from {cur:?}"
            );
            cur = step.config.clone();
        }
        assert_eq!(cur, v.config, "{ctx}: trace must end at the violation");
    }
}

/// Asserts the reduced/parallel modes agree with the full engines on the
/// verdict (and, when nothing was truncated, on `final_reachable` and
/// `live`), and that all their violations replay.
fn assert_modes_agree(system: &System, bound: usize, max_configs: usize, ctx: &str) {
    let compiled = system.compile();
    let full = compiled.explore(bound, max_configs);
    let exhaustive = system.explore_exhaustive(bound, max_configs);
    assert_eq!(full.verdict(), exhaustive.verdict(), "{ctx}: full engines");

    let por = compiled.explore_por(bound, max_configs);
    let mut modes = vec![("por", por)];
    for threads in [1usize, 2, 4] {
        modes.push((
            match threads {
                1 => "par1",
                2 => "par2",
                _ => "par4",
            },
            compiled.explore_parallel(bound, max_configs, threads),
        ));
    }

    for (name, outcome) in &modes {
        // Reduction only ever shrinks the search, so if the full engine
        // covered the bounded space the reduced modes must have as well,
        // and every verdict (including Inconclusive) must coincide.
        if !full.truncated {
            assert!(!outcome.truncated, "{ctx}/{name}: reduced mode truncated");
            assert_eq!(outcome.verdict(), full.verdict(), "{ctx}/{name}: verdict");
            assert_eq!(
                outcome.final_reachable, full.final_reachable,
                "{ctx}/{name}: final_reachable"
            );
            assert_eq!(outcome.live, full.live, "{ctx}/{name}: live");
            assert!(
                outcome.configurations <= full.configurations,
                "{ctx}/{name}: reduction must not grow the space"
            );
        } else if outcome.verdict() == Verdict::Unsafe {
            // A truncated full search is inconclusive; the reduced mode may
            // still conclude — but an Unsafe claim must be backed by a real
            // (replayable) violation, checked below.
            assert!(!outcome.violations.is_empty(), "{ctx}/{name}");
        }
        assert_eq!(
            outcome.violations.len(),
            outcome.deadlocks.len()
                + outcome.orphan_messages.len()
                + outcome.unspecified_receptions.len(),
            "{ctx}/{name}: violation bookkeeping"
        );
        assert_traces_replay(system, outcome, bound, &format!("{ctx}/{name}"));
    }

    // POR and the parallel frontier explore the same reduced graph: their
    // counts must match exactly whenever nothing was truncated.
    let (_, por) = &modes[0];
    if !por.truncated {
        for (name, outcome) in &modes[1..] {
            assert_eq!(
                outcome.configurations, por.configurations,
                "{ctx}/{name}: reduced space size"
            );
            assert_eq!(
                outcome.transitions, por.transitions,
                "{ctx}/{name}: reduced transition count"
            );
        }
    }
}

#[test]
fn modes_agree_on_all_case_studies() {
    for (name, g) in [
        ("ring3", generators::ring3()),
        ("pipeline", generators::pipeline()),
        ("ping_pong", generators::ping_pong()),
        ("two_buyer", generators::two_buyer()),
        ("ring/6", generators::ring_n(6)),
        ("chain/5", generators::chain_n(5)),
        ("fanout/6", generators::fanout_n(6)),
        ("branching/5", generators::branching(5)),
    ] {
        let system = System::from_global(&g).expect("case studies are projectable");
        // Bound 0 exercises the rendezvous degeneration (no configuration
        // is ever ample, so POR must coincide with the full engine).
        for bound in [0, 1, 2] {
            assert_modes_agree(&system, bound, 200_000, &format!("{name} bound {bound}"));
        }
    }
}

#[test]
fn por_at_bound_zero_is_the_full_exploration() {
    for g in [generators::ring3(), generators::two_buyer()] {
        let system = System::from_global(&g).unwrap();
        let compiled = system.compile();
        let full = compiled.explore(0, 100_000);
        let por = compiled.explore_por(0, 100_000);
        assert_eq!(por.configurations, full.configurations);
        assert_eq!(por.transitions, full.transitions);
        assert_eq!(por.verdict(), full.verdict());
    }
}

#[test]
fn modes_agree_on_sabotaged_systems() {
    for (name, g) in [
        ("ring3", generators::ring3()),
        ("two_buyer", generators::two_buyer()),
        ("fanout/4", generators::fanout_n(4)),
        ("chain/4", generators::chain_n(4)),
    ] {
        for cut in 0..g.participants().len() {
            let system = common::sabotage(&g, cut).expect("projectable");
            for bound in [0, 1, 2] {
                assert_modes_agree(
                    &system,
                    bound,
                    100_000,
                    &format!("{name} cut {cut} bound {bound}"),
                );
            }
        }
    }
}

/// A cycle of mutually-enabled sends: both machines pump forever and nobody
/// receives, so every channel fills to the bound and the system jams in a
/// (bound-artefact) deadlock. No configuration is ever ample — the
/// reduction must not let either sender "run ahead" past the jam.
#[test]
fn send_cycles_still_jam_under_reduction() {
    let system = System::new(vec![
        machine(
            "p",
            &LocalType::rec(LocalType::send1(r("q"), "tick", Sort::Unit, LocalType::var(0))),
        ),
        machine(
            "q",
            &LocalType::rec(LocalType::send1(r("p"), "tock", Sort::Unit, LocalType::var(0))),
        ),
    ])
    .unwrap();
    for bound in [1, 2, 3] {
        assert_modes_agree(&system, bound, 100_000, &format!("send cycle bound {bound}"));
        let por = system.explore_por(bound, 100_000);
        assert_eq!(por.verdict(), Verdict::Unsafe, "bound {bound}");
        assert!(!por.deadlocks.is_empty(), "bound {bound}");
    }
    // At bound 0 neither send can ever fire (no matching receive): the
    // initial configuration itself is the deadlock, in every mode.
    let par = system.explore_parallel(0, 100_000, 2);
    assert_eq!(par.verdict(), Verdict::Unsafe);
    assert_eq!(par.violations.len(), 1);
    assert!(par.violations[0].trace.is_empty());
}

/// An unspecified-reception saboteur racing a reducible receive: q's
/// receive of `ping` is ample exactly while p's mislabelled message to w is
/// in flight. A reduction that dropped configurations carrying the bad head
/// would miss the reception error.
#[test]
fn reception_errors_survive_ample_receives() {
    let system = System::new(vec![
        machine(
            "p",
            &LocalType::send1(
                r("q"),
                "ping",
                Sort::Nat,
                LocalType::send1(r("w"), "bad", Sort::Nat, LocalType::End),
            ),
        ),
        machine("q", &LocalType::recv1(r("p"), "ping", Sort::Nat, LocalType::End)),
        machine("w", &LocalType::recv1(r("p"), "good", Sort::Nat, LocalType::End)),
    ])
    .unwrap();
    for bound in [1, 2] {
        assert_modes_agree(&system, bound, 100_000, &format!("saboteur bound {bound}"));
        for (name, outcome) in [
            ("por", system.explore_por(bound, 100_000)),
            ("par2", system.explore_parallel(bound, 100_000, 2)),
        ] {
            assert_eq!(outcome.verdict(), Verdict::Unsafe, "{name} bound {bound}");
            assert!(
                outcome
                    .violations
                    .iter()
                    .any(|v| v.kind == ViolationKind::UnspecifiedReception),
                "{name} bound {bound}: reception error must survive the reduction"
            );
        }
    }
}

/// A rendezvous mix: one safe hand-shake pair plus a mutually-waiting pair.
/// At bound 0 nothing is ever ample, so the deadlock must surface with an
/// empty-or-replayable trace in every mode.
#[test]
fn rendezvous_mixes_keep_their_deadlocks() {
    let system = System::new(vec![
        machine("a", &LocalType::send1(r("b"), "l", Sort::Nat, LocalType::End)),
        machine("b", &LocalType::recv1(r("a"), "l", Sort::Nat, LocalType::End)),
        machine("c", &LocalType::recv1(r("d"), "m", Sort::Nat, LocalType::End)),
        machine("d", &LocalType::recv1(r("c"), "m", Sort::Nat, LocalType::End)),
    ])
    .unwrap();
    for bound in [0, 1, 2] {
        assert_modes_agree(&system, bound, 100_000, &format!("rendezvous mix bound {bound}"));
        let outcome = system.explore_parallel(bound, 100_000, 4);
        assert_eq!(outcome.verdict(), Verdict::Unsafe, "bound {bound}");
    }
}

/// An infinite pump next to an undelivered message: q's looping receive is
/// ample at every other configuration, and the stray message to p must not
/// disappear from the decoded configurations along the way.
#[test]
fn looping_ample_receives_preserve_foreign_channels() {
    let system = System::new(vec![
        machine(
            "p",
            &LocalType::rec(LocalType::send1(r("q"), "tick", Sort::Unit, LocalType::var(0))),
        ),
        machine(
            "q",
            &LocalType::rec(LocalType::recv1(r("p"), "tick", Sort::Unit, LocalType::var(0))),
        ),
        machine("s", &LocalType::send1(r("p"), "stray", Sort::Nat, LocalType::End)),
    ])
    .unwrap();
    for bound in [1, 2] {
        assert_modes_agree(&system, bound, 50_000, &format!("pump bound {bound}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Randomized protocols: all five explorers agree on the verdict (the
    /// reduced modes additionally agreeing with each other on counts).
    #[test]
    fn modes_agree_on_random_protocols(seed in any::<u64>()) {
        let g = generators::random_global(seed, &RandomProtocol::default());
        let Ok(system) = System::from_global(&g) else { return; };
        for bound in [0, 1, 2] {
            assert_modes_agree(&system, bound, 20_000, &format!("seed {seed} bound {bound}"));
        }
    }

    /// Randomized *sabotaged* protocols: cutting one participant out
    /// manufactures deadlocks, orphans and reception errors; every mode
    /// must still report Unsafe with replayable traces.
    #[test]
    fn modes_agree_on_random_sabotaged_protocols(seed in any::<u64>(), cut in 0usize..4) {
        let params = RandomProtocol {
            roles: 4,
            depth: 4,
            max_branches: 3,
            loop_back_percent: 30,
        };
        let g = generators::random_global(seed, &params);
        let roles = g.participants().len();
        if roles == 0 { return; }
        let Some(system) = common::sabotage(&g, cut % roles) else { return; };
        assert_modes_agree(&system, 2, 20_000, &format!("sabotaged seed {seed}"));
    }
}
