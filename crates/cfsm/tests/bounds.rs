//! Channel-bound edge cases: rendezvous semantics at bound 0, the tightest
//! asynchronous bound 1, and `max_configs` exhaustion — which must yield a
//! distinguishable [`Verdict::Inconclusive`], never a false `Safe`.

use zooid_cfsm::{check_protocol, Cfsm, System, Verdict, ViolationKind};
use zooid_mpst::generators;
use zooid_mpst::local::LocalType;
use zooid_mpst::{Role, Sort};

fn r(name: &str) -> Role {
    Role::new(name)
}

fn machine(role: &str, local: &LocalType) -> Cfsm {
    Cfsm::from_local_type(r(role), local).unwrap()
}

// ---------------------------------------------------------------------------
// Bound 0: rendezvous semantics
// ---------------------------------------------------------------------------

#[test]
fn bound_zero_synchronises_a_correct_pair() {
    let system = System::new(vec![
        machine("p", &LocalType::send1(r("q"), "l", Sort::Nat, LocalType::End)),
        machine("q", &LocalType::recv1(r("p"), "l", Sort::Nat, LocalType::End)),
    ])
    .unwrap();
    let outcome = system.explore(0, 10_000);
    assert_eq!(outcome.verdict(), Verdict::Safe, "{outcome:?}");
    assert!(outcome.final_reachable);
    assert!(outcome.live);
    // Rendezvous: the exchange is one atomic step, so only two
    // configurations exist (before and after), not three.
    assert_eq!(outcome.configurations, 2);
}

#[test]
fn bound_zero_case_studies_are_safe() {
    for (name, g) in [
        ("ring3", generators::ring3()),
        ("pipeline", generators::pipeline()),
        ("ping_pong", generators::ping_pong()),
        ("two_buyer", generators::two_buyer()),
    ] {
        let report = check_protocol(&g, 0, 100_000).unwrap();
        assert_eq!(report.verdict(), Verdict::Safe, "{name}: {:?}", report.outcome);
        assert!(report.is_live(), "{name}");
    }
}

#[test]
fn bound_zero_mismatch_is_a_synchronous_deadlock() {
    // p offers `ping` but q only accepts `pong`: under rendezvous nothing
    // can ever fire. Channels stay empty, so this is a deadlock (a reception
    // error needs a message at a channel head).
    let system = System::new(vec![
        machine("p", &LocalType::send1(r("q"), "ping", Sort::Nat, LocalType::End)),
        machine("q", &LocalType::recv1(r("p"), "pong", Sort::Nat, LocalType::End)),
    ])
    .unwrap();
    let outcome = system.explore(0, 10_000);
    assert_eq!(outcome.verdict(), Verdict::Unsafe);
    assert_eq!(outcome.deadlocks.len(), 1);
    assert!(outcome.unspecified_receptions.is_empty());
    assert_eq!(outcome.violations[0].kind, ViolationKind::Deadlock);
    assert!(outcome.violations[0].trace.is_empty(), "stuck at the start");
}

#[test]
fn bound_zero_send_to_a_silent_partner_deadlocks_instead_of_orphaning() {
    // Under buffering this is an orphan message; under rendezvous the send
    // can never fire at all, so it is a deadlock.
    let system = System::new(vec![
        machine("p", &LocalType::send1(r("q"), "l", Sort::Nat, LocalType::End)),
        machine("q", &LocalType::End),
    ])
    .unwrap();
    let outcome = system.explore(0, 10_000);
    assert_eq!(outcome.verdict(), Verdict::Unsafe);
    assert_eq!(outcome.deadlocks.len(), 1);
    assert!(outcome.orphan_messages.is_empty());
}

// ---------------------------------------------------------------------------
// Bound 1: the tightest asynchronous bound
// ---------------------------------------------------------------------------

#[test]
fn bound_one_families_are_safe_and_conclusive() {
    for (name, g) in [
        ("ring3", generators::ring3()),
        ("pipeline", generators::pipeline()),
        ("ping_pong", generators::ping_pong()),
        ("two_buyer", generators::two_buyer()),
        ("ring/6", generators::ring_n(6)),
        ("chain/4", generators::chain_n(4)),
        ("fanout/4", generators::fanout_n(4)),
        ("branching/4", generators::branching(4)),
    ] {
        let report = check_protocol(&g, 1, 200_000).unwrap();
        assert_eq!(report.verdict(), Verdict::Safe, "{name}: {:?}", report.outcome);
        assert!(report.is_exhaustive(), "{name}");
    }
}

#[test]
fn bound_one_explores_fewer_configurations_than_bound_two() {
    // The bound genuinely constrains the state space: in the recursive
    // chain every channel carries an unbounded stream, so raising the bound
    // admits strictly more in-flight interleavings.
    let g = generators::chain_n(4);
    let one = check_protocol(&g, 1, 500_000).unwrap();
    let two = check_protocol(&g, 2, 500_000).unwrap();
    assert!(one.outcome.configurations < two.outcome.configurations);
}

// ---------------------------------------------------------------------------
// max_configs exhaustion: inconclusive, never a false safe
// ---------------------------------------------------------------------------

#[test]
fn exhaustion_without_a_violation_is_inconclusive_not_safe() {
    // The recursive pipeline has more than five reachable configurations at
    // bound 2, so the search is cut short without finding anything wrong.
    let report = check_protocol(&generators::pipeline(), 2, 5).unwrap();
    assert!(report.outcome.truncated);
    assert_eq!(report.verdict(), Verdict::Inconclusive);
    // `is_safe` only says "no violation found"; the verdict is what
    // distinguishes a proven-safe outcome.
    assert!(report.is_safe());
    assert_ne!(report.verdict(), Verdict::Safe);

    // The exhaustive oracle reports the same inconclusive outcome.
    let slow = zooid_cfsm::check_protocol_exhaustive(&generators::pipeline(), 2, 5).unwrap();
    assert_eq!(slow.verdict(), Verdict::Inconclusive);
}

#[test]
fn a_violation_found_before_exhaustion_is_still_conclusive() {
    // A reception error sits two BFS levels from the start, while an
    // independent recursive ping loop makes the state space larger than the
    // configuration limit: the search truncates *and* finds the violation.
    let system = System::new(vec![
        machine("p", &LocalType::send1(r("q"), "ping", Sort::Nat, LocalType::End)),
        machine("q", &LocalType::recv1(r("p"), "pong", Sort::Nat, LocalType::End)),
        machine(
            "r",
            &LocalType::rec(LocalType::send1(r("s"), "tick", Sort::Unit, LocalType::var(0))),
        ),
        machine(
            "s",
            &LocalType::rec(LocalType::recv1(r("r"), "tick", Sort::Unit, LocalType::var(0))),
        ),
    ])
    .unwrap();
    let full = system.explore(2, 100_000);
    assert!(!full.truncated);
    let total = full.configurations;

    let outcome = system.explore(2, total - 1);
    assert!(outcome.truncated);
    assert_eq!(outcome.verdict(), Verdict::Unsafe, "{outcome:?}");
    assert!(!outcome.unspecified_receptions.is_empty());
}

#[test]
fn zero_max_configs_is_inconclusive() {
    // Degenerate limit: nothing but the initial configuration may even be
    // enqueued. This must not read as "safe".
    let outcome = System::new(vec![
        machine("p", &LocalType::send1(r("q"), "l", Sort::Nat, LocalType::End)),
        machine("q", &LocalType::recv1(r("p"), "l", Sort::Nat, LocalType::End)),
    ])
    .unwrap()
    .explore(2, 1);
    assert!(outcome.truncated);
    assert_eq!(outcome.verdict(), Verdict::Inconclusive);
}
