//! Differential tests: the interned CFSM engine ([`System::explore`]) versus
//! the retained explicit-state oracle ([`System::explore_exhaustive`]), on
//! the built-in case studies and on randomly generated protocols.
//!
//! This mirrors the PR 1 pattern for trace equivalence (`check_trace_equivalence`
//! vs `check_trace_equivalence_exhaustive`): the old engine is never deleted,
//! it becomes the independent oracle the fast engine is validated against.

mod common;

use proptest::prelude::*;

use zooid_cfsm::{check_protocol, check_protocol_exhaustive, Cfsm, System, SystemConfig};
use zooid_mpst::generators::{self, RandomProtocol};
use zooid_mpst::global::GlobalType;
use zooid_mpst::local::LocalType;

/// Builds the system of projected machines for `g`, if projectable.
fn system_for(g: &GlobalType) -> Option<System> {
    System::from_global(g).ok()
}

fn sorted(mut configs: Vec<SystemConfig>) -> Vec<SystemConfig> {
    configs.sort();
    configs
}

/// Asserts that both explorers produce identical verdicts, counts and
/// violating configurations for `system` at `bound`.
fn assert_engines_agree(system: &System, bound: usize, max_configs: usize, context: &str) {
    let fast = system.explore(bound, max_configs);
    let slow = system.explore_exhaustive(bound, max_configs);
    assert_eq!(fast.verdict(), slow.verdict(), "{context}: verdict");
    assert_eq!(
        fast.configurations, slow.configurations,
        "{context}: visited configurations"
    );
    assert_eq!(fast.transitions, slow.transitions, "{context}: transitions");
    assert_eq!(fast.truncated, slow.truncated, "{context}: truncated");
    assert_eq!(
        fast.final_reachable, slow.final_reachable,
        "{context}: final_reachable"
    );
    assert_eq!(fast.live, slow.live, "{context}: live");
    assert_eq!(
        sorted(fast.deadlocks.clone()),
        sorted(slow.deadlocks.clone()),
        "{context}: deadlock configurations"
    );
    assert_eq!(
        sorted(fast.orphan_messages.clone()),
        sorted(slow.orphan_messages.clone()),
        "{context}: orphan configurations"
    );
    assert_eq!(
        sorted(fast.unspecified_receptions.clone()),
        sorted(slow.unspecified_receptions.clone()),
        "{context}: reception-error configurations"
    );
    // The engine's violation list must be consistent with its per-kind lists.
    assert_eq!(
        fast.violations.len(),
        fast.deadlocks.len() + fast.orphan_messages.len() + fast.unspecified_receptions.len(),
        "{context}: violation bookkeeping"
    );
}

#[test]
fn engines_agree_on_all_case_studies() {
    for (name, g) in [
        ("ring3", generators::ring3()),
        ("pipeline", generators::pipeline()),
        ("ping_pong", generators::ping_pong()),
        ("two_buyer", generators::two_buyer()),
        ("ring/6", generators::ring_n(6)),
        ("chain/5", generators::chain_n(5)),
        ("fanout/5", generators::fanout_n(5)),
        ("branching/5", generators::branching(5)),
    ] {
        let system = system_for(&g).expect("case studies are projectable");
        for bound in [0, 1, 2] {
            assert_engines_agree(&system, bound, 200_000, &format!("{name} bound {bound}"));
        }
    }
}

#[test]
fn engines_agree_under_tiny_configuration_limits() {
    // Truncation edge cases, including the degenerate limit 0: both engines
    // must admit and expand exactly the same configurations.
    let safe = system_for(&generators::pipeline()).unwrap();
    let unsafe_ = System::new(vec![
        Cfsm::from_local_type(
            zooid_mpst::Role::new("p"),
            &LocalType::recv1(
                zooid_mpst::Role::new("q"),
                "l",
                zooid_mpst::Sort::Nat,
                LocalType::End,
            ),
        )
        .unwrap(),
        Cfsm::from_local_type(
            zooid_mpst::Role::new("q"),
            &LocalType::recv1(
                zooid_mpst::Role::new("p"),
                "l",
                zooid_mpst::Sort::Nat,
                LocalType::End,
            ),
        )
        .unwrap(),
    ])
    .unwrap();
    for (name, system) in [("pipeline", &safe), ("mutual wait", &unsafe_)] {
        for max_configs in [0, 1, 2, 3, 5, 100] {
            assert_engines_agree(system, 2, max_configs, &format!("{name} cap {max_configs}"));
        }
    }
}

#[test]
fn engines_agree_on_sabotaged_systems() {
    // Replacing one projected machine with an immediately-terminating one
    // produces unsafe systems (orphans, deadlocks); both engines must agree
    // on the violations too, not just on safe protocols.
    for (name, g) in [
        ("ring3", generators::ring3()),
        ("two_buyer", generators::two_buyer()),
        ("fanout/3", generators::fanout_n(3)),
    ] {
        for cut in 0..g.participants().len() {
            let system = common::sabotage(&g, cut).expect("projectable");
            for bound in [1, 2] {
                assert_engines_agree(
                    &system,
                    bound,
                    100_000,
                    &format!("{name} cut {cut} bound {bound}"),
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// ≥ 100 random protocols: identical verdicts and visited-configuration
    /// counts on every projectable generated global type.
    #[test]
    fn engines_agree_on_random_protocols(seed in any::<u64>()) {
        let g = generators::random_global(seed, &RandomProtocol::default());
        let Some(system) = system_for(&g) else { return; };
        for bound in [0, 1, 2] {
            assert_engines_agree(&system, bound, 20_000, &format!("seed {seed} bound {bound}"));
        }
    }

    /// Wider and deeper random protocols (more roles, more branching, more
    /// recursion) to push both explorers off the easy path.
    #[test]
    fn engines_agree_on_wide_random_protocols(seed in any::<u64>()) {
        let params = RandomProtocol {
            roles: 4,
            depth: 5,
            max_branches: 3,
            loop_back_percent: 40,
        };
        let g = generators::random_global(seed, &params);
        let Some(system) = system_for(&g) else { return; };
        assert_engines_agree(&system, 2, 20_000, &format!("wide seed {seed}"));
    }

    /// The `check_protocol` front-ends agree end-to-end as well.
    #[test]
    fn check_protocol_agrees_with_its_exhaustive_variant(seed in any::<u64>()) {
        let g = generators::random_global(seed, &RandomProtocol::default());
        let (Ok(fast), Ok(slow)) = (
            check_protocol(&g, 2, 20_000),
            check_protocol_exhaustive(&g, 2, 20_000),
        ) else {
            return;
        };
        prop_assert_eq!(fast.verdict(), slow.verdict());
        prop_assert_eq!(fast.outcome.configurations, slow.outcome.configurations);
        prop_assert_eq!(fast.participants, slow.participants);
        prop_assert_eq!(fast.machine_states, slow.machine_states);
    }
}
