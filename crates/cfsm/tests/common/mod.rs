//! Helpers shared by the CFSM integration suites.

use zooid_cfsm::{Cfsm, System};
use zooid_mpst::global::GlobalType;
use zooid_mpst::local::LocalType;
use zooid_mpst::projection::project_all;

/// Projects `g` onto every participant and replaces the `cut`-th machine
/// with an immediately terminating one — the canonical way the differential
/// and counterexample suites manufacture unsafe systems (orphans, deadlocks,
/// reception errors) out of safe protocols.
pub fn sabotage(g: &GlobalType, cut: usize) -> Option<System> {
    let projections = project_all(g).ok()?;
    let machines: Vec<Cfsm> = projections
        .into_iter()
        .enumerate()
        .map(|(i, (role, local))| {
            let local = if i == cut { LocalType::End } else { local };
            Cfsm::from_local_type(role, &local)
        })
        .collect::<Result<Vec<_>, _>>()
        .ok()?;
    System::new(machines).ok()
}
