//! Error types for the CFSM layer.

use std::fmt;

use zooid_mpst::Role;

/// A specialised `Result` for CFSM operations.
pub type Result<T> = std::result::Result<T, CfsmError>;

/// Errors produced while compiling or composing communicating automata.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CfsmError {
    /// The local type could not be compiled (ill-formed).
    IllFormedLocalType(zooid_mpst::Error),
    /// The global type could not be projected (so no system can be built).
    Projection(zooid_mpst::Error),
    /// Two machines claim the same role.
    DuplicateRole {
        /// The duplicated role.
        role: Role,
    },
    /// A system was built with no machines.
    EmptySystem,
}

impl fmt::Display for CfsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfsmError::IllFormedLocalType(e) => write!(f, "ill-formed local type: {e}"),
            CfsmError::Projection(e) => write!(f, "projection failed: {e}"),
            CfsmError::DuplicateRole { role } => {
                write!(f, "two machines claim the role `{role}`")
            }
            CfsmError::EmptySystem => f.write_str("a system needs at least one machine"),
        }
    }
}

impl std::error::Error for CfsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CfsmError::IllFormedLocalType(e) | CfsmError::Projection(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase() {
        let cases = [
            CfsmError::DuplicateRole {
                role: Role::new("p"),
            },
            CfsmError::EmptySystem,
        ];
        for e in cases {
            assert!(e.to_string().chars().next().unwrap().is_lowercase());
        }
    }
}
