//! Communicating finite-state machines (CFSMs) compiled from local session
//! types, with explicit-state safety and liveness exploration.
//!
//! The paper's operational semantics is designed "with automata in mind"
//! (§3.3), following the correspondence between multiparty session types and
//! communicating automata of Deniélou and Yoshida. This crate makes that
//! substrate concrete:
//!
//! * [`machine::Cfsm`] compiles a local type into a finite-state machine
//!   whose transitions are send/receive actions towards the other
//!   participants;
//! * [`system::System`] composes one machine per participant with FIFO
//!   channels (bounded during exploration; rendezvous at bound 0) and
//!   explores the reachable configurations, detecting deadlocks, orphan
//!   messages, unspecified receptions and progress violations;
//! * [`engine::CompiledSystem`] is the interned state-space engine behind
//!   [`system::System::explore`]: machines compile once into dense per-state
//!   transition tables whose actions are interned `(label, sort)` ids from
//!   the shared [`zooid_mpst::Interner`], configurations pack into machine
//!   states plus indexed channel buffers of message ids (with their 64-bit
//!   content hash cached inline, so visited-set probes and shard routing
//!   hash one word), and a worklist BFS over an `FxHashMap` visited set
//!   records parent pointers so every violation carries a shortest
//!   replayable counterexample trace ([`system::Violation`]). The original
//!   explicit-state explorer is kept as
//!   [`system::System::explore_exhaustive`] and serves as an independent
//!   oracle for the differential test-suite, mirroring
//!   `check_trace_equivalence_exhaustive` in `zooid_mpst`. The compiled
//!   system also exposes a per-role **monitor view**
//!   ([`engine::MonitorCursor`] / [`engine::CompiledSystem::observe`]):
//!   observed actions advance machine states and unbounded FIFO buffers of
//!   interned message ids, which is what the runtime's `CompiledMonitor` and
//!   the session server use to check protocol compliance in O(1) per action;
//! * two reduced exploration modes sit on top of the engine and preserve
//!   its verdicts while skipping most of the interleaving space:
//!   [`system::System::explore_por`] applies an ample-set **partial-order
//!   reduction** (a configuration where some machine's entire transition
//!   set is receives on one channel whose head matches exactly one of them
//!   expands to that single receive — see [`engine::CompiledSystem::explore_por`]
//!   for why this is sound for bounded-FIFO systems, including the
//!   structural cycle proviso), and [`system::System::explore_parallel`]
//!   runs the same reduced search on a **work-stealing frontier** of N
//!   threads over a visited map sharded by the cached configuration hash
//!   ([`parallel`]). Both agree with [`system::System::explore`] and
//!   [`system::System::explore_exhaustive`] on verdicts, termination
//!   reachability and liveness (`tests/differential_modes.rs`), and every
//!   violation they report still replays through
//!   [`system::System::successors`];
//! * [`compat::check_protocol`] runs the whole pipeline for a global type —
//!   project, compile, compose, explore — producing the safety/liveness
//!   verdicts that the paper's well-typed processes inherit from the
//!   metatheory, and that the evaluation harness reports for every case
//!   study (experiment E12 in `DESIGN.md`). Its [`compat::SafetyReport`]
//!   exposes a three-valued [`system::Verdict`], so a truncated search
//!   reports `Inconclusive` instead of a false `Safe`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compat;
pub mod engine;
pub mod error;
pub mod machine;
pub mod parallel;
pub mod system;

pub use compat::{check_protocol, check_protocol_exhaustive, SafetyReport};
pub use engine::{CompiledSystem, InternedAction, MonitorCursor};
pub use error::{CfsmError, Result};
pub use machine::{Cfsm, CfsmAction, Direction, StateId};
pub use system::{
    ExplorationOutcome, System, SystemConfig, TraceStep, Verdict, Violation, ViolationKind,
};
