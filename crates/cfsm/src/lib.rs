//! Communicating finite-state machines (CFSMs) compiled from local session
//! types, with explicit-state safety and liveness exploration.
//!
//! The paper's operational semantics is designed "with automata in mind"
//! (§3.3), following the correspondence between multiparty session types and
//! communicating automata of Deniélou and Yoshida. This crate makes that
//! substrate concrete:
//!
//! * [`machine::Cfsm`] compiles a local type into a finite-state machine
//!   whose transitions are send/receive actions towards the other
//!   participants;
//! * [`system::System`] composes one machine per participant with FIFO
//!   channels (bounded during exploration) and exhaustively explores the
//!   reachable configurations, detecting deadlocks, orphan messages,
//!   unspecified receptions and progress violations;
//! * [`compat::check_protocol`] runs the whole pipeline for a global type —
//!   project, compile, compose, explore — producing the safety/liveness
//!   verdicts that the paper's well-typed processes inherit from the
//!   metatheory, and that the evaluation harness reports for every case
//!   study (experiment E12 in `DESIGN.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compat;
pub mod error;
pub mod machine;
pub mod system;

pub use compat::{check_protocol, SafetyReport};
pub use error::{CfsmError, Result};
pub use machine::{Cfsm, CfsmAction, Direction, StateId};
pub use system::{ExplorationOutcome, System, SystemConfig};
