//! Parallel reduced exploration: a work-stealing frontier over N worker
//! threads with a sharded visited map.
//!
//! [`CompiledSystem::explore_parallel`] explores the same reduced state
//! space as [`CompiledSystem::explore_por`] (the ample-set partial-order
//! reduction is a pure function of a configuration, so it parallelises
//! untouched), but spreads the frontier over `threads` workers:
//!
//! * each worker owns a `crossbeam::deque::Worker` FIFO and steals from its
//!   peers (and from the seeding `Injector`) when its own queue drains;
//! * the visited map is split into [`SHARDS`] shards, each an `FxHashMap`
//!   behind a `parking_lot::Mutex`; a configuration is routed to its shard
//!   by the top bits of the 64-bit content hash cached inside
//!   [`PackedConfig`], so insert-or-lookup never re-hashes the state and
//!   two workers only contend when they touch the same shard at the same
//!   instant;
//! * every shard slot records the `(parent, machine, transition)` edge that
//!   first discovered the configuration, so violations still carry a
//!   replayable counterexample trace (parent order is discovery order,
//!   which under parallel interleaving is *a* valid trace but not
//!   necessarily a shortest one);
//! * termination uses an in-flight work token: the counter is incremented
//!   before a job becomes stealable and decremented after its expansion is
//!   fully recorded, so it reaches zero exactly when no job exists and none
//!   can be created — the worker that drops it to zero raises the `done`
//!   flag and every idle worker exits its backoff loop.
//!
//! The outcome is deterministic whenever the search is not truncated: the
//! set of visited configurations, `configurations`/`transitions` counts,
//! verdict, `final_reachable` and `live` are all functions of the reduced
//! state space, and the violation list is sorted into a canonical order
//! before it is returned. Under truncation (`max_configs` hit) the visited
//! subset depends on scheduling, exactly as the sequential engines'
//! truncated prefixes depend on expansion order.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use crossbeam::utils::Backoff;
use parking_lot::Mutex;

use zooid_mpst::common::intern::FxHashMap;

use crate::engine::{all_can_finish, CTrans, CompiledSystem, PackedConfig};
use crate::system::{ExplorationOutcome, TraceStep, Violation, ViolationKind};

/// Number of visited-map shards (a power of two; the routing key is the top
/// `SHARD_BITS` of the cached configuration hash, where FxHash concentrates
/// its entropy).
const SHARD_BITS: u32 = 6;
const SHARDS: usize = 1 << SHARD_BITS;

/// Global id of a visited configuration: shard index in the high 32 bits,
/// slot within the shard in the low 32.
type Gid = u64;

fn gid(shard: usize, slot: u32) -> Gid {
    ((shard as u64) << 32) | u64::from(slot)
}

fn gid_shard(g: Gid) -> usize {
    (g >> 32) as usize
}

fn gid_slot(g: Gid) -> usize {
    (g & 0xffff_ffff) as usize
}

fn shard_of(hash: u64) -> usize {
    (hash >> (64 - SHARD_BITS)) as usize
}

/// One shard of the visited map.
#[derive(Default)]
struct Shard {
    /// Cached content hash → slots holding configurations with that hash
    /// (a collision list, almost always of length 1). Keying on the `u64`
    /// means a probe hashes one word, never the packed vectors.
    buckets: FxHashMap<u64, Vec<u32>>,
    configs: Vec<PackedConfig>,
    /// `(parent gid, acting machine, transition)` discovery edge per slot;
    /// `None` for the initial configuration.
    parents: Vec<Option<(Gid, u32, CTrans)>>,
}

/// A unit of work: one admitted configuration to expand. The configuration
/// travels with the job so expansion never locks its home shard.
struct Job {
    gid: Gid,
    cfg: PackedConfig,
}

/// What one worker learned about one expanded configuration (merged into
/// the liveness fixpoint after the workers join).
struct ExpandRecord {
    gid: Gid,
    /// Admitted or already-visited successors (truncation-dropped ones are
    /// absent, exactly like the sequential engines' successor lists).
    succs: Vec<Gid>,
    /// Raw successor count before admission filtering — what the
    /// "every configuration can move or is final" half of liveness reads.
    raw_succs: usize,
    is_final: bool,
}

/// Per-worker accumulator, merged after the pool drains.
#[derive(Default)]
struct WorkerOut {
    transitions: usize,
    found: Vec<(ViolationKind, Gid)>,
    expanded: Vec<ExpandRecord>,
}

/// Shared state of one parallel exploration.
struct Pool<'a> {
    sys: &'a CompiledSystem,
    bound: usize,
    max_configs: usize,
    shards: Vec<Mutex<Shard>>,
    injector: Injector<Job>,
    /// Jobs created but not yet fully expanded; 0 ⟺ the exploration is over.
    in_flight: AtomicUsize,
    /// Total configurations admitted across all shards (the `max_configs`
    /// budget).
    admitted: AtomicUsize,
    truncated: AtomicBool,
    done: AtomicBool,
}

enum Inserted {
    /// Fresh configuration, admitted under the budget.
    New(Gid),
    /// Already in the visited map.
    Existing(Gid),
    /// Fresh, but the budget is exhausted: dropped, search truncated.
    Truncated,
}

impl<'a> Pool<'a> {
    fn new(sys: &'a CompiledSystem, bound: usize, max_configs: usize) -> Self {
        Pool {
            sys,
            bound,
            max_configs,
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            injector: Injector::new(),
            in_flight: AtomicUsize::new(0),
            admitted: AtomicUsize::new(0),
            truncated: AtomicBool::new(false),
            done: AtomicBool::new(false),
        }
    }

    /// Inserts `cfg` into its shard (routed by the cached hash), recording
    /// `parent` as its discovery edge if it is new.
    fn insert(&self, cfg: &PackedConfig, parent: Option<(Gid, u32, CTrans)>) -> Inserted {
        let hash = cfg.cached_hash();
        let s = shard_of(hash);
        let mut guard = self.shards[s].lock();
        let shard = &mut *guard;
        if let Some(slots) = shard.buckets.get(&hash) {
            for &slot in slots {
                if &shard.configs[slot as usize] == cfg {
                    return Inserted::Existing(gid(s, slot));
                }
            }
        }
        // Admission under the global budget. The counter may transiently
        // overshoot by the number of racing workers; the losing increments
        // are rolled back and never admit a configuration.
        let n = self.admitted.fetch_add(1, Ordering::Relaxed);
        if n >= self.max_configs {
            self.admitted.fetch_sub(1, Ordering::Relaxed);
            self.truncated.store(true, Ordering::Relaxed);
            return Inserted::Truncated;
        }
        let slot = u32::try_from(shard.configs.len()).expect("shard overflow");
        shard.buckets.entry(hash).or_default().push(slot);
        shard.configs.push(cfg.clone());
        shard.parents.push(parent);
        Inserted::New(gid(s, slot))
    }

    /// Expands one job: classify it, admit its successors, queue the fresh
    /// ones on the worker's own deque. `succs` is the worker's reusable
    /// expansion buffer (one allocation per worker, not per configuration).
    fn process(
        &self,
        job: Job,
        local: &Worker<Job>,
        succs: &mut Vec<(PackedConfig, u32, CTrans)>,
        out: &mut WorkerOut,
    ) {
        self.sys.expand(&job.cfg, self.bound, true, succs);
        out.transitions += succs.len();

        let is_final = self.sys.is_final(&job.cfg);
        let unspec = self.sys.has_unspecified_reception(&job.cfg);
        if succs.is_empty() && !is_final {
            if let Some(kind) = self.sys.classify_terminal(&job.cfg, unspec) {
                out.found.push((kind, job.gid));
            }
        }
        if unspec {
            out.found.push((ViolationKind::UnspecifiedReception, job.gid));
        }

        let raw_succs = succs.len();
        let mut list = Vec::with_capacity(succs.len());
        for (next, machine, trans) in succs.drain(..) {
            match self.insert(&next, Some((job.gid, machine, trans))) {
                Inserted::New(g) => {
                    // Count the token *before* the job becomes stealable so
                    // `in_flight` can never under-report outstanding work.
                    self.in_flight.fetch_add(1, Ordering::AcqRel);
                    local.push(Job { gid: g, cfg: next });
                    list.push(g);
                }
                Inserted::Existing(g) => list.push(g),
                Inserted::Truncated => {}
            }
        }
        out.expanded.push(ExpandRecord {
            gid: job.gid,
            succs: list,
            raw_succs,
            is_final,
        });
    }

    /// Steals one job, preferring the shared injector over peer deques.
    /// Loops on [`Steal::Retry`] per source, as the real lock-free deque
    /// demands (the mutex-backed stub never reports it).
    fn steal(&self, stealers: &[Stealer<Job>]) -> Option<Job> {
        loop {
            match self.injector.steal() {
                Steal::Success(job) => return Some(job),
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
        for stealer in stealers {
            loop {
                match stealer.steal() {
                    Steal::Success(job) => return Some(job),
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
        }
        None
    }

    /// One worker: drain the local deque, steal from the injector and the
    /// peers, back off while idle, exit when the in-flight count hits zero.
    ///
    /// A worker that panics mid-job would leave its in-flight token counted
    /// forever and hang its peers in the backoff loop (and the scope join
    /// behind them); the unwind guard raises `done` instead, so the peers
    /// drain and exit, the scope joins, and the panic propagates.
    fn run_worker(&self, local: &Worker<Job>, stealers: &[Stealer<Job>], out: &mut WorkerOut) {
        struct DoneOnUnwind<'a>(&'a AtomicBool);
        impl Drop for DoneOnUnwind<'_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.0.store(true, Ordering::Release);
                }
            }
        }
        let _guard = DoneOnUnwind(&self.done);

        let mut backoff = Backoff::new();
        let mut succs: Vec<(PackedConfig, u32, CTrans)> = Vec::new();
        loop {
            match local.pop().or_else(|| self.steal(stealers)) {
                Some(job) => {
                    backoff.reset();
                    self.process(job, local, &mut succs, out);
                    if self.in_flight.fetch_sub(1, Ordering::AcqRel) == 1 {
                        self.done.store(true, Ordering::Release);
                    }
                }
                None => {
                    if self.done.load(Ordering::Acquire) {
                        break;
                    }
                    backoff.snooze();
                }
            }
        }
    }
}

impl CompiledSystem {
    /// Explores the reduced state space (the same ample-set partial-order
    /// reduction as [`CompiledSystem::explore_por`]) on a work-stealing
    /// frontier of `threads` workers over a sharded visited map.
    ///
    /// With `threads <= 1` the worker loop runs on the calling thread (no
    /// spawn); the verdict, counts, `final_reachable` and `live` are
    /// identical to [`CompiledSystem::explore_por`] whenever the search is
    /// not truncated. Violations are returned in a canonical order (sorted
    /// by kind and configuration) so repeated runs are comparable; their
    /// traces replay through [`crate::System::successors`] but, being
    /// discovery-order parent chains, are not guaranteed shortest.
    pub fn explore_parallel(
        &self,
        bound: usize,
        max_configs: usize,
        threads: usize,
    ) -> ExplorationOutcome {
        if max_configs == 0 {
            return Self::empty_outcome();
        }
        let threads = threads.max(1);
        let pool = Pool::new(self, bound, max_configs);

        // Seed: the initial configuration is always admitted (max_configs
        // >= 1 here) and enters through the injector.
        let init = self.initial_config();
        let seed = match pool.insert(&init, None) {
            Inserted::New(g) => g,
            _ => unreachable!("fresh pool admits the initial configuration"),
        };
        pool.in_flight.store(1, Ordering::Release);
        pool.injector.push(Job {
            gid: seed,
            cfg: init,
        });

        let workers: Vec<Worker<Job>> = (0..threads).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<Job>> = workers.iter().map(Worker::stealer).collect();
        let mut outs: Vec<WorkerOut> = (0..threads).map(|_| WorkerOut::default()).collect();

        if threads == 1 {
            let mut out = outs.pop().expect("one accumulator");
            pool.run_worker(&workers[0], &[], &mut out);
            outs.push(out);
        } else {
            std::thread::scope(|scope| {
                for (w, (worker, out)) in workers.iter().zip(outs.iter_mut()).enumerate() {
                    // Each worker steals from every peer but itself.
                    let peers: Vec<Stealer<Job>> = stealers
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != w)
                        .map(|(_, s)| s.clone())
                        .collect();
                    let pool = &pool;
                    scope.spawn(move || pool.run_worker(worker, &peers, out));
                }
            });
        }

        self.merge(pool, outs)
    }

    /// Merges the per-worker accumulators and shard tables into the final
    /// [`ExplorationOutcome`] (liveness fixpoint, violation materialisation).
    fn merge(&self, pool: Pool<'_>, outs: Vec<WorkerOut>) -> ExplorationOutcome {
        let shards: Vec<Shard> = pool.shards.into_iter().map(Mutex::into_inner).collect();

        // Dense re-indexing: prefix offsets turn a (shard, slot) gid into a
        // contiguous index for the fixpoint's side arrays.
        let mut offsets = Vec::with_capacity(SHARDS);
        let mut total = 0usize;
        for shard in &shards {
            offsets.push(total);
            total += shard.configs.len();
        }
        let dense = |g: Gid| offsets[gid_shard(g)] + gid_slot(g);

        let mut transitions = 0usize;
        let mut found: Vec<(ViolationKind, Gid)> = Vec::new();
        let mut final_reachable = false;
        let mut live = true;
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); total];
        let mut final_dense: Vec<u32> = Vec::new();
        let truncated = pool.truncated.load(Ordering::Relaxed);

        for out in outs {
            transitions += out.transitions;
            found.extend(out.found);
            for rec in out.expanded {
                let idx = dense(rec.gid) as u32;
                if rec.is_final {
                    final_reachable = true;
                    final_dense.push(idx);
                }
                live &= rec.is_final || rec.raw_succs > 0;
                for &succ in &rec.succs {
                    preds[dense(succ)].push(idx);
                }
            }
        }

        // Liveness, second half (identical to the sequential engines): when
        // the protocol can terminate and the bounded state space was fully
        // covered, termination must remain reachable from every
        // configuration. The ample reduction preserves exactly which
        // terminal configurations are reachable from where, so running the
        // fixpoint on the reduced graph yields the full graph's answer.
        if final_reachable && live && !truncated {
            live = all_can_finish(&preds, final_dense);
        }

        // Materialise violations: decode each offending configuration and
        // walk its discovery edges back to the root. Sorting puts repeated
        // runs (whose worker interleavings differ) in one canonical order.
        let mut violations: Vec<Violation> = found
            .into_iter()
            .map(|(kind, g)| {
                let config = self.decode(&shards[gid_shard(g)].configs[gid_slot(g)]);
                let mut trace: Vec<TraceStep> = Vec::new();
                let mut cur = g;
                while let Some((parent, machine, trans)) =
                    shards[gid_shard(cur)].parents[gid_slot(cur)]
                {
                    trace.push(TraceStep {
                        role: self.roles()[machine as usize].clone(),
                        action: self.action(trans),
                        config: self.decode(&shards[gid_shard(cur)].configs[gid_slot(cur)]),
                    });
                    cur = parent;
                }
                trace.reverse();
                Violation {
                    kind,
                    config,
                    trace,
                }
            })
            .collect();
        violations.sort_by(|a, b| (a.kind, &a.config).cmp(&(b.kind, &b.config)));

        let pick = |kind: ViolationKind| {
            violations
                .iter()
                .filter(|v| v.kind == kind)
                .map(|v| v.config.clone())
                .collect::<Vec<_>>()
        };
        ExplorationOutcome {
            configurations: total,
            transitions,
            deadlocks: pick(ViolationKind::Deadlock),
            orphan_messages: pick(ViolationKind::OrphanMessage),
            unspecified_receptions: pick(ViolationKind::UnspecifiedReception),
            truncated,
            final_reachable,
            live,
            violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zooid_mpst::generators;

    use crate::system::{System, Verdict};

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn compiled_systems_cross_thread_boundaries() {
        assert_send_sync::<CompiledSystem>();
        assert_send_sync::<Pool<'static>>();
    }

    #[test]
    fn parallel_agrees_with_por_on_case_studies() {
        for (name, g) in [
            ("ring3", generators::ring3()),
            ("two_buyer", generators::two_buyer()),
            ("fanout/5", generators::fanout_n(5)),
        ] {
            let system = System::from_global(&g).expect("projectable");
            let compiled = system.compile();
            for bound in [0, 1, 2] {
                let por = compiled.explore_por(bound, 200_000);
                for threads in [1, 2, 4] {
                    let par = compiled.explore_parallel(bound, 200_000, threads);
                    assert_eq!(par.verdict(), por.verdict(), "{name} bound {bound}");
                    assert_eq!(
                        par.configurations, por.configurations,
                        "{name} bound {bound} threads {threads}"
                    );
                    assert_eq!(
                        par.transitions, por.transitions,
                        "{name} bound {bound} threads {threads}"
                    );
                    assert_eq!(par.final_reachable, por.final_reachable, "{name}");
                    assert_eq!(par.live, por.live, "{name}");
                    assert!(!par.truncated, "{name}");
                }
            }
        }
    }

    #[test]
    fn parallel_respects_the_configuration_budget() {
        let g = generators::fanout_n(6);
        let system = System::from_global(&g).expect("projectable");
        let compiled = system.compile();
        let outcome = compiled.explore_parallel(2, 5, 4);
        assert!(outcome.truncated);
        assert!(outcome.configurations <= 5);
        assert_eq!(outcome.verdict(), Verdict::Inconclusive);
        assert_eq!(
            compiled.explore_parallel(2, 0, 2).configurations,
            0,
            "degenerate budget admits nothing"
        );
    }
}
