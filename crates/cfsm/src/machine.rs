//! One communicating finite-state machine per participant, compiled from its
//! local session type.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};
use zooid_mpst::local::{unravel_local, LocalType, LocalTreeNode};
use zooid_mpst::{Label, Role, Sort};

use crate::error::{CfsmError, Result};

/// A state of a [`Cfsm`] (an index into the machine's state table).
pub type StateId = usize;

/// Whether a transition sends or receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// The machine emits a message.
    Send,
    /// The machine consumes a message.
    Recv,
}

/// The label of a CFSM transition: direction, partner, message label and
/// payload sort.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CfsmAction {
    /// Send or receive.
    pub direction: Direction,
    /// The other endpoint of the exchange.
    pub partner: Role,
    /// The message label.
    pub label: Label,
    /// The payload sort.
    pub sort: Sort,
}

impl fmt::Display for CfsmAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dir = match self.direction {
            Direction::Send => "!",
            Direction::Recv => "?",
        };
        write!(f, "{}{}({}, {})", dir, self.partner, self.label, self.sort)
    }
}

/// A communicating finite-state machine: the automaton a participant follows.
///
/// States correspond to the nodes of the participant's (regular) local tree,
/// so recursion in the local type becomes a cycle in the machine.
///
/// # Examples
///
/// ```
/// use zooid_cfsm::Cfsm;
/// use zooid_mpst::local::LocalType;
/// use zooid_mpst::{Role, Sort};
///
/// let l = LocalType::rec(LocalType::send1(Role::new("q"), "ping", Sort::Nat, LocalType::var(0)));
/// let m = Cfsm::from_local_type(Role::new("p"), &l).unwrap();
/// assert_eq!(m.state_count(), 1);       // a single looping state
/// assert_eq!(m.final_states().len(), 0); // the loop never terminates
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cfsm {
    role: Role,
    state_count: usize,
    initial: StateId,
    finals: BTreeSet<StateId>,
    transitions: Vec<(StateId, CfsmAction, StateId)>,
}

impl Cfsm {
    /// Compiles a local type into its machine.
    ///
    /// # Errors
    ///
    /// Fails if the local type is ill-formed.
    pub fn from_local_type(role: Role, local: &LocalType) -> Result<Self> {
        let tree = unravel_local(local).map_err(CfsmError::IllFormedLocalType)?;
        let mut finals = BTreeSet::new();
        let mut transitions = Vec::new();
        for (id, node) in tree.iter() {
            match node {
                LocalTreeNode::End => {
                    finals.insert(id.index());
                }
                LocalTreeNode::Send { to, branches } => {
                    for b in branches {
                        transitions.push((
                            id.index(),
                            CfsmAction {
                                direction: Direction::Send,
                                partner: to.clone(),
                                label: b.label.clone(),
                                sort: b.sort.clone(),
                            },
                            b.cont.index(),
                        ));
                    }
                }
                LocalTreeNode::Recv { from, branches } => {
                    for b in branches {
                        transitions.push((
                            id.index(),
                            CfsmAction {
                                direction: Direction::Recv,
                                partner: from.clone(),
                                label: b.label.clone(),
                                sort: b.sort.clone(),
                            },
                            b.cont.index(),
                        ));
                    }
                }
            }
        }
        Ok(Cfsm {
            role,
            state_count: tree.len(),
            initial: tree.root().index(),
            finals,
            transitions,
        })
    }

    /// The role this machine implements.
    pub fn role(&self) -> &Role {
        &self.role
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// The final (terminated) states.
    pub fn final_states(&self) -> &BTreeSet<StateId> {
        &self.finals
    }

    /// Returns `true` if `state` is final.
    pub fn is_final(&self, state: StateId) -> bool {
        self.finals.contains(&state)
    }

    /// All transitions, as `(source, action, target)` triples.
    pub fn transitions(&self) -> &[(StateId, CfsmAction, StateId)] {
        &self.transitions
    }

    /// The transitions leaving `state`, in declaration order.
    ///
    /// Returns an iterator (no per-call allocation): the explicit-state
    /// explorer calls this for every machine of every expanded
    /// configuration.
    pub fn transitions_from(
        &self,
        state: StateId,
    ) -> impl Iterator<Item = &(StateId, CfsmAction, StateId)> + '_ {
        self.transitions.iter().filter(move |(s, _, _)| *s == state)
    }

    /// Returns `true` if `state` only offers receive transitions (it is
    /// waiting for a message) — the states relevant to deadlock detection.
    pub fn is_receiving(&self, state: StateId) -> bool {
        let mut any = false;
        for (_, a, _) in self.transitions_from(state) {
            if a.direction != Direction::Recv {
                return false;
            }
            any = true;
        }
        any
    }
}

impl fmt::Display for Cfsm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cfsm for {} ({} states, initial {}):",
            self.role, self.state_count, self.initial
        )?;
        for (src, action, dst) in &self.transitions {
            writeln!(f, "  {src} --{action}--> {dst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zooid_mpst::common::branch::Branch;

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    #[test]
    fn end_compiles_to_a_single_final_state() {
        let m = Cfsm::from_local_type(r("p"), &LocalType::End).unwrap();
        assert_eq!(m.state_count(), 1);
        assert!(m.is_final(m.initial()));
        assert!(m.transitions().is_empty());
        assert!(!m.is_receiving(m.initial()));
    }

    #[test]
    fn a_choice_compiles_to_one_transition_per_branch() {
        let l = LocalType::Send {
            to: r("q"),
            branches: vec![
                Branch::new("a", Sort::Nat, LocalType::End),
                Branch::new("b", Sort::Bool, LocalType::End),
            ],
        };
        let m = Cfsm::from_local_type(r("p"), &l).unwrap();
        assert_eq!(m.transitions_from(m.initial()).count(), 2);
        assert_eq!(m.state_count(), 2); // choice state + shared end state
        assert!(!m.is_receiving(m.initial()));
    }

    #[test]
    fn recursion_becomes_a_cycle() {
        let l = LocalType::rec(LocalType::recv1(
            r("q"),
            "tick",
            Sort::Unit,
            LocalType::var(0),
        ));
        let m = Cfsm::from_local_type(r("p"), &l).unwrap();
        assert_eq!(m.state_count(), 1);
        let (src, _, dst) = &m.transitions()[0];
        assert_eq!(src, dst);
        assert!(m.final_states().is_empty());
        assert!(m.is_receiving(m.initial()));
    }

    #[test]
    fn ill_formed_types_are_rejected() {
        let bad = LocalType::rec(LocalType::var(0));
        assert!(matches!(
            Cfsm::from_local_type(r("p"), &bad),
            Err(CfsmError::IllFormedLocalType(_))
        ));
    }

    #[test]
    fn display_lists_transitions() {
        let l = LocalType::send1(r("q"), "l", Sort::Nat, LocalType::End);
        let m = Cfsm::from_local_type(r("p"), &l).unwrap();
        let shown = m.to_string();
        assert!(shown.contains("!q(l, nat)"));
    }
}
