//! The interned CFSM state-space engine.
//!
//! [`System::explore_exhaustive`] walks configurations represented as
//! `BTreeMap<(Role, Role), VecDeque<(Label, Sort)>>` — every step deep-clones
//! role strings, labels and sorts, and every visited-set probe hashes them
//! again. This module compiles a [`System`] once into dense tables so the
//! hot loop never touches a string:
//!
//! * machine states are `u32`s into per-state transition tables;
//! * every `(Label, Sort)` message payload is interned to a dense
//!   [`MsgId`] via the shared [`zooid_mpst::Interner`], so matching a queued
//!   message against an expected one is a single integer comparison;
//! * every ordered `(sender, receiver)` pair that can ever carry a message
//!   gets a dense channel id, so a configuration's channels are an indexed
//!   `Vec` of `MsgId` buffers instead of a `BTreeMap` keyed on role pairs;
//! * the visited set is an `FxHashMap` over the packed configurations, and
//!   every configuration records the (parent, action) edge that first
//!   discovered it, so each violation comes with a shortest replayable
//!   counterexample trace back to the initial configuration.
//!
//! The engine implements exactly the same bounded-FIFO (and, at bound 0,
//! rendezvous) semantics as [`System::successors`]; the differential tests
//! check both explorers agree on verdicts, counts and violating
//! configurations, and that every counterexample trace replays through
//! [`System::successors`].
//!
//! On top of the plain BFS the engine offers two faster exploration modes
//! that preserve verdicts (but not configuration counts or trace shapes):
//!
//! * [`CompiledSystem::explore_por`] applies an ample-set **partial-order
//!   reduction**: at a configuration where some machine's entire transition
//!   set is receives on a single channel whose head matches exactly one of
//!   them, only that receive is expanded. Such a step commutes with every
//!   other enabled action of a FIFO system, the machine can take no other
//!   first action until it fires, and ample steps strictly shrink the total
//!   queue volume (so no cycle of the reduced graph consists of reduced
//!   steps only — the standard cycle proviso holds structurally). Deadlocks,
//!   orphans, reception errors, reachability of termination and the
//!   liveness fixpoint are all preserved; see the module tests and
//!   `tests/differential_modes.rs`.
//! * [`CompiledSystem::explore_parallel`] (in [`crate::parallel`]) runs the
//!   reduced exploration on a work-stealing frontier over N threads with a
//!   sharded visited map.

use std::collections::{BTreeMap, VecDeque};
use std::hash::{Hash, Hasher};

use zooid_mpst::common::intern::{FxHashMap, FxHasher, MsgId, RoleId};
use zooid_mpst::{Action, Interner, InternerSnapshot};

use crate::machine::{CfsmAction, Direction};
use crate::system::{
    ExplorationOutcome, System, SystemConfig, TraceStep, Violation, ViolationKind,
};

/// A compiled transition: everything the exploration loop needs, as ids.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CTrans {
    /// Send or receive.
    pub(crate) dir: Direction,
    /// Dense id of the channel the message travels on.
    pub(crate) channel: u32,
    /// Interned `(label, sort)` payload.
    pub(crate) msg: MsgId,
    /// Machine state after the transition.
    pub(crate) target: u32,
    /// Index of the partner's machine, or `u32::MAX` if no machine in the
    /// system implements the partner role.
    partner_machine: u32,
}

/// Endpoints of a dense channel id, for decoding configurations back into
/// role-keyed form.
#[derive(Debug, Clone, Copy)]
struct ChannelInfo {
    from: RoleId,
    to: RoleId,
}

/// A packed configuration: machine states as `u32`s plus one message-id
/// buffer per dense channel, with the 64-bit FxHash of that content cached
/// inline. Cloning never touches a string, and hashing (visited-set probes,
/// shard routing in the parallel explorer) writes the cached word instead of
/// re-walking the vectors.
///
/// Invariant: `hash == Self::content_hash(&states, &queues)` whenever the
/// configuration is compared or inserted anywhere. [`PackedConfig::rehash`]
/// restores it after in-place mutation.
#[derive(Debug, Clone)]
pub(crate) struct PackedConfig {
    hash: u64,
    pub(crate) states: Vec<u32>,
    pub(crate) queues: Vec<Vec<MsgId>>,
}

impl PartialEq for PackedConfig {
    fn eq(&self, other: &Self) -> bool {
        // The cached hash is a function of the content: compare it first as
        // a cheap reject, then confirm on the content itself.
        self.hash == other.hash && self.states == other.states && self.queues == other.queues
    }
}

impl Eq for PackedConfig {}

impl Hash for PackedConfig {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl PackedConfig {
    pub(crate) fn new(states: Vec<u32>, queues: Vec<Vec<MsgId>>) -> Self {
        let mut cfg = PackedConfig {
            hash: 0,
            states,
            queues,
        };
        cfg.rehash();
        cfg
    }

    fn content_hash(states: &[u32], queues: &[Vec<MsgId>]) -> u64 {
        let mut h = FxHasher::default();
        for &s in states {
            h.write_u32(s);
        }
        for q in queues {
            // Length-prefix each buffer so shifting a message between
            // channels cannot collide by concatenation.
            h.write_usize(q.len());
            for &m in q {
                h.write_u32(m.index() as u32);
            }
        }
        h.finish()
    }

    /// Recomputes the cached hash after in-place mutation of `states` or
    /// `queues`.
    pub(crate) fn rehash(&mut self) {
        self.hash = Self::content_hash(&self.states, &self.queues);
    }

    /// The cached 64-bit content hash (shard routing key of the parallel
    /// explorer).
    pub(crate) fn cached_hash(&self) -> u64 {
        self.hash
    }

    pub(crate) fn all_queues_empty(&self) -> bool {
        self.queues.iter().all(Vec::is_empty)
    }
}

/// A [`System`] compiled into dense per-state transition tables over interned
/// action ids, ready for repeated exploration.
///
/// # Examples
///
/// ```
/// use zooid_cfsm::{Cfsm, CompiledSystem, System};
/// use zooid_mpst::local::LocalType;
/// use zooid_mpst::{Role, Sort};
///
/// let p = Cfsm::from_local_type(
///     Role::new("p"),
///     &LocalType::send1(Role::new("q"), "l", Sort::Nat, LocalType::End),
/// )
/// .unwrap();
/// let q = Cfsm::from_local_type(
///     Role::new("q"),
///     &LocalType::recv1(Role::new("p"), "l", Sort::Nat, LocalType::End),
/// )
/// .unwrap();
/// let system = System::new(vec![p, q]).unwrap();
/// let outcome = CompiledSystem::compile(&system).explore(2, 10_000);
/// assert!(outcome.is_safe());
/// ```
#[derive(Debug)]
pub struct CompiledSystem {
    /// Read-only snapshot of the interner the tables were compiled against.
    /// Workers of the parallel explorer share it freely (`Send + Sync`)
    /// without ever touching the live hash-consing maps.
    snapshot: InternerSnapshot,
    /// Role of each machine, in system order.
    roles: Vec<zooid_mpst::Role>,
    /// Initial state of each machine.
    initial: Vec<u32>,
    /// `finals[m][s]` ⟺ state `s` of machine `m` is final.
    finals: Vec<Vec<bool>>,
    /// `tables[m][s]` = transitions leaving state `s` of machine `m`, in the
    /// same order as [`crate::Cfsm::transitions_from`].
    tables: Vec<Vec<Vec<CTrans>>>,
    /// Endpoints of each dense channel id.
    channels: Vec<ChannelInfo>,
    /// Machine index of each interned role.
    machine_of_role: FxHashMap<RoleId, u32>,
    /// Dense channel id of each ordered `(sender, receiver)` pair that can
    /// carry a message.
    channel_ids: FxHashMap<(RoleId, RoleId), u32>,
}

impl CompiledSystem {
    /// Compiles a system into dense transition tables.
    pub fn compile(system: &System) -> Self {
        let machines = system.machines();
        let mut interner = Interner::new();
        let roles: Vec<_> = machines.iter().map(|m| m.role().clone()).collect();
        let role_ids: Vec<RoleId> = roles.iter().map(|r| interner.role_id(r)).collect();
        let mut machine_of_role: FxHashMap<RoleId, u32> = FxHashMap::default();
        for (idx, &rid) in role_ids.iter().enumerate() {
            machine_of_role.insert(rid, idx as u32);
        }

        let mut channels: Vec<ChannelInfo> = Vec::new();
        let mut channel_ids: FxHashMap<(RoleId, RoleId), u32> = FxHashMap::default();
        let mut tables = Vec::with_capacity(machines.len());
        let mut finals = Vec::with_capacity(machines.len());
        let mut initial = Vec::with_capacity(machines.len());

        for (m, machine) in machines.iter().enumerate() {
            let mut table: Vec<Vec<CTrans>> = vec![Vec::new(); machine.state_count()];
            for (src, action, dst) in machine.transitions() {
                let partner = interner.role_id(&action.partner);
                let endpoints = match action.direction {
                    Direction::Send => (role_ids[m], partner),
                    Direction::Recv => (partner, role_ids[m]),
                };
                let channel = *channel_ids.entry(endpoints).or_insert_with(|| {
                    let id = u32::try_from(channels.len()).expect("channel table overflow");
                    channels.push(ChannelInfo {
                        from: endpoints.0,
                        to: endpoints.1,
                    });
                    id
                });
                let label = interner.label_id(&action.label);
                let sort = interner.sort_id(&action.sort);
                let msg = interner.msg_id(label, sort);
                table[*src].push(CTrans {
                    dir: action.direction,
                    channel,
                    msg,
                    target: u32::try_from(*dst).expect("state table overflow"),
                    partner_machine: machine_of_role.get(&partner).copied().unwrap_or(u32::MAX),
                });
            }
            let mut fin = vec![false; machine.state_count()];
            for &s in machine.final_states() {
                fin[s] = true;
            }
            tables.push(table);
            finals.push(fin);
            initial.push(u32::try_from(machine.initial()).expect("state table overflow"));
        }

        CompiledSystem {
            snapshot: interner.snapshot(),
            roles,
            initial,
            finals,
            tables,
            channels,
            machine_of_role,
            channel_ids,
        }
    }

    /// The role of each machine, in system order.
    pub fn roles(&self) -> &[zooid_mpst::Role] {
        &self.roles
    }

    /// Number of machines in the compiled system.
    pub fn machine_count(&self) -> usize {
        self.roles.len()
    }

    /// Number of dense channel ids (ordered role pairs that can ever carry a
    /// message).
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    pub(crate) fn initial_config(&self) -> PackedConfig {
        PackedConfig::new(self.initial.clone(), vec![Vec::new(); self.channels.len()])
    }

    pub(crate) fn is_final(&self, cfg: &PackedConfig) -> bool {
        cfg.all_queues_empty()
            && cfg
                .states
                .iter()
                .enumerate()
                .all(|(m, &s)| self.finals[m][s as usize])
    }

    /// Whether state `s` of machine `m` is final.
    pub(crate) fn machine_is_final(&self, m: usize, s: u32) -> bool {
        self.finals[m][s as usize]
    }

    /// Returns `true` if every machine is in a final state (queues are not
    /// inspected) — the orphan-message half of the terminal classification.
    pub(crate) fn all_machines_final(&self, cfg: &PackedConfig) -> bool {
        cfg.states
            .iter()
            .enumerate()
            .all(|(m, &s)| self.machine_is_final(m, s))
    }

    /// Classifies a terminal (successor-less, non-final) configuration,
    /// mirroring the exhaustive explorer's rules: empty queues mean a
    /// deadlock, all-final machines with messages left mean an orphan, and
    /// a stuck configuration with messages in flight but no reception
    /// error is reported as a deadlock (possibly a bound artefact).
    ///
    /// Shared by the sequential and parallel explorers so the verdict
    /// semantics cannot drift apart.
    pub(crate) fn classify_terminal(
        &self,
        cfg: &PackedConfig,
        unspec: bool,
    ) -> Option<ViolationKind> {
        if cfg.all_queues_empty() {
            Some(ViolationKind::Deadlock)
        } else if self.all_machines_final(cfg) {
            Some(ViolationKind::OrphanMessage)
        } else if !unspec {
            Some(ViolationKind::Deadlock)
        } else {
            None
        }
    }

    /// Enumerates the successors of `cfg` into `out`, in the same order as
    /// [`System::successors`]: machines in system order, each machine's
    /// transitions in table order.
    pub(crate) fn successors(
        &self,
        cfg: &PackedConfig,
        bound: usize,
        out: &mut Vec<(PackedConfig, u32, CTrans)>,
    ) {
        out.clear();
        for m in 0..self.roles.len() {
            let state = cfg.states[m] as usize;
            for &t in &self.tables[m][state] {
                match t.dir {
                    // Rendezvous semantics at bound 0: a send fires together
                    // with a matching receive of the partner, atomically.
                    Direction::Send if bound == 0 => {
                        if t.partner_machine == u32::MAX {
                            continue;
                        }
                        let pm = t.partner_machine as usize;
                        let pstate = cfg.states[pm] as usize;
                        for &rt in &self.tables[pm][pstate] {
                            if rt.dir == Direction::Recv
                                && rt.channel == t.channel
                                && rt.msg == t.msg
                            {
                                let mut next = cfg.clone();
                                next.states[m] = t.target;
                                next.states[pm] = rt.target;
                                next.rehash();
                                out.push((next, m as u32, t));
                            }
                        }
                    }
                    Direction::Send => {
                        if cfg.queues[t.channel as usize].len() >= bound {
                            continue;
                        }
                        let mut next = cfg.clone();
                        next.states[m] = t.target;
                        next.queues[t.channel as usize].push(t.msg);
                        next.rehash();
                        out.push((next, m as u32, t));
                    }
                    Direction::Recv => {
                        if cfg.queues[t.channel as usize].first() != Some(&t.msg) {
                            continue;
                        }
                        let mut next = cfg.clone();
                        next.states[m] = t.target;
                        next.queues[t.channel as usize].remove(0);
                        next.rehash();
                        out.push((next, m as u32, t));
                    }
                }
            }
        }
    }

    /// Ample-set selection for the partial-order reduction: returns a
    /// machine (and its single enabled receive) whose expansion alone is
    /// sufficient at `cfg`, or `None` when the configuration must be
    /// expanded in full.
    ///
    /// A machine `m` in state `s` is *ample* when
    ///
    /// 1. every transition of `m` from `s` is a **receive on one channel**
    ///    `c` (so no other first action of `m` can ever become enabled
    ///    before the head of `c` is consumed — the singleton is persistent);
    /// 2. the head of `c` exists and matches **exactly one** of those
    ///    transitions (FIFO head determinism; a second match would drop a
    ///    nondeterministic branch).
    ///
    /// Such a receive commutes with every other enabled action: peers'
    /// sends append to tails (and a pop can only *enable* a bounded send,
    /// never disable one), peers' receives pop channels with a different
    /// receiver, and `m` itself has no alternative. Because an ample step
    /// strictly decreases the total queued-message count, no cycle of the
    /// reduced graph consists of ample steps only — the cycle proviso that
    /// prevents the classic "ignoring problem" holds structurally, without
    /// bookkeeping.
    ///
    /// At `bound == 0` (rendezvous) every queue is permanently empty, so
    /// condition 2 never holds and the reduction naturally degenerates to
    /// the full exploration; the early return just makes that explicit.
    ///
    /// Reception errors are never masked: if the head matches *zero*
    /// transitions the machine is skipped (and the caller flags the
    /// configuration via [`CompiledSystem::has_unspecified_reception`]),
    /// while errors at other machines survive an ample step untouched —
    /// the step pops only channel `c`, whose sole receiver is `m`.
    pub(crate) fn ample(&self, cfg: &PackedConfig, bound: usize) -> Option<(u32, CTrans)> {
        if bound == 0 {
            return None;
        }
        'machines: for m in 0..self.roles.len() {
            let table = &self.tables[m][cfg.states[m] as usize];
            let Some(first) = table.first() else {
                continue;
            };
            let channel = first.channel;
            let mut chosen: Option<CTrans> = None;
            for &t in table {
                if t.dir != Direction::Recv || t.channel != channel {
                    continue 'machines;
                }
                if Some(&t.msg) == cfg.queues[channel as usize].first() {
                    if chosen.is_some() {
                        // Two matching receives: expanding one would drop a
                        // genuine nondeterministic branch.
                        continue 'machines;
                    }
                    chosen = Some(t);
                }
            }
            if let Some(t) = chosen {
                return Some((m as u32, t));
            }
        }
        None
    }

    /// Applies an ample receive step, producing the single reduced
    /// successor.
    pub(crate) fn apply_ample(&self, cfg: &PackedConfig, m: u32, t: CTrans) -> PackedConfig {
        debug_assert_eq!(t.dir, Direction::Recv);
        let mut next = cfg.clone();
        next.states[m as usize] = t.target;
        next.queues[t.channel as usize].remove(0);
        next.rehash();
        next
    }

    /// Enumerates successors with the partial-order reduction applied when
    /// `reduce` is set: an ample configuration expands to its single ample
    /// step, everything else expands in full.
    pub(crate) fn expand(
        &self,
        cfg: &PackedConfig,
        bound: usize,
        reduce: bool,
        out: &mut Vec<(PackedConfig, u32, CTrans)>,
    ) {
        if reduce {
            if let Some((m, t)) = self.ample(cfg, bound) {
                out.clear();
                out.push((self.apply_ample(cfg, m, t), m, t));
                return;
            }
        }
        self.successors(cfg, bound, out);
    }

    /// Mirrors `System::has_unspecified_reception` on packed configurations:
    /// some machine is in a receiving state and the head of a corresponding
    /// channel cannot be consumed by any of its transitions.
    pub(crate) fn has_unspecified_reception(&self, cfg: &PackedConfig) -> bool {
        for m in 0..self.roles.len() {
            let state = cfg.states[m] as usize;
            let table = &self.tables[m][state];
            for t in table {
                // A state may list several receives on the same channel;
                // re-checking that channel's head is idempotent, so no dedup.
                if t.dir != Direction::Recv {
                    continue;
                }
                let Some(&head) = cfg.queues[t.channel as usize].first() else {
                    continue;
                };
                let handled = table
                    .iter()
                    .any(|t2| t2.dir == Direction::Recv && t2.channel == t.channel && t2.msg == head);
                if !handled {
                    return true;
                }
            }
        }
        false
    }

    /// Decodes a packed configuration back into the role-keyed form used by
    /// [`System::successors`] and the counterexample traces.
    pub(crate) fn decode(&self, cfg: &PackedConfig) -> SystemConfig {
        let mut channels = BTreeMap::new();
        for (c, queue) in cfg.queues.iter().enumerate() {
            if queue.is_empty() {
                continue;
            }
            let info = self.channels[c];
            let key = (
                self.snapshot.role(info.from).clone(),
                self.snapshot.role(info.to).clone(),
            );
            let msgs: VecDeque<_> = queue
                .iter()
                .map(|&mid| {
                    let (l, s) = self.snapshot.msg(mid);
                    (self.snapshot.label(l).clone(), self.snapshot.sort(s).clone())
                })
                .collect();
            channels.insert(key, msgs);
        }
        SystemConfig {
            states: cfg.states.iter().map(|&s| s as usize).collect(),
            channels,
        }
    }

    /// Reconstructs the [`CfsmAction`] of a compiled transition.
    pub(crate) fn action(&self, t: CTrans) -> CfsmAction {
        let info = self.channels[t.channel as usize];
        let partner = match t.dir {
            Direction::Send => info.to,
            Direction::Recv => info.from,
        };
        let (label, sort) = self.snapshot.msg(t.msg);
        CfsmAction {
            direction: t.dir,
            partner: self.snapshot.role(partner).clone(),
            label: self.snapshot.label(label).clone(),
            sort: self.snapshot.sort(sort).clone(),
        }
    }

    /// Walks the parent pointers from `idx` back to the initial configuration
    /// and returns the forward trace (one step per edge, each carrying the
    /// configuration it leads to).
    fn trace_to(
        &self,
        idx: u32,
        configs: &[PackedConfig],
        parents: &[Option<(u32, u32, CTrans)>],
    ) -> Vec<TraceStep> {
        let mut rev: Vec<TraceStep> = Vec::new();
        let mut cur = idx;
        while let Some((parent, machine, trans)) = parents[cur as usize] {
            rev.push(TraceStep {
                role: self.roles[machine as usize].clone(),
                action: self.action(trans),
                config: self.decode(&configs[cur as usize]),
            });
            cur = parent;
        }
        rev.reverse();
        rev
    }

    // ------------------------------------------------------------------
    // Per-role monitor view
    // ------------------------------------------------------------------

    /// The initial [`MonitorCursor`]: every machine in its initial state,
    /// every channel empty.
    pub fn monitor_cursor(&self) -> MonitorCursor {
        MonitorCursor {
            states: self.initial.clone(),
            queues: vec![VecDeque::new(); self.channels.len()],
        }
    }

    /// Rebuilds a [`MonitorCursor`] from raw state, validating every
    /// component against the compiled tables: one state per machine, each in
    /// range for that machine's state table; one queue per channel, each
    /// queued [`MsgId`] in range for the interned message table.
    ///
    /// This is the trust boundary for persisted monitor state (checkpoints,
    /// write-ahead logs): `None` means the raw state cannot have come from
    /// this system, so the caller must refuse it rather than admit a cursor
    /// whose indices would be read out of bounds.
    pub fn restore_cursor(
        &self,
        states: Vec<u32>,
        queues: Vec<VecDeque<MsgId>>,
    ) -> Option<MonitorCursor> {
        if states.len() != self.machine_count() || queues.len() != self.channels.len() {
            return None;
        }
        for (m, &s) in states.iter().enumerate() {
            if (s as usize) >= self.tables[m].len() {
                return None;
            }
        }
        let msgs = self.snapshot.msg_len();
        for queue in &queues {
            if queue.iter().any(|msg| msg.index() >= msgs) {
                return None;
            }
        }
        Some(MonitorCursor { states, queues })
    }

    /// Advances `cursor` by one observed action, following the per-role
    /// transition tables with unbounded FIFO channels (the asynchronous
    /// semantics of the protocol, §3.4).
    ///
    /// Returns `true` if the subject's machine has a matching transition (for
    /// a receive, additionally requiring the message at the head of its
    /// channel); otherwise the cursor is left unchanged and `false` is
    /// returned. Every lookup resolves the action's roles, label and sort to
    /// interned ids once; the transition scan itself compares only dense ids.
    pub fn observe(&self, cursor: &mut MonitorCursor, action: &Action) -> bool {
        match self.intern_action(action) {
            Some(interned) => self.observe_interned(cursor, &interned),
            None => false,
        }
    }

    /// Resolves an action's roles, label and sort against the compiled
    /// tables once, yielding an [`InternedAction`] that can be observed any
    /// number of times without ever hashing a string again.
    ///
    /// Returns `None` when some component of the action does not occur in
    /// the protocol at all — such an action can never be accepted, matching
    /// [`CompiledSystem::observe`] returning `false`.
    ///
    /// This is what makes the serving data plane's per-action monitoring
    /// allocation- and hash-free: the compiled endpoint executor resolves
    /// each send/receive site of a program to an `InternedAction` once and
    /// replays it on every visit.
    pub fn intern_action(&self, action: &Action) -> Option<InternedAction> {
        let from = self.snapshot.lookup_role(action.from())?;
        let to = self.snapshot.lookup_role(action.to())?;
        let label = self.snapshot.lookup_label(action.label())?;
        let sort = self.snapshot.lookup_sort(action.sort())?;
        let msg = self.snapshot.lookup_msg(label, sort)?;
        let channel = *self.channel_ids.get(&(from, to))?;
        let (dir, subject) = if action.is_send() {
            (Direction::Send, from)
        } else {
            (Direction::Recv, to)
        };
        let machine = *self.machine_of_role.get(&subject)?;
        Some(InternedAction {
            dir,
            machine,
            channel,
            msg,
        })
    }

    /// [`CompiledSystem::observe`] over a pre-resolved action: the per-call
    /// cost is one scan of the subject's (tiny) out-transition list plus one
    /// queue operation — no role/label/sort hashing.
    pub fn observe_interned(&self, cursor: &mut MonitorCursor, action: &InternedAction) -> bool {
        self.try_observe_interned(cursor, action).is_some()
    }

    fn try_observe_interned(
        &self,
        cursor: &mut MonitorCursor,
        action: &InternedAction,
    ) -> Option<()> {
        let m = action.machine as usize;
        let state = cursor.states[m] as usize;
        let t = self.tables[m][state]
            .iter()
            .find(|t| t.dir == action.dir && t.channel == action.channel && t.msg == action.msg)?;
        match action.dir {
            Direction::Send => {
                cursor.queues[action.channel as usize].push_back(action.msg);
            }
            Direction::Recv => {
                if cursor.queues[action.channel as usize].front() != Some(&action.msg) {
                    return None;
                }
                cursor.queues[action.channel as usize].pop_front();
            }
        }
        cursor.states[m] = t.target;
        Some(())
    }

    /// Returns `true` if the cursor has run the protocol to completion:
    /// every machine in a final state and every channel drained.
    pub fn is_terminated(&self, cursor: &MonitorCursor) -> bool {
        cursor.queues.iter().all(VecDeque::is_empty)
            && cursor
                .states
                .iter()
                .enumerate()
                .all(|(m, &s)| self.finals[m][s as usize])
    }

    /// The outcome of the degenerate `max_configs == 0` limit: not even the
    /// initial configuration may be admitted (matching the exhaustive
    /// explorer, which truncates before expanding anything).
    pub(crate) fn empty_outcome() -> ExplorationOutcome {
        ExplorationOutcome {
            configurations: 0,
            transitions: 0,
            deadlocks: Vec::new(),
            orphan_messages: Vec::new(),
            unspecified_receptions: Vec::new(),
            truncated: true,
            final_reachable: false,
            live: true,
            violations: Vec::new(),
        }
    }

    /// Worklist BFS over the packed state space, mirroring the verdicts and
    /// counts of [`System::explore_exhaustive`] while recording parent
    /// pointers so every violation carries a shortest replayable trace.
    ///
    /// Trace materialisation is deliberate, not lazy: every reported
    /// violation decodes its full path back to the initial configuration
    /// (the replay test-suite checks each one step-by-step). On safe inputs
    /// this costs nothing; on heavily-unsafe inputs with deep state spaces
    /// it is O(violations × depth) decodes after the BFS finishes.
    pub fn explore(&self, bound: usize, max_configs: usize) -> ExplorationOutcome {
        self.explore_impl(bound, max_configs, false)
    }

    /// Like [`CompiledSystem::explore`], but with the ample-set
    /// partial-order reduction enabled (see [`CompiledSystem::ample`] for
    /// the exact condition and its soundness argument).
    ///
    /// The reduction collapses commuting interleavings before they are
    /// generated, so `configurations` / `transitions` counts shrink and
    /// counterexample traces may order independent steps differently — but
    /// the verdict, `final_reachable` and `live` agree with the full
    /// exploration, every reported violation is a real reachable
    /// configuration, and every trace still replays through
    /// [`System::successors`]. At `bound == 0` no configuration is ever
    /// ample, so the mode coincides with [`CompiledSystem::explore`].
    pub fn explore_por(&self, bound: usize, max_configs: usize) -> ExplorationOutcome {
        self.explore_impl(bound, max_configs, true)
    }

    fn explore_impl(&self, bound: usize, max_configs: usize, reduce: bool) -> ExplorationOutcome {
        if max_configs == 0 {
            return Self::empty_outcome();
        }
        let mut visited: FxHashMap<PackedConfig, u32> = FxHashMap::default();
        let mut configs: Vec<PackedConfig> = Vec::new();
        let mut parents: Vec<Option<(u32, u32, CTrans)>> = Vec::new();
        // Successor indices per expanded configuration (for the liveness
        // fixpoint) and final-configuration indices.
        let mut succ_lists: Vec<Vec<u32>> = Vec::new();
        let mut final_indices: Vec<u32> = Vec::new();

        // Violations are recorded as (kind, index) during the BFS and
        // materialised (decoded configs + traces) only after the loop, so
        // the hot path never builds a role-keyed configuration.
        let mut found: Vec<(ViolationKind, u32)> = Vec::new();
        let mut transitions = 0usize;
        let mut truncated = false;
        let mut final_reachable = false;
        let mut live = true;

        let init = self.initial_config();
        visited.insert(init.clone(), 0);
        configs.push(init);
        parents.push(None);

        let mut succs: Vec<(PackedConfig, u32, CTrans)> = Vec::new();
        let mut head = 0usize;
        while head < configs.len() {
            let idx = head as u32;
            head += 1;

            let cfg = &configs[idx as usize];
            self.expand(cfg, bound, reduce, &mut succs);
            transitions += succs.len();

            let is_final = self.is_final(cfg);
            if is_final {
                final_reachable = true;
                final_indices.push(idx);
            }
            live &= is_final || !succs.is_empty();

            let unspec = self.has_unspecified_reception(cfg);
            if succs.is_empty() && !is_final {
                if let Some(kind) = self.classify_terminal(cfg, unspec) {
                    found.push((kind, idx));
                }
            }
            if unspec {
                found.push((ViolationKind::UnspecifiedReception, idx));
            }

            let mut list = Vec::with_capacity(succs.len());
            for (next, machine, trans) in succs.drain(..) {
                if let Some(&j) = visited.get(&next) {
                    list.push(j);
                    continue;
                }
                if configs.len() >= max_configs {
                    truncated = true;
                    continue;
                }
                let j = configs.len() as u32;
                visited.insert(next.clone(), j);
                configs.push(next);
                parents.push(Some((idx, machine, trans)));
                list.push(j);
            }
            succ_lists.push(list);
        }

        // Liveness, second half: when the protocol can terminate and the
        // whole bounded state space was covered, termination must remain
        // reachable from every configuration (backwards BFS from the finals).
        if final_reachable && live && !truncated {
            let mut preds: Vec<Vec<u32>> = vec![Vec::new(); configs.len()];
            for (i, list) in succ_lists.iter().enumerate() {
                for &j in list {
                    preds[j as usize].push(i as u32);
                }
            }
            live = all_can_finish(&preds, final_indices);
        }

        let violations: Vec<Violation> = found
            .into_iter()
            .map(|(kind, idx)| Violation {
                kind,
                config: self.decode(&configs[idx as usize]),
                trace: self.trace_to(idx, &configs, &parents),
            })
            .collect();
        let pick = |kind: ViolationKind| {
            violations
                .iter()
                .filter(|v| v.kind == kind)
                .map(|v| v.config.clone())
                .collect::<Vec<_>>()
        };
        ExplorationOutcome {
            configurations: configs.len(),
            transitions,
            deadlocks: pick(ViolationKind::Deadlock),
            orphan_messages: pick(ViolationKind::OrphanMessage),
            unspecified_receptions: pick(ViolationKind::UnspecifiedReception),
            truncated,
            final_reachable,
            live,
            violations,
        }
    }
}

/// Backwards reachability of the final configurations over per-node
/// predecessor lists: `true` iff *every* explored configuration can reach
/// one of `final_indices`. Shared by the sequential and parallel explorers
/// (they build `preds` from their own layouts and agree on the fixpoint).
pub(crate) fn all_can_finish(preds: &[Vec<u32>], final_indices: Vec<u32>) -> bool {
    let mut can_finish = vec![false; preds.len()];
    let mut stack = final_indices;
    for &i in &stack {
        can_finish[i as usize] = true;
    }
    while let Some(i) = stack.pop() {
        for &p in &preds[i as usize] {
            if !can_finish[p as usize] {
                can_finish[p as usize] = true;
                stack.push(p);
            }
        }
    }
    can_finish.iter().all(|&b| b)
}

/// The mutable state of an online protocol monitor walking a
/// [`CompiledSystem`]: one machine state per role plus one unbounded FIFO of
/// interned message ids per dense channel.
///
/// Cursors are created by [`CompiledSystem::monitor_cursor`] and advanced by
/// [`CompiledSystem::observe`]; cloning or comparing one never touches a
/// string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorCursor {
    states: Vec<u32>,
    queues: Vec<VecDeque<MsgId>>,
}

impl MonitorCursor {
    /// The current machine state per role, in machine order. Raw material
    /// for checkpoint serialization; rebuild a cursor with
    /// [`CompiledSystem::restore_cursor`], never by hand.
    pub fn states(&self) -> &[u32] {
        &self.states
    }

    /// The queued interned message ids per dense channel, in channel order.
    pub fn queues(&self) -> &[VecDeque<MsgId>] {
        &self.queues
    }
}

/// An observable action pre-resolved against a [`CompiledSystem`]'s tables:
/// the subject's machine index, the dense channel id and the interned
/// message id.
///
/// Produced by [`CompiledSystem::intern_action`] and consumed by
/// [`CompiledSystem::observe_interned`]; only meaningful for the system that
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InternedAction {
    dir: Direction,
    machine: u32,
    channel: u32,
    msg: MsgId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use zooid_mpst::local::LocalType;
    use zooid_mpst::{Role, Sort};

    use crate::machine::Cfsm;
    use crate::system::Verdict;

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    fn machine(role: &str, local: &LocalType) -> Cfsm {
        Cfsm::from_local_type(r(role), local).unwrap()
    }

    fn good_pair() -> System {
        System::new(vec![
            machine("p", &LocalType::send1(r("q"), "l", Sort::Nat, LocalType::End)),
            machine("q", &LocalType::recv1(r("p"), "l", Sort::Nat, LocalType::End)),
        ])
        .unwrap()
    }

    #[test]
    fn compilation_produces_dense_tables() {
        let compiled = CompiledSystem::compile(&good_pair());
        assert_eq!(compiled.machine_count(), 2);
        assert_eq!(compiled.channel_count(), 1); // p -> q only
    }

    #[test]
    fn the_engine_matches_the_exhaustive_explorer_on_a_pair() {
        let system = good_pair();
        let fast = system.explore(4, 10_000);
        let slow = system.explore_exhaustive(4, 10_000);
        assert_eq!(fast.configurations, slow.configurations);
        assert_eq!(fast.transitions, slow.transitions);
        assert_eq!(fast.verdict(), slow.verdict());
        assert_eq!(fast.verdict(), Verdict::Safe);
        assert!(fast.live && slow.live);
    }

    #[test]
    fn deadlock_counterexamples_carry_a_trace() {
        let system = System::new(vec![
            machine("p", &LocalType::recv1(r("q"), "l", Sort::Nat, LocalType::End)),
            machine("q", &LocalType::recv1(r("p"), "l", Sort::Nat, LocalType::End)),
        ])
        .unwrap();
        let outcome = system.explore(4, 10_000);
        assert_eq!(outcome.violations.len(), 1);
        let v = &outcome.violations[0];
        assert_eq!(v.kind, ViolationKind::Deadlock);
        // The initial configuration is itself the deadlock: empty trace.
        assert!(v.trace.is_empty());
        assert_eq!(v.config, system.initial());
    }

    #[test]
    fn the_monitor_view_accepts_a_compliant_async_run() {
        let compiled = CompiledSystem::compile(&good_pair());
        let mut cursor = compiled.monitor_cursor();
        let send = Action::send(r("p"), r("q"), zooid_mpst::Label::new("l"), Sort::Nat);
        assert!(!compiled.is_terminated(&cursor));
        assert!(compiled.observe(&mut cursor, &send));
        // The receive cannot be replayed twice, and must match the queue head.
        assert!(compiled.observe(&mut cursor, &send.dual()));
        assert!(!compiled.observe(&mut cursor, &send.dual()));
        assert!(compiled.is_terminated(&cursor));
    }

    #[test]
    fn the_monitor_view_rejects_unknown_and_premature_actions() {
        let compiled = CompiledSystem::compile(&good_pair());
        let mut cursor = compiled.monitor_cursor();
        let recv_first = Action::recv(r("q"), r("p"), zooid_mpst::Label::new("l"), Sort::Nat);
        assert!(!compiled.observe(&mut cursor, &recv_first), "empty channel");
        let wrong_label = Action::send(r("p"), r("q"), zooid_mpst::Label::new("zzz"), Sort::Nat);
        assert!(!compiled.observe(&mut cursor, &wrong_label));
        let wrong_sort = Action::send(r("p"), r("q"), zooid_mpst::Label::new("l"), Sort::Bool);
        assert!(!compiled.observe(&mut cursor, &wrong_sort));
        let unknown_role = Action::send(r("z"), r("q"), zooid_mpst::Label::new("l"), Sort::Nat);
        assert!(!compiled.observe(&mut cursor, &unknown_role));
        // A rejected action leaves the cursor unchanged.
        assert_eq!(cursor, compiled.monitor_cursor());
    }

    #[test]
    fn orphan_traces_replay_through_successors() {
        let system = System::new(vec![
            machine("p", &LocalType::send1(r("q"), "l", Sort::Nat, LocalType::End)),
            machine("q", &LocalType::End),
        ])
        .unwrap();
        let outcome = system.explore(4, 10_000);
        let v = outcome
            .violations
            .iter()
            .find(|v| v.kind == ViolationKind::OrphanMessage)
            .expect("an orphan violation");
        assert_eq!(v.trace.len(), 1, "one send leads to the orphan");
        let mut cur = system.initial();
        for step in &v.trace {
            assert!(
                system.successors(&cur, 4).contains(&step.config),
                "trace step not replayable from {cur:?}"
            );
            cur = step.config.clone();
        }
        assert_eq!(cur, v.config);
    }
}
