//! Multiparty compatibility: project a global type, compile every projection
//! to a machine, compose and explore.
//!
//! This is the executable form of the guarantee that the paper's well-typed
//! processes inherit from the metatheory (deadlock freedom and liveness,
//! §1 and §4.3): for every case-study protocol the evaluation harness runs
//! [`check_protocol`] and reports the verdicts (experiment E12).

use zooid_mpst::global::GlobalType;

use crate::error::Result;
use crate::machine::Cfsm;
use crate::system::{ExplorationOutcome, System, Verdict, Violation};

/// The safety/liveness verdicts for one protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafetyReport {
    /// Number of participants.
    pub participants: usize,
    /// Total number of machine states across all participants.
    pub machine_states: usize,
    /// The raw exploration outcome.
    pub outcome: ExplorationOutcome,
}

impl SafetyReport {
    /// No deadlock, orphan message or reception error was found.
    pub fn is_safe(&self) -> bool {
        self.outcome.is_safe()
    }

    /// Every reachable configuration can keep making progress (and reach
    /// termination, when the protocol terminates at all).
    pub fn is_live(&self) -> bool {
        self.outcome.live
    }

    /// Whether exploration covered the whole (bounded) state space.
    pub fn is_exhaustive(&self) -> bool {
        !self.outcome.truncated
    }

    /// The three-valued verdict of the exploration: a truncated search with
    /// no violation is [`Verdict::Inconclusive`], not a false `Safe`.
    pub fn verdict(&self) -> Verdict {
        self.outcome.verdict()
    }

    /// The first violation found, if any, with its replayable
    /// counterexample trace (populated by the interned engine).
    pub fn first_violation(&self) -> Option<&Violation> {
        self.outcome.violations.first()
    }
}

/// Projects `global` onto every participant, builds the system of
/// communicating machines and explores it with the given channel bound and
/// configuration limit.
///
/// # Errors
///
/// Fails if the protocol is ill-formed or not projectable.
pub fn check_protocol(
    global: &GlobalType,
    channel_bound: usize,
    max_configs: usize,
) -> Result<SafetyReport> {
    check_protocol_with(global, channel_bound, max_configs, false)
}

/// Like [`check_protocol`], but explores with the original explicit-state
/// explorer ([`System::explore_exhaustive`]) instead of the interned engine.
///
/// Retained as an independent oracle: the differential tests check both
/// variants agree on verdicts and visited-configuration counts for every
/// case study and for randomly generated protocols.
///
/// # Errors
///
/// Fails if the protocol is ill-formed or not projectable.
pub fn check_protocol_exhaustive(
    global: &GlobalType,
    channel_bound: usize,
    max_configs: usize,
) -> Result<SafetyReport> {
    check_protocol_with(global, channel_bound, max_configs, true)
}

fn check_protocol_with(
    global: &GlobalType,
    channel_bound: usize,
    max_configs: usize,
    exhaustive: bool,
) -> Result<SafetyReport> {
    let system = System::from_global(global)?;
    let machine_states = system.machines().iter().map(Cfsm::state_count).sum();
    let participants = system.machines().len();
    let outcome = if exhaustive {
        system.explore_exhaustive(channel_bound, max_configs)
    } else {
        system.explore(channel_bound, max_configs)
    };
    Ok(SafetyReport {
        participants,
        machine_states,
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CfsmError;
    use zooid_mpst::generators;

    #[test]
    fn the_paper_protocols_are_safe_and_live() {
        for (name, g) in [
            ("ring3", generators::ring3()),
            ("pipeline", generators::pipeline()),
            ("ping_pong", generators::ping_pong()),
            ("two_buyer", generators::two_buyer()),
        ] {
            let report = check_protocol(&g, 2, 100_000).unwrap();
            assert!(report.is_safe(), "{name} not safe: {:?}", report.outcome);
            assert!(report.is_live(), "{name} not live");
            assert!(report.is_exhaustive(), "{name} truncated");
            assert_eq!(report.participants, g.participants().len());
            assert!(report.machine_states >= report.participants);
        }
    }

    #[test]
    fn generated_families_are_safe() {
        for n in [2, 4, 8] {
            let report = check_protocol(&generators::ring_n(n), 1, 100_000).unwrap();
            assert!(report.is_safe());
        }
        let fan = check_protocol(&generators::fanout_n(4), 1, 100_000).unwrap();
        assert!(fan.is_safe());
        let branch = check_protocol(&generators::branching(4), 1, 100_000).unwrap();
        assert!(branch.is_safe() && branch.is_live());
    }

    #[test]
    fn both_engines_and_projection_agree_on_the_case_studies() {
        // Inductive-projection definedness must coincide with CFSM safety on
        // every built-in case study, and the interned engine must agree with
        // the exhaustive oracle configuration-for-configuration.
        for (name, g) in [
            ("ring3", generators::ring3()),
            ("pipeline", generators::pipeline()),
            ("ping_pong", generators::ping_pong()),
            ("two_buyer", generators::two_buyer()),
            ("ring/5", generators::ring_n(5)),
            ("chain/4", generators::chain_n(4)),
            ("fanout/4", generators::fanout_n(4)),
            ("branching/4", generators::branching(4)),
        ] {
            assert!(
                zooid_mpst::projection::project_all(&g).is_ok(),
                "{name} must be projectable"
            );
            let fast = check_protocol(&g, 2, 200_000).unwrap();
            let slow = check_protocol_exhaustive(&g, 2, 200_000).unwrap();
            assert_eq!(fast.verdict(), slow.verdict(), "{name}");
            assert_eq!(fast.verdict(), Verdict::Safe, "{name}");
            assert_eq!(
                fast.outcome.configurations, slow.outcome.configurations,
                "{name}: engines disagree on visited configurations"
            );
            assert_eq!(
                fast.outcome.transitions, slow.outcome.transitions,
                "{name}: engines disagree on traversed transitions"
            );
            assert!(fast.first_violation().is_none());
        }
    }

    #[test]
    fn unprojectable_protocols_are_rejected() {
        use zooid_mpst::global::GlobalType;
        use zooid_mpst::{Label, Role, Sort};
        let r = Role::new;
        let g_prime = GlobalType::msg(
            r("Alice"),
            r("Bob"),
            vec![
                (
                    Label::new("l1"),
                    Sort::Nat,
                    GlobalType::msg1(r("Bob"), r("Carol"), "l", Sort::Nat, GlobalType::End),
                ),
                (
                    Label::new("l2"),
                    Sort::Nat,
                    GlobalType::msg1(r("Alice"), r("Carol"), "l", Sort::Nat, GlobalType::End),
                ),
            ],
        );
        assert!(matches!(
            check_protocol(&g_prime, 2, 1000),
            Err(CfsmError::Projection(_))
        ));
    }
}
