//! Systems of communicating machines and their state-space exploration.
//!
//! Two explorers share the vocabulary of this module:
//!
//! * [`System::explore`] — the interned engine of [`crate::engine`]: dense
//!   transition tables, packed configurations, and parent pointers that turn
//!   every violation into a replayable [`Violation::trace`];
//! * [`System::explore_exhaustive`] — the original explicit-state explorer,
//!   kept as an independent oracle for differential testing (the same
//!   pattern as `check_trace_equivalence_exhaustive` in `zooid_mpst`).
//!
//! Channel bounds: a positive `bound` caps each FIFO channel at that many
//! in-flight messages (sends into a full channel are disabled); `bound == 0`
//! switches both explorers to rendezvous semantics, where a send fires
//! together with a matching receive of the partner in one atomic step.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use zooid_mpst::{Label, Role, Sort};

use crate::engine::CompiledSystem;
use crate::error::{CfsmError, Result};
use crate::machine::{Cfsm, CfsmAction, Direction, StateId};

/// A configuration of a [`System`]: the current state of every machine plus
/// the contents of every FIFO channel.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SystemConfig {
    /// Current state of each machine, in the system's role order.
    pub states: Vec<StateId>,
    /// In-transit messages per ordered pair of roles, oldest first.
    pub channels: BTreeMap<(Role, Role), VecDeque<(Label, Sort)>>,
}

impl SystemConfig {
    fn channel_len(&self, key: &(Role, Role)) -> usize {
        self.channels.get(key).map(VecDeque::len).unwrap_or(0)
    }

    fn all_channels_empty(&self) -> bool {
        self.channels.values().all(VecDeque::is_empty)
    }
}

/// The overall verdict of an exploration, distinguishing a fully-covered
/// safe state space from a search that was cut short.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The bounded state space was exhausted and no violation was found.
    Safe,
    /// At least one violation was found (conclusive even when the search was
    /// truncated: a found violation is a real reachable configuration).
    Unsafe,
    /// No violation was found but the search hit the configuration limit, so
    /// the absence of violations is *not* established.
    Inconclusive,
}

/// The kind of safety violation a configuration exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ViolationKind {
    /// Nobody can move and not everyone is final.
    Deadlock,
    /// Every machine terminated but a message was never consumed.
    OrphanMessage,
    /// A machine faces a channel head it cannot consume (reception error).
    UnspecifiedReception,
}

/// One step of a counterexample trace: the acting machine's role, the action
/// it performed, and the configuration the step leads to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// The role whose machine moved (for a rendezvous step at bound 0, the
    /// sender; the matching receiver moves in the same step).
    pub role: Role,
    /// The action the machine performed.
    pub action: CfsmAction,
    /// The configuration reached by this step.
    pub config: SystemConfig,
}

/// A safety violation together with a shortest replayable trace from the
/// initial configuration to the offending one: stepping each
/// [`TraceStep::config`] through [`System::successors`] starting from
/// [`System::initial`] reaches [`Violation::config`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// The offending configuration.
    pub config: SystemConfig,
    /// The steps from the initial configuration to `config` (empty if the
    /// initial configuration itself is the violation).
    pub trace: Vec<TraceStep>,
}

/// What the exploration of a system found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplorationOutcome {
    /// Number of distinct configurations visited.
    pub configurations: usize,
    /// Number of transitions traversed.
    pub transitions: usize,
    /// Configurations in which some machine waits forever (all channels
    /// empty, nobody can move, not everyone is final).
    pub deadlocks: Vec<SystemConfig>,
    /// Configurations in which every machine terminated but a message was
    /// never consumed.
    pub orphan_messages: Vec<SystemConfig>,
    /// Configurations in which a machine faces a message it cannot handle
    /// (reception error).
    pub unspecified_receptions: Vec<SystemConfig>,
    /// Whether exploration was cut short by the configuration limit.
    pub truncated: bool,
    /// Whether a fully-terminated configuration is reachable.
    pub final_reachable: bool,
    /// Whether every explored configuration can still make progress (or is
    /// final) — the executable reading of the liveness guarantee.
    pub live: bool,
    /// The violations found, each with a replayable counterexample trace.
    ///
    /// Populated by [`System::explore`] (the interned engine records parent
    /// pointers); [`System::explore_exhaustive`] reports the same violating
    /// configurations through the per-kind lists but leaves this empty.
    pub violations: Vec<Violation>,
}

impl ExplorationOutcome {
    /// Returns `true` if no deadlock, orphan message or reception error was
    /// found. Note this does **not** imply safety when the search was
    /// truncated — use [`ExplorationOutcome::verdict`] to tell a proven-safe
    /// outcome from an inconclusive one.
    pub fn is_safe(&self) -> bool {
        self.deadlocks.is_empty()
            && self.orphan_messages.is_empty()
            && self.unspecified_receptions.is_empty()
    }

    /// The three-valued verdict: [`Verdict::Unsafe`] if any violation was
    /// found, [`Verdict::Inconclusive`] if none was found but the search hit
    /// the configuration limit, and [`Verdict::Safe`] otherwise.
    pub fn verdict(&self) -> Verdict {
        if !self.is_safe() {
            Verdict::Unsafe
        } else if self.truncated {
            Verdict::Inconclusive
        } else {
            Verdict::Safe
        }
    }
}

/// A system of communicating machines: one [`Cfsm`] per role, FIFO channels
/// per ordered pair of roles.
#[derive(Debug, Clone)]
pub struct System {
    machines: Vec<Cfsm>,
}

impl System {
    /// Builds a system from one machine per role.
    ///
    /// # Errors
    ///
    /// Fails if the list is empty or two machines claim the same role.
    pub fn new(machines: Vec<Cfsm>) -> Result<Self> {
        if machines.is_empty() {
            return Err(CfsmError::EmptySystem);
        }
        let mut seen = BTreeSet::new();
        for m in &machines {
            if !seen.insert(m.role().clone()) {
                return Err(CfsmError::DuplicateRole {
                    role: m.role().clone(),
                });
            }
        }
        Ok(System { machines })
    }

    /// Projects `global` onto every participant and compiles each projection
    /// into a machine — the canonical protocol-to-system pipeline shared by
    /// [`crate::compat::check_protocol`], the benchmarks and the
    /// differential tests.
    ///
    /// # Errors
    ///
    /// Fails if the protocol is ill-formed or not projectable.
    pub fn from_global(global: &zooid_mpst::global::GlobalType) -> Result<Self> {
        let projections =
            zooid_mpst::projection::project_all(global).map_err(CfsmError::Projection)?;
        let machines = projections
            .into_iter()
            .map(|(role, local)| Cfsm::from_local_type(role, &local))
            .collect::<Result<Vec<_>>>()?;
        System::new(machines)
    }

    /// The machines of the system, in role order.
    pub fn machines(&self) -> &[Cfsm] {
        &self.machines
    }

    /// The initial configuration: every machine in its initial state, every
    /// channel empty.
    pub fn initial(&self) -> SystemConfig {
        SystemConfig {
            states: self.machines.iter().map(Cfsm::initial).collect(),
            channels: BTreeMap::new(),
        }
    }

    /// Returns `true` if every machine is in a final state and every channel
    /// is empty.
    pub fn is_final(&self, config: &SystemConfig) -> bool {
        config.all_channels_empty()
            && self
                .machines
                .iter()
                .zip(&config.states)
                .all(|(m, s)| m.is_final(*s))
    }

    /// The index of the machine implementing `role`, if any.
    fn machine_index(&self, role: &Role) -> Option<usize> {
        self.machines.iter().position(|m| m.role() == role)
    }

    /// The configurations reachable from `config` in one step, with channels
    /// bounded to `bound` messages per ordered pair (sends into a full
    /// channel are disabled). With `bound == 0` the semantics is rendezvous:
    /// a send fires together with a matching receive of the partner in one
    /// atomic step, and channels stay empty.
    pub fn successors(&self, config: &SystemConfig, bound: usize) -> Vec<SystemConfig> {
        let mut out = Vec::new();
        for (idx, machine) in self.machines.iter().enumerate() {
            let state = config.states[idx];
            for (_, action, target) in machine.transitions_from(state) {
                match action.direction {
                    Direction::Send if bound == 0 => {
                        let Some(pidx) = self.machine_index(&action.partner) else {
                            continue;
                        };
                        let pstate = config.states[pidx];
                        for (_, pa, ptarget) in self.machines[pidx].transitions_from(pstate) {
                            if pa.direction == Direction::Recv
                                && &pa.partner == machine.role()
                                && pa.label == action.label
                                && pa.sort == action.sort
                            {
                                let mut next = config.clone();
                                next.states[idx] = *target;
                                next.states[pidx] = *ptarget;
                                out.push(next);
                            }
                        }
                    }
                    Direction::Send => {
                        let key = (machine.role().clone(), action.partner.clone());
                        if config.channel_len(&key) >= bound {
                            continue;
                        }
                        let mut next = config.clone();
                        next.states[idx] = *target;
                        next.channels
                            .entry(key)
                            .or_default()
                            .push_back((action.label.clone(), action.sort.clone()));
                        out.push(next);
                    }
                    Direction::Recv => {
                        let key = (action.partner.clone(), machine.role().clone());
                        let Some(queue) = config.channels.get(&key) else {
                            continue;
                        };
                        let Some((head_label, head_sort)) = queue.front() else {
                            continue;
                        };
                        if head_label != &action.label || head_sort != &action.sort {
                            continue;
                        }
                        let mut next = config.clone();
                        next.states[idx] = *target;
                        let q = next.channels.get_mut(&key).expect("checked above");
                        q.pop_front();
                        if q.is_empty() {
                            next.channels.remove(&key);
                        }
                        out.push(next);
                    }
                }
            }
        }
        out
    }

    /// Detects a *reception error* in `config`: some machine is in a
    /// receiving state, the head of the corresponding channel is present,
    /// but no transition of the machine can consume it.
    fn has_unspecified_reception(&self, config: &SystemConfig) -> bool {
        for (idx, machine) in self.machines.iter().enumerate() {
            let state = config.states[idx];
            let recv_transitions: Vec<_> = machine
                .transitions_from(state)
                .into_iter()
                .filter(|(_, a, _)| a.direction == Direction::Recv)
                .collect();
            if recv_transitions.is_empty() {
                continue;
            }
            // Group expected labels per sender.
            let mut senders: BTreeSet<&Role> = BTreeSet::new();
            for (_, a, _) in &recv_transitions {
                senders.insert(&a.partner);
            }
            for sender in senders {
                let key = (sender.clone(), machine.role().clone());
                if let Some(queue) = config.channels.get(&key) {
                    if let Some((label, sort)) = queue.front() {
                        let handled = recv_transitions.iter().any(|(_, a, _)| {
                            &a.partner == sender && &a.label == label && &a.sort == sort
                        });
                        if !handled {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// Compiles the system into the interned engine of [`crate::engine`],
    /// ready for repeated exploration without recompiling.
    pub fn compile(&self) -> CompiledSystem {
        CompiledSystem::compile(self)
    }

    /// Explores the configurations reachable with channels bounded to
    /// `bound` messages per ordered pair (rendezvous semantics at bound 0),
    /// visiting at most `max_configs` configurations.
    ///
    /// This runs the interned worklist-BFS engine ([`crate::engine`]); every
    /// violation in the outcome carries a shortest replayable counterexample
    /// trace. The original explicit-state explorer is retained as
    /// [`System::explore_exhaustive`] and the differential tests check both
    /// agree on verdicts, counts and violating configurations.
    pub fn explore(&self, bound: usize, max_configs: usize) -> ExplorationOutcome {
        self.compile().explore(bound, max_configs)
    }

    /// Explores with the ample-set **partial-order reduction** enabled:
    /// commuting interleavings of independent receives are collapsed before
    /// they are generated, so concurrent protocol families shrink from
    /// exponentially many interleavings to their causally distinct
    /// skeletons.
    ///
    /// The verdict (and `final_reachable` / `live`) agrees with
    /// [`System::explore`] and [`System::explore_exhaustive`]; the
    /// configuration/transition counts are smaller and counterexample
    /// traces may order independent steps differently, but every trace
    /// still replays through [`System::successors`]. Compile once with
    /// [`System::compile`] and use
    /// [`CompiledSystem::explore_por`] when exploring repeatedly.
    pub fn explore_por(&self, bound: usize, max_configs: usize) -> ExplorationOutcome {
        self.compile().explore_por(bound, max_configs)
    }

    /// Explores the reduced state space of [`System::explore_por`] on a
    /// work-stealing pool of `threads` workers over a sharded visited map
    /// (see [`crate::parallel`] for the frontier, sharding and termination
    /// protocol).
    ///
    /// Verdicts, counts, `final_reachable` and `live` match
    /// [`System::explore_por`] whenever the search is not truncated;
    /// violation traces are replayable but not guaranteed shortest.
    pub fn explore_parallel(
        &self,
        bound: usize,
        max_configs: usize,
        threads: usize,
    ) -> ExplorationOutcome {
        self.compile().explore_parallel(bound, max_configs, threads)
    }

    /// Exhaustively explores the configurations reachable with channels
    /// bounded to `bound` messages per ordered pair, visiting at most
    /// `max_configs` configurations, using the original explicit-state
    /// representation (role-keyed channel maps, deep-cloned configurations).
    ///
    /// Kept as an independent oracle for differential testing against
    /// [`System::explore`]; its outcome reports violating configurations in
    /// the per-kind lists but leaves [`ExplorationOutcome::violations`]
    /// empty (it records no parent pointers, so it has no traces to attach).
    pub fn explore_exhaustive(&self, bound: usize, max_configs: usize) -> ExplorationOutcome {
        let initial = self.initial();
        let mut visited: HashSet<SystemConfig> = HashSet::new();
        let mut queue: VecDeque<SystemConfig> = VecDeque::from([initial]);
        let mut outcome = ExplorationOutcome {
            configurations: 0,
            transitions: 0,
            deadlocks: Vec::new(),
            orphan_messages: Vec::new(),
            unspecified_receptions: Vec::new(),
            truncated: false,
            final_reachable: false,
            live: true,
            violations: Vec::new(),
        };
        let mut edges: HashMap<SystemConfig, Vec<SystemConfig>> = HashMap::new();

        while let Some(config) = queue.pop_front() {
            if visited.contains(&config) {
                continue;
            }
            if visited.len() >= max_configs {
                outcome.truncated = true;
                break;
            }
            visited.insert(config.clone());
            outcome.configurations += 1;

            let successors = self.successors(&config, bound);
            outcome.transitions += successors.len();

            let is_final = self.is_final(&config);
            if is_final {
                outcome.final_reachable = true;
            }
            let unspec = self.has_unspecified_reception(&config);
            if successors.is_empty() && !is_final {
                if config.all_channels_empty() {
                    outcome.deadlocks.push(config.clone());
                } else if self
                    .machines
                    .iter()
                    .zip(&config.states)
                    .all(|(m, s)| m.is_final(*s))
                {
                    outcome.orphan_messages.push(config.clone());
                } else if !unspec {
                    // Stuck with messages in flight but no reception error:
                    // report it as a deadlock (possibly a bound artefact).
                    outcome.deadlocks.push(config.clone());
                }
            }
            if unspec {
                outcome.unspecified_receptions.push(config.clone());
            }

            edges.insert(config.clone(), successors.clone());
            for next in successors {
                if !visited.contains(&next) {
                    queue.push_back(next);
                }
            }
        }

        // Liveness (executable reading): every explored configuration either
        // is final or has at least one successor; and if the protocol can
        // terminate at all, termination stays reachable from every explored
        // configuration.
        outcome.live = edges.iter().all(|(config, succs)| {
            self.is_final(config) || !succs.is_empty()
        });
        if outcome.final_reachable && outcome.live && !outcome.truncated {
            outcome.live = self.final_reachable_from_everywhere(&edges);
        }
        outcome
    }

    /// Checks that from every explored configuration some final configuration
    /// remains reachable (computed by a backwards fixpoint over the explored
    /// graph).
    fn final_reachable_from_everywhere(
        &self,
        edges: &HashMap<SystemConfig, Vec<SystemConfig>>,
    ) -> bool {
        let mut can_finish: HashSet<&SystemConfig> = edges
            .keys()
            .filter(|c| self.is_final(c))
            .collect();
        loop {
            let mut changed = false;
            for (config, succs) in edges {
                if can_finish.contains(config) {
                    continue;
                }
                if succs.iter().any(|s| can_finish.contains(s)) {
                    can_finish.insert(config);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        edges.keys().all(|c| can_finish.contains(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zooid_mpst::local::LocalType;

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    fn machine(role: &str, local: &LocalType) -> Cfsm {
        Cfsm::from_local_type(r(role), local).unwrap()
    }

    /// A correct two-party exchange: p sends, q receives.
    fn good_pair() -> System {
        System::new(vec![
            machine("p", &LocalType::send1(r("q"), "l", Sort::Nat, LocalType::End)),
            machine("q", &LocalType::recv1(r("p"), "l", Sort::Nat, LocalType::End)),
        ])
        .unwrap()
    }

    #[test]
    fn a_correct_pair_is_safe_and_live() {
        let outcome = good_pair().explore(4, 10_000);
        assert!(outcome.is_safe(), "{outcome:?}");
        assert!(outcome.final_reachable);
        assert!(outcome.live);
        assert!(!outcome.truncated);
        assert_eq!(outcome.configurations, 3); // init, in-flight, done
    }

    #[test]
    fn mutual_waiting_is_a_deadlock() {
        // Both machines wait for the other to speak first.
        let system = System::new(vec![
            machine("p", &LocalType::recv1(r("q"), "l", Sort::Nat, LocalType::End)),
            machine("q", &LocalType::recv1(r("p"), "l", Sort::Nat, LocalType::End)),
        ])
        .unwrap();
        let outcome = system.explore(4, 10_000);
        assert_eq!(outcome.deadlocks.len(), 1);
        assert!(!outcome.is_safe());
        assert!(!outcome.final_reachable);
    }

    #[test]
    fn unreceived_messages_are_orphans() {
        // p sends but q never listens.
        let system = System::new(vec![
            machine("p", &LocalType::send1(r("q"), "l", Sort::Nat, LocalType::End)),
            machine("q", &LocalType::End),
        ])
        .unwrap();
        let outcome = system.explore(4, 10_000);
        assert!(!outcome.orphan_messages.is_empty());
        assert!(!outcome.is_safe());
    }

    #[test]
    fn mismatched_labels_are_reception_errors() {
        // p sends `ping` but q only understands `pong`.
        let system = System::new(vec![
            machine("p", &LocalType::send1(r("q"), "ping", Sort::Nat, LocalType::End)),
            machine("q", &LocalType::recv1(r("p"), "pong", Sort::Nat, LocalType::End)),
        ])
        .unwrap();
        let outcome = system.explore(4, 10_000);
        assert!(!outcome.unspecified_receptions.is_empty());
        assert!(!outcome.is_safe());
    }

    #[test]
    fn recursive_protocols_are_live_without_a_final_state() {
        // An infinite ping stream: p sends forever, q receives forever.
        let system = System::new(vec![
            machine(
                "p",
                &LocalType::rec(LocalType::send1(r("q"), "tick", Sort::Unit, LocalType::var(0))),
            ),
            machine(
                "q",
                &LocalType::rec(LocalType::recv1(r("p"), "tick", Sort::Unit, LocalType::var(0))),
            ),
        ])
        .unwrap();
        let outcome = system.explore(2, 10_000);
        assert!(outcome.is_safe(), "{outcome:?}");
        assert!(!outcome.final_reachable);
        assert!(outcome.live);
    }

    #[test]
    fn exploration_respects_the_configuration_limit() {
        let system = System::new(vec![
            machine(
                "p",
                &LocalType::rec(LocalType::send1(r("q"), "tick", Sort::Unit, LocalType::var(0))),
            ),
            machine(
                "q",
                &LocalType::rec(LocalType::recv1(r("p"), "tick", Sort::Unit, LocalType::var(0))),
            ),
        ])
        .unwrap();
        let outcome = system.explore(64, 5);
        assert!(outcome.truncated);
        assert!(outcome.configurations <= 5);
    }

    #[test]
    fn empty_and_duplicate_systems_are_rejected() {
        assert!(matches!(System::new(vec![]), Err(CfsmError::EmptySystem)));
        let m = machine("p", &LocalType::End);
        assert!(matches!(
            System::new(vec![m.clone(), m]),
            Err(CfsmError::DuplicateRole { .. })
        ));
    }

    #[test]
    fn accessors_expose_machines_and_initial_configuration() {
        let system = good_pair();
        assert_eq!(system.machines().len(), 2);
        let init = system.initial();
        assert_eq!(init.states.len(), 2);
        assert!(!system.is_final(&init));
    }
}
