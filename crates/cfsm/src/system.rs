//! Systems of communicating machines and their explicit-state exploration.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use zooid_mpst::{Label, Role, Sort};

use crate::error::{CfsmError, Result};
use crate::machine::{Cfsm, Direction, StateId};

/// A configuration of a [`System`]: the current state of every machine plus
/// the contents of every FIFO channel.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SystemConfig {
    /// Current state of each machine, in the system's role order.
    pub states: Vec<StateId>,
    /// In-transit messages per ordered pair of roles, oldest first.
    pub channels: BTreeMap<(Role, Role), VecDeque<(Label, Sort)>>,
}

impl SystemConfig {
    fn channel_len(&self, key: &(Role, Role)) -> usize {
        self.channels.get(key).map(VecDeque::len).unwrap_or(0)
    }

    fn all_channels_empty(&self) -> bool {
        self.channels.values().all(VecDeque::is_empty)
    }
}

/// What the exploration of a system found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplorationOutcome {
    /// Number of distinct configurations visited.
    pub configurations: usize,
    /// Number of transitions traversed.
    pub transitions: usize,
    /// Configurations in which some machine waits forever (all channels
    /// empty, nobody can move, not everyone is final).
    pub deadlocks: Vec<SystemConfig>,
    /// Configurations in which every machine terminated but a message was
    /// never consumed.
    pub orphan_messages: Vec<SystemConfig>,
    /// Configurations in which a machine faces a message it cannot handle
    /// (reception error).
    pub unspecified_receptions: Vec<SystemConfig>,
    /// Whether exploration was cut short by the configuration limit.
    pub truncated: bool,
    /// Whether a fully-terminated configuration is reachable.
    pub final_reachable: bool,
    /// Whether every explored configuration can still make progress (or is
    /// final) — the executable reading of the liveness guarantee.
    pub live: bool,
}

impl ExplorationOutcome {
    /// Returns `true` if no deadlock, orphan message or reception error was
    /// found.
    pub fn is_safe(&self) -> bool {
        self.deadlocks.is_empty()
            && self.orphan_messages.is_empty()
            && self.unspecified_receptions.is_empty()
    }
}

/// A system of communicating machines: one [`Cfsm`] per role, FIFO channels
/// per ordered pair of roles.
#[derive(Debug, Clone)]
pub struct System {
    machines: Vec<Cfsm>,
}

impl System {
    /// Builds a system from one machine per role.
    ///
    /// # Errors
    ///
    /// Fails if the list is empty or two machines claim the same role.
    pub fn new(machines: Vec<Cfsm>) -> Result<Self> {
        if machines.is_empty() {
            return Err(CfsmError::EmptySystem);
        }
        let mut seen = BTreeSet::new();
        for m in &machines {
            if !seen.insert(m.role().clone()) {
                return Err(CfsmError::DuplicateRole {
                    role: m.role().clone(),
                });
            }
        }
        Ok(System { machines })
    }

    /// The machines of the system, in role order.
    pub fn machines(&self) -> &[Cfsm] {
        &self.machines
    }

    /// The initial configuration: every machine in its initial state, every
    /// channel empty.
    pub fn initial(&self) -> SystemConfig {
        SystemConfig {
            states: self.machines.iter().map(Cfsm::initial).collect(),
            channels: BTreeMap::new(),
        }
    }

    /// Returns `true` if every machine is in a final state and every channel
    /// is empty.
    pub fn is_final(&self, config: &SystemConfig) -> bool {
        config.all_channels_empty()
            && self
                .machines
                .iter()
                .zip(&config.states)
                .all(|(m, s)| m.is_final(*s))
    }

    /// The configurations reachable from `config` in one step, with channels
    /// bounded to `bound` messages per ordered pair (sends into a full
    /// channel are disabled).
    pub fn successors(&self, config: &SystemConfig, bound: usize) -> Vec<SystemConfig> {
        let mut out = Vec::new();
        for (idx, machine) in self.machines.iter().enumerate() {
            let state = config.states[idx];
            for (_, action, target) in machine.transitions_from(state) {
                match action.direction {
                    Direction::Send => {
                        let key = (machine.role().clone(), action.partner.clone());
                        if config.channel_len(&key) >= bound {
                            continue;
                        }
                        let mut next = config.clone();
                        next.states[idx] = *target;
                        next.channels
                            .entry(key)
                            .or_default()
                            .push_back((action.label.clone(), action.sort.clone()));
                        out.push(next);
                    }
                    Direction::Recv => {
                        let key = (action.partner.clone(), machine.role().clone());
                        let Some(queue) = config.channels.get(&key) else {
                            continue;
                        };
                        let Some((head_label, head_sort)) = queue.front() else {
                            continue;
                        };
                        if head_label != &action.label || head_sort != &action.sort {
                            continue;
                        }
                        let mut next = config.clone();
                        next.states[idx] = *target;
                        let q = next.channels.get_mut(&key).expect("checked above");
                        q.pop_front();
                        if q.is_empty() {
                            next.channels.remove(&key);
                        }
                        out.push(next);
                    }
                }
            }
        }
        out
    }

    /// Detects a *reception error* in `config`: some machine is in a
    /// receiving state, the head of the corresponding channel is present,
    /// but no transition of the machine can consume it.
    fn has_unspecified_reception(&self, config: &SystemConfig) -> bool {
        for (idx, machine) in self.machines.iter().enumerate() {
            let state = config.states[idx];
            let recv_transitions: Vec<_> = machine
                .transitions_from(state)
                .into_iter()
                .filter(|(_, a, _)| a.direction == Direction::Recv)
                .collect();
            if recv_transitions.is_empty() {
                continue;
            }
            // Group expected labels per sender.
            let mut senders: BTreeSet<&Role> = BTreeSet::new();
            for (_, a, _) in &recv_transitions {
                senders.insert(&a.partner);
            }
            for sender in senders {
                let key = (sender.clone(), machine.role().clone());
                if let Some(queue) = config.channels.get(&key) {
                    if let Some((label, sort)) = queue.front() {
                        let handled = recv_transitions.iter().any(|(_, a, _)| {
                            &a.partner == sender && &a.label == label && &a.sort == sort
                        });
                        if !handled {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// Exhaustively explores the configurations reachable with channels
    /// bounded to `bound` messages per ordered pair, visiting at most
    /// `max_configs` configurations.
    pub fn explore(&self, bound: usize, max_configs: usize) -> ExplorationOutcome {
        let initial = self.initial();
        let mut visited: HashSet<SystemConfig> = HashSet::new();
        let mut queue: VecDeque<SystemConfig> = VecDeque::from([initial]);
        let mut outcome = ExplorationOutcome {
            configurations: 0,
            transitions: 0,
            deadlocks: Vec::new(),
            orphan_messages: Vec::new(),
            unspecified_receptions: Vec::new(),
            truncated: false,
            final_reachable: false,
            live: true,
        };
        let mut edges: HashMap<SystemConfig, Vec<SystemConfig>> = HashMap::new();

        while let Some(config) = queue.pop_front() {
            if visited.contains(&config) {
                continue;
            }
            if visited.len() >= max_configs {
                outcome.truncated = true;
                break;
            }
            visited.insert(config.clone());
            outcome.configurations += 1;

            let successors = self.successors(&config, bound);
            outcome.transitions += successors.len();

            let is_final = self.is_final(&config);
            if is_final {
                outcome.final_reachable = true;
            }
            if successors.is_empty() && !is_final {
                if config.all_channels_empty() {
                    outcome.deadlocks.push(config.clone());
                } else if self
                    .machines
                    .iter()
                    .zip(&config.states)
                    .all(|(m, s)| m.is_final(*s))
                {
                    outcome.orphan_messages.push(config.clone());
                } else {
                    // Stuck with messages in flight: either a reception error
                    // or (with bound 1) an artefact of the bound; classify
                    // via the reception check below and otherwise report it
                    // as a deadlock.
                    if !self.has_unspecified_reception(&config) {
                        outcome.deadlocks.push(config.clone());
                    }
                }
            }
            if self.has_unspecified_reception(&config) {
                outcome.unspecified_receptions.push(config.clone());
            }

            edges.insert(config.clone(), successors.clone());
            for next in successors {
                if !visited.contains(&next) {
                    queue.push_back(next);
                }
            }
        }

        // Liveness (executable reading): every explored configuration either
        // is final or has at least one successor; and if the protocol can
        // terminate at all, termination stays reachable from every explored
        // configuration.
        outcome.live = edges.iter().all(|(config, succs)| {
            self.is_final(config) || !succs.is_empty()
        });
        if outcome.final_reachable && outcome.live && !outcome.truncated {
            outcome.live = self.final_reachable_from_everywhere(&edges);
        }
        outcome
    }

    /// Checks that from every explored configuration some final configuration
    /// remains reachable (computed by a backwards fixpoint over the explored
    /// graph).
    fn final_reachable_from_everywhere(
        &self,
        edges: &HashMap<SystemConfig, Vec<SystemConfig>>,
    ) -> bool {
        let mut can_finish: HashSet<&SystemConfig> = edges
            .keys()
            .filter(|c| self.is_final(c))
            .collect();
        loop {
            let mut changed = false;
            for (config, succs) in edges {
                if can_finish.contains(config) {
                    continue;
                }
                if succs.iter().any(|s| can_finish.contains(s)) {
                    can_finish.insert(config);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        edges.keys().all(|c| can_finish.contains(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zooid_mpst::local::LocalType;

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    fn machine(role: &str, local: &LocalType) -> Cfsm {
        Cfsm::from_local_type(r(role), local).unwrap()
    }

    /// A correct two-party exchange: p sends, q receives.
    fn good_pair() -> System {
        System::new(vec![
            machine("p", &LocalType::send1(r("q"), "l", Sort::Nat, LocalType::End)),
            machine("q", &LocalType::recv1(r("p"), "l", Sort::Nat, LocalType::End)),
        ])
        .unwrap()
    }

    #[test]
    fn a_correct_pair_is_safe_and_live() {
        let outcome = good_pair().explore(4, 10_000);
        assert!(outcome.is_safe(), "{outcome:?}");
        assert!(outcome.final_reachable);
        assert!(outcome.live);
        assert!(!outcome.truncated);
        assert_eq!(outcome.configurations, 3); // init, in-flight, done
    }

    #[test]
    fn mutual_waiting_is_a_deadlock() {
        // Both machines wait for the other to speak first.
        let system = System::new(vec![
            machine("p", &LocalType::recv1(r("q"), "l", Sort::Nat, LocalType::End)),
            machine("q", &LocalType::recv1(r("p"), "l", Sort::Nat, LocalType::End)),
        ])
        .unwrap();
        let outcome = system.explore(4, 10_000);
        assert_eq!(outcome.deadlocks.len(), 1);
        assert!(!outcome.is_safe());
        assert!(!outcome.final_reachable);
    }

    #[test]
    fn unreceived_messages_are_orphans() {
        // p sends but q never listens.
        let system = System::new(vec![
            machine("p", &LocalType::send1(r("q"), "l", Sort::Nat, LocalType::End)),
            machine("q", &LocalType::End),
        ])
        .unwrap();
        let outcome = system.explore(4, 10_000);
        assert!(!outcome.orphan_messages.is_empty());
        assert!(!outcome.is_safe());
    }

    #[test]
    fn mismatched_labels_are_reception_errors() {
        // p sends `ping` but q only understands `pong`.
        let system = System::new(vec![
            machine("p", &LocalType::send1(r("q"), "ping", Sort::Nat, LocalType::End)),
            machine("q", &LocalType::recv1(r("p"), "pong", Sort::Nat, LocalType::End)),
        ])
        .unwrap();
        let outcome = system.explore(4, 10_000);
        assert!(!outcome.unspecified_receptions.is_empty());
        assert!(!outcome.is_safe());
    }

    #[test]
    fn recursive_protocols_are_live_without_a_final_state() {
        // An infinite ping stream: p sends forever, q receives forever.
        let system = System::new(vec![
            machine(
                "p",
                &LocalType::rec(LocalType::send1(r("q"), "tick", Sort::Unit, LocalType::var(0))),
            ),
            machine(
                "q",
                &LocalType::rec(LocalType::recv1(r("p"), "tick", Sort::Unit, LocalType::var(0))),
            ),
        ])
        .unwrap();
        let outcome = system.explore(2, 10_000);
        assert!(outcome.is_safe(), "{outcome:?}");
        assert!(!outcome.final_reachable);
        assert!(outcome.live);
    }

    #[test]
    fn exploration_respects_the_configuration_limit() {
        let system = System::new(vec![
            machine(
                "p",
                &LocalType::rec(LocalType::send1(r("q"), "tick", Sort::Unit, LocalType::var(0))),
            ),
            machine(
                "q",
                &LocalType::rec(LocalType::recv1(r("p"), "tick", Sort::Unit, LocalType::var(0))),
            ),
        ])
        .unwrap();
        let outcome = system.explore(64, 5);
        assert!(outcome.truncated);
        assert!(outcome.configurations <= 5);
    }

    #[test]
    fn empty_and_duplicate_systems_are_rejected() {
        assert!(matches!(System::new(vec![]), Err(CfsmError::EmptySystem)));
        let m = machine("p", &LocalType::End);
        assert!(matches!(
            System::new(vec![m.clone(), m]),
            Err(CfsmError::DuplicateRole { .. })
        ));
    }

    #[test]
    fn accessors_expose_machines_and_initial_configuration() {
        let system = good_pair();
        assert_eq!(system.machines().len(), 2);
        let init = system.initial();
        assert_eq!(init.states.len(), 2);
        assert!(!system.is_final(&init));
    }
}
