//! Smart constructors for well-typed-by-construction processes
//! (Definition 4.3 and the `Zooid.v` notations).
//!
//! Every constructor in this module builds a [`WtProc`]: a process *paired
//! with* the local type it implements — the Rust counterpart of the Coq
//! dependent pair `wt_proc L = { P : Proc | of_lt P L }`. The local type of
//! every constructor is fully determined by its inputs, which is what lets a
//! user write a process and obtain its type "for free", exactly as Coq infers
//! it for the paper's smart constructors.
//!
//! Two constructors deserve attention (§4.2):
//!
//! * [`select`] — an internal choice given as a list of alternatives: any
//!   number of guarded [`SelectAlt::case`]s, exactly one
//!   [`SelectAlt::otherwise`] (the default, which must come after every
//!   case), and any number of [`SelectAlt::skip`]s declaring alternatives
//!   that exist in the protocol but that this process never takes. `skip` is
//!   what makes the inferred local type match the projection even though the
//!   process implements only part of the choice — the typing system has no
//!   subtyping, so unimplemented alternatives must still be declared.
//! * [`branch`] — an external choice; here *every* alternative of the type
//!   must be implemented (rule `[p-ty-recv]`).

use zooid_mpst::common::branch::Branch;
use zooid_mpst::local::LocalType;
use zooid_mpst::{Label, Role, Sort};
use zooid_proc::{type_check, Expr, Externals, Proc, RecvAlt};

use crate::error::{DslError, Result};

/// A well-typed process: a [`Proc`] together with the [`LocalType`] it
/// implements, obtainable only through the smart constructors of this module
/// (or, for interoperability, through the explicitly-unchecked escape hatch).
#[derive(Debug, Clone, PartialEq)]
pub struct WtProc {
    proc: Proc,
    local: LocalType,
}

impl WtProc {
    /// The underlying process (the first projection of the dependent pair).
    pub fn proc(&self) -> &Proc {
        &self.proc
    }

    /// The local type the process implements (the `projT1` of §5.1).
    pub fn local_type(&self) -> &LocalType {
        &self.local
    }

    /// Splits the pair into its components.
    pub fn into_parts(self) -> (Proc, LocalType) {
        (self.proc, self.local)
    }

    /// Re-checks the typing derivation (`Γ ⊢lt proc : local`) with the given
    /// external-action signatures.
    ///
    /// The smart constructors guarantee the *structure* of the derivation;
    /// payload expressions that mention variables bound by enclosing
    /// receives, and external-action signatures, can only be checked once
    /// the whole term is assembled — which is what this method (and
    /// [`Protocol::implement`](crate::Protocol::implement), which calls it)
    /// does.
    ///
    /// # Errors
    ///
    /// Returns the typing error, if any.
    pub fn validate(&self, externals: &Externals) -> Result<()> {
        type_check(&self.proc, &self.local, externals).map_err(DslError::from)
    }

    /// Assembles a `WtProc` from parts without re-deriving the typing.
    ///
    /// This is an escape hatch for interoperating with processes produced
    /// outside the smart constructors; [`WtProc::validate`] (or
    /// [`Protocol::implement`](crate::Protocol::implement)) will still check
    /// the pair before it can be executed.
    pub fn from_parts_unchecked(proc: Proc, local: LocalType) -> Self {
        WtProc { proc, local }
    }
}

/// `finish`: the terminated process, of type `end` (the paper's `wt_end`).
pub fn finish() -> WtProc {
    WtProc {
        proc: Proc::Finish,
        local: LocalType::End,
    }
}

/// `jump X`: a jump to the `index`-th enclosing [`loop_`], of type `X`.
pub fn jump(index: u32) -> WtProc {
    WtProc {
        proc: Proc::Jump(index),
        local: LocalType::Var(index),
    }
}

/// `loop X { body }`: a recursive process of type `mu X. L` where `L` is the
/// body's type.
///
/// # Errors
///
/// Fails if wrapping the body's type in `mu` would produce an unguarded
/// recursive type (the body is just a `jump`).
pub fn loop_(body: WtProc) -> Result<WtProc> {
    let local = LocalType::rec(body.local.clone());
    if !local.is_guarded() {
        return Err(DslError::MalformedConstructor {
            reason: "the body of a loop must perform a communication before jumping".to_owned(),
        });
    }
    Ok(WtProc {
        proc: Proc::loop_(body.proc),
        local,
    })
}

/// `send p (l, e : S)! cont`: send one message and continue; the local type
/// is the singleton internal choice `![p]; l(S). L` (the paper's `wt_send`).
///
/// # Errors
///
/// Fails if the payload is a closed expression whose sort differs from `sort`
/// (open payloads — mentioning variables bound by an enclosing receive — are
/// checked later by [`WtProc::validate`]).
pub fn send(
    to: Role,
    label: impl Into<Label>,
    sort: Sort,
    payload: Expr,
    cont: WtProc,
) -> Result<WtProc> {
    let label = label.into();
    check_closed_payload(&payload, &sort, &label)?;
    let local = LocalType::send1(to.clone(), label.clone(), sort, cont.local.clone());
    Ok(WtProc {
        proc: Proc::send(to, label, payload, cont.proc),
        local,
    })
}

/// `recv p (l, x : S)? cont`: receive one message, bind it to `var` and
/// continue; the local type is the singleton external choice `?[p]; l(S). L`.
///
/// # Errors
///
/// Currently infallible (kept fallible for uniformity with [`branch`]).
pub fn recv1(
    from: Role,
    label: impl Into<Label>,
    sort: Sort,
    var: impl Into<String>,
    cont: WtProc,
) -> Result<WtProc> {
    branch(from, vec![BranchAlt::new(label, sort, var, cont)])
}

/// One alternative of a [`branch`] (external choice): label, payload sort,
/// the variable the payload is bound to, and the continuation.
#[derive(Debug, Clone)]
pub struct BranchAlt {
    label: Label,
    sort: Sort,
    var: String,
    cont: WtProc,
}

impl BranchAlt {
    /// Creates an alternative `l, x : S ? cont`.
    pub fn new(
        label: impl Into<Label>,
        sort: Sort,
        var: impl Into<String>,
        cont: WtProc,
    ) -> Self {
        BranchAlt {
            label: label.into(),
            sort,
            var: var.into(),
            cont,
        }
    }
}

/// `branch p [alt_1 | ... | alt_n]`: an external choice; every alternative
/// the partner may choose must be handled (rule `[p-ty-recv]`). The local
/// type is `?[p]; { l_i(S_i). L_i }`.
///
/// # Errors
///
/// Fails on an empty list of alternatives or duplicate labels.
pub fn branch(from: Role, alts: Vec<BranchAlt>) -> Result<WtProc> {
    if alts.is_empty() {
        return Err(DslError::MalformedConstructor {
            reason: "a branch needs at least one alternative".to_owned(),
        });
    }
    check_distinct_labels(alts.iter().map(|a| &a.label))?;
    let branches = alts
        .iter()
        .map(|a| Branch {
            label: a.label.clone(),
            sort: a.sort.clone(),
            cont: a.cont.local.clone(),
        })
        .collect();
    let recv_alts = alts
        .into_iter()
        .map(|a| RecvAlt::new(a.label, a.sort, a.var, a.cont.proc))
        .collect();
    Ok(WtProc {
        proc: Proc::Recv {
            from: from.clone(),
            alts: recv_alts,
        },
        local: LocalType::Recv { from, branches },
    })
}

/// One alternative of a [`select`] (internal choice).
#[derive(Debug, Clone)]
pub struct SelectAlt {
    kind: SelectKind,
    label: Label,
    sort: Sort,
}

#[derive(Debug, Clone)]
enum SelectKind {
    Case {
        guard: Expr,
        payload: Expr,
        cont: WtProc,
    },
    Otherwise {
        payload: Expr,
        cont: WtProc,
    },
    Skip {
        cont_type: LocalType,
    },
}

impl SelectAlt {
    /// `case e => l, e' : S ! cont`: if the guard evaluates to `true`, send
    /// `l` with payload `e'` and continue as `cont`.
    pub fn case(
        guard: Expr,
        label: impl Into<Label>,
        sort: Sort,
        payload: Expr,
        cont: WtProc,
    ) -> Self {
        SelectAlt {
            kind: SelectKind::Case {
                guard,
                payload,
                cont,
            },
            label: label.into(),
            sort,
        }
    }

    /// `otherwise => l, e : S ! cont`: the default alternative, taken when no
    /// preceding `case` guard holds. A `select` must contain exactly one.
    pub fn otherwise(
        label: impl Into<Label>,
        sort: Sort,
        payload: Expr,
        cont: WtProc,
    ) -> Self {
        SelectAlt {
            kind: SelectKind::Otherwise { payload, cont },
            label: label.into(),
            sort,
        }
    }

    /// `skip => l, S ! L`: an alternative the protocol offers but this
    /// process never takes; only its local type is recorded, so that the
    /// inferred type still matches the projection.
    pub fn skip(label: impl Into<Label>, sort: Sort, cont_type: LocalType) -> Self {
        SelectAlt {
            kind: SelectKind::Skip { cont_type },
            label: label.into(),
            sort,
        }
    }
}

/// `select p [alt_1 | ... | alt_n]`: an internal choice among labelled
/// alternatives, with exactly one default (`otherwise`) and optional
/// unimplemented alternatives (`skip`). The local type is
/// `![p]; { l_i(S_i). L_i }` over *all* the alternatives, implemented or not.
///
/// # Errors
///
/// Fails on an empty list, duplicate labels, a missing or repeated
/// `otherwise`, or an `otherwise` that precedes a `case`.
pub fn select(to: Role, alts: Vec<SelectAlt>) -> Result<WtProc> {
    if alts.is_empty() {
        return Err(DslError::MalformedConstructor {
            reason: "a select needs at least one alternative".to_owned(),
        });
    }
    check_distinct_labels(alts.iter().map(|a| &a.label))?;

    // Exactly one `otherwise`, occurring after the last `case`.
    let otherwise_positions: Vec<usize> = alts
        .iter()
        .enumerate()
        .filter(|(_, a)| matches!(a.kind, SelectKind::Otherwise { .. }))
        .map(|(i, _)| i)
        .collect();
    let last_case = alts
        .iter()
        .rposition(|a| matches!(a.kind, SelectKind::Case { .. }));
    match otherwise_positions.as_slice() {
        [] => {
            return Err(DslError::SelectShape {
                reason: "a select must contain exactly one otherwise alternative".to_owned(),
            })
        }
        [pos] => {
            if let Some(case_pos) = last_case {
                if case_pos > *pos {
                    return Err(DslError::SelectShape {
                        reason: "the otherwise alternative must come after the last case"
                            .to_owned(),
                    });
                }
            }
        }
        _ => {
            return Err(DslError::SelectShape {
                reason: "a select must contain exactly one otherwise alternative".to_owned(),
            })
        }
    }

    // The local type records every alternative, in the given order.
    let branches = alts
        .iter()
        .map(|a| Branch {
            label: a.label.clone(),
            sort: a.sort.clone(),
            cont: match &a.kind {
                SelectKind::Case { cont, .. } | SelectKind::Otherwise { cont, .. } => {
                    cont.local.clone()
                }
                SelectKind::Skip { cont_type } => cont_type.clone(),
            },
        })
        .collect();
    let local = LocalType::Send {
        to: to.clone(),
        branches,
    };

    // The process evaluates the guards in order and falls through to the
    // default; closed payloads are sort-checked eagerly.
    let mut implemented = Vec::new();
    for alt in &alts {
        match &alt.kind {
            SelectKind::Case { guard, payload, cont } => {
                check_closed_payload(payload, &alt.sort, &alt.label)?;
                implemented.push((Some(guard.clone()), alt.label.clone(), payload.clone(), cont.proc.clone()));
            }
            SelectKind::Otherwise { payload, cont } => {
                check_closed_payload(payload, &alt.sort, &alt.label)?;
                implemented.push((None, alt.label.clone(), payload.clone(), cont.proc.clone()));
            }
            SelectKind::Skip { .. } => {}
        }
    }
    // Build from the default outwards: ... if g1 then send l1 else (if g2
    // then send l2 else (send l_default)).
    let (default_guard, default_label, default_payload, default_cont) = implemented
        .iter()
        .find(|(guard, _, _, _)| guard.is_none())
        .cloned()
        .expect("the shape check guarantees an otherwise alternative");
    debug_assert!(default_guard.is_none());
    let mut proc = Proc::send(to.clone(), default_label, default_payload, default_cont);
    for (guard, label, payload, cont) in implemented
        .iter()
        .rev()
        .filter(|(guard, _, _, _)| guard.is_some())
    {
        proc = Proc::cond(
            guard.clone().expect("filtered on Some"),
            Proc::send(to.clone(), label.clone(), payload.clone(), cont.clone()),
            proc,
        );
    }
    Ok(WtProc { proc, local })
}

/// `if e then Z1 else Z2`: both alternatives must implement the *same* local
/// type (the DSL carries the proof, so unlike plain processes the equality is
/// required syntactically here, as in the Coq `wt_proc` version).
///
/// # Errors
///
/// Fails if the two branches have different local types.
pub fn if_else(cond: Expr, then_branch: WtProc, else_branch: WtProc) -> Result<WtProc> {
    if then_branch.local != else_branch.local {
        return Err(DslError::BranchTypeMismatch {
            then_type: then_branch.local,
            else_type: else_branch.local,
        });
    }
    Ok(WtProc {
        local: then_branch.local.clone(),
        proc: Proc::cond(cond, then_branch.proc, else_branch.proc),
    })
}

/// `read act (x. cont)`: obtain a value from the environment; the local type
/// is the continuation's (external actions are invisible to the protocol).
pub fn read(action: impl Into<String>, var: impl Into<String>, cont: WtProc) -> WtProc {
    WtProc {
        local: cont.local.clone(),
        proc: Proc::read(action, var, cont.proc),
    }
}

/// `write act e cont`: hand a value to the environment; the local type is
/// the continuation's.
pub fn write(action: impl Into<String>, arg: Expr, cont: WtProc) -> WtProc {
    WtProc {
        local: cont.local.clone(),
        proc: Proc::write(action, arg, cont.proc),
    }
}

/// `interact act e (x. cont)`: exchange a value with the environment; the
/// local type is the continuation's.
pub fn interact(
    action: impl Into<String>,
    arg: Expr,
    var: impl Into<String>,
    cont: WtProc,
) -> WtProc {
    WtProc {
        local: cont.local.clone(),
        proc: Proc::interact(action, arg, var, cont.proc),
    }
}

fn check_distinct_labels<'a>(labels: impl Iterator<Item = &'a Label>) -> Result<()> {
    let mut seen: Vec<&Label> = Vec::new();
    for l in labels {
        if seen.contains(&l) {
            return Err(DslError::DuplicateLabel { label: l.clone() });
        }
        seen.push(l);
    }
    Ok(())
}

/// Eagerly checks the sort of payloads that do not mention variables; open
/// payloads are deferred to [`WtProc::validate`].
fn check_closed_payload(payload: &Expr, sort: &Sort, label: &Label) -> Result<()> {
    if !payload.free_vars().is_empty() {
        return Ok(());
    }
    match payload.infer_sort(&Default::default()) {
        Ok(found) if &found == sort => Ok(()),
        Ok(found) => Err(DslError::MalformedConstructor {
            reason: format!(
                "the payload of alternative `{label}` has sort {found} but the alternative \
                 declares {sort}"
            ),
        }),
        // Sort inference of exotic closed literals can fail (e.g. empty
        // sequences); defer to the final validation.
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zooid_proc::Value;

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    /// The ping-pong local type for Alice (§5.1):
    /// `mu X. ![Bob]; { l1(unit). end ; l2(nat). ?[Bob]; l3(nat). X }`.
    fn alice_lt() -> LocalType {
        LocalType::rec(LocalType::Send {
            to: r("Bob"),
            branches: vec![
                Branch::new("l1", Sort::Unit, LocalType::End),
                Branch::new(
                    "l2",
                    Sort::Nat,
                    LocalType::recv1(r("Bob"), "l3", Sort::Nat, LocalType::var(0)),
                ),
            ],
        })
    }

    #[test]
    fn finish_has_type_end() {
        assert_eq!(finish().local_type(), &LocalType::End);
        assert_eq!(finish().proc(), &Proc::Finish);
    }

    #[test]
    fn send_builds_a_singleton_choice() {
        let z = send(r("q"), "l", Sort::Nat, Expr::lit(1u64), finish()).unwrap();
        assert_eq!(
            z.local_type(),
            &LocalType::send1(r("q"), "l", Sort::Nat, LocalType::End)
        );
        assert!(z.validate(&Externals::new()).is_ok());
    }

    #[test]
    fn send_rejects_closed_payloads_of_the_wrong_sort() {
        assert!(send(r("q"), "l", Sort::Nat, Expr::lit(true), finish()).is_err());
    }

    #[test]
    fn alice0_quits_immediately_with_a_skip_for_the_ping_branch() {
        // alice0 (§B.1): loop { select Bob [ otherwise => l1, () : unit ! finish
        //                                  | skip => l2, nat ! ?[Bob];l3(nat).X ] }
        let alice0 = loop_(
            select(
                r("Bob"),
                vec![
                    SelectAlt::otherwise("l1", Sort::Unit, Expr::unit(), finish()),
                    SelectAlt::skip(
                        "l2",
                        Sort::Nat,
                        LocalType::recv1(r("Bob"), "l3", Sort::Nat, LocalType::var(0)),
                    ),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(alice0.local_type(), &alice_lt());
        assert!(alice0.validate(&Externals::new()).is_ok());
    }

    #[test]
    fn alice1_pings_forever() {
        // alice1 (§B.1): loop { select Bob [ skip => l1 | otherwise => l2, 0 !
        //                recv Bob (l3, x) ? jump ] }
        let alice1 = loop_(
            select(
                r("Bob"),
                vec![
                    SelectAlt::skip("l1", Sort::Unit, LocalType::End),
                    SelectAlt::otherwise(
                        "l2",
                        Sort::Nat,
                        Expr::lit(0u64),
                        recv1(r("Bob"), "l3", Sort::Nat, "x", jump(0)).unwrap(),
                    ),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(alice1.local_type(), &alice_lt());
        assert!(alice1.validate(&Externals::new()).is_ok());
    }

    #[test]
    fn alice4_stops_when_the_reply_is_large() {
        // alice4 (§5.1): select Bob [ skip => l1 | otherwise => l2, 0 !
        //   loop { recv Bob (l3, x) ? select Bob [ case x >= k => l1, () ! finish
        //                                        | otherwise => l2, x ! jump ] } ]
        let k = 10u64;
        let inner_select = select(
            r("Bob"),
            vec![
                SelectAlt::case(
                    Expr::ge(Expr::var("x"), Expr::lit(k)),
                    "l1",
                    Sort::Unit,
                    Expr::unit(),
                    finish(),
                ),
                SelectAlt::otherwise("l2", Sort::Nat, Expr::var("x"), jump(0)),
            ],
        )
        .unwrap();
        let looping = loop_(recv1(r("Bob"), "l3", Sort::Nat, "x", inner_select).unwrap()).unwrap();
        let alice4 = select(
            r("Bob"),
            vec![
                SelectAlt::skip("l1", Sort::Unit, LocalType::End),
                SelectAlt::otherwise("l2", Sort::Nat, Expr::lit(0u64), looping),
            ],
        )
        .unwrap();

        // The inferred type is the once-unrolled alice_lt (as printed in
        // §5.1), not alice_lt itself...
        assert_ne!(alice4.local_type(), &alice_lt());
        // ...but it is equal to it up to unravelling.
        assert!(crate::unravel_eq(alice4.local_type(), &alice_lt()));
        assert!(alice4.validate(&Externals::new()).is_ok());
    }

    #[test]
    fn branch_requires_distinct_labels_and_nonempty_alternatives() {
        assert!(branch(r("p"), vec![]).is_err());
        let dup = branch(
            r("p"),
            vec![
                BranchAlt::new("l", Sort::Nat, "x", finish()),
                BranchAlt::new("l", Sort::Bool, "y", finish()),
            ],
        );
        assert!(matches!(dup, Err(DslError::DuplicateLabel { .. })));
    }

    #[test]
    fn select_shape_is_enforced() {
        // No otherwise.
        let no_default = select(
            r("p"),
            vec![SelectAlt::case(
                Expr::lit(true),
                "l",
                Sort::Nat,
                Expr::lit(1u64),
                finish(),
            )],
        );
        assert!(matches!(no_default, Err(DslError::SelectShape { .. })));

        // Two otherwise.
        let two_defaults = select(
            r("p"),
            vec![
                SelectAlt::otherwise("a", Sort::Nat, Expr::lit(1u64), finish()),
                SelectAlt::otherwise("b", Sort::Nat, Expr::lit(2u64), finish()),
            ],
        );
        assert!(matches!(two_defaults, Err(DslError::SelectShape { .. })));

        // A case after the otherwise.
        let late_case = select(
            r("p"),
            vec![
                SelectAlt::otherwise("a", Sort::Nat, Expr::lit(1u64), finish()),
                SelectAlt::case(Expr::lit(true), "b", Sort::Nat, Expr::lit(2u64), finish()),
            ],
        );
        assert!(matches!(late_case, Err(DslError::SelectShape { .. })));

        // Empty select.
        assert!(select(r("p"), vec![]).is_err());
    }

    #[test]
    fn select_evaluates_cases_in_order() {
        // select q [ case false => a ! ... | otherwise => b ! ... ]
        let z = select(
            r("q"),
            vec![
                SelectAlt::case(Expr::lit(false), "a", Sort::Nat, Expr::lit(1u64), finish()),
                SelectAlt::otherwise("b", Sort::Unit, Expr::unit(), finish()),
            ],
        )
        .unwrap();
        // The process is an if; with a false guard it falls through to b.
        let ext = Externals::new();
        let normalized = zooid_proc::semantics::admin_normalize(z.proc(), &ext).unwrap();
        match normalized {
            Proc::Send { label, .. } => assert_eq!(label, Label::new("b")),
            other => panic!("unexpected {other}"),
        }
        // The type still offers both alternatives.
        match z.local_type() {
            LocalType::Send { branches, .. } => assert_eq!(branches.len(), 2),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn loop_requires_a_guarded_body() {
        assert!(loop_(jump(0)).is_err());
        assert!(loop_(send(r("q"), "l", Sort::Nat, Expr::lit(0u64), jump(0)).unwrap()).is_ok());
    }

    #[test]
    fn if_else_requires_equal_types() {
        let a = send(r("q"), "l", Sort::Nat, Expr::lit(1u64), finish()).unwrap();
        let b = send(r("q"), "l", Sort::Nat, Expr::lit(2u64), finish()).unwrap();
        assert!(if_else(Expr::lit(true), a.clone(), b).is_ok());
        let c = finish();
        assert!(matches!(
            if_else(Expr::lit(true), a, c),
            Err(DslError::BranchTypeMismatch { .. })
        ));
    }

    #[test]
    fn external_constructors_do_not_change_the_type() {
        let inner = send(r("q"), "l", Sort::Nat, Expr::var("x"), finish()).unwrap();
        let ty = inner.local_type().clone();
        let z = read("ask", "x", write("log", Expr::var("x"), interact("f", Expr::var("x"), "y", inner)));
        assert_eq!(z.local_type(), &ty);
    }

    #[test]
    fn validate_catches_open_payload_sort_errors() {
        // The payload `x` is bound by no receive: validation must fail.
        let z = send(r("q"), "l", Sort::Nat, Expr::var("x"), finish()).unwrap();
        assert!(z.validate(&Externals::new()).is_err());
        // from_parts_unchecked really is unchecked until validated.
        let bogus = WtProc::from_parts_unchecked(Proc::Finish, alice_lt());
        assert!(bogus.validate(&Externals::new()).is_err());
    }

    #[test]
    fn recv_binds_values_for_later_payloads() {
        let mut ext = Externals::new();
        ext.register_write("log", Sort::Nat, |_| ());
        let z = recv1(
            r("p"),
            "l",
            Sort::Nat,
            "x",
            write(
                "log",
                Expr::var("x"),
                send(
                    r("p"),
                    "l2",
                    Sort::Nat,
                    Expr::add(Expr::var("x"), Expr::lit(1u64)),
                    finish(),
                )
                .unwrap(),
            ),
        )
        .unwrap();
        assert!(z.validate(&ext).is_ok());
        let _ = Value::Unit; // silence unused import in some cfgs
    }
}
