//! Error types for the DSL layer.

use std::fmt;

use zooid_mpst::local::LocalType;
use zooid_mpst::{Label, Role};

/// A specialised `Result` for DSL operations.
pub type Result<T> = std::result::Result<T, DslError>;

/// Errors produced while building well-typed processes or certifying them
/// against a protocol.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DslError {
    /// The global type given to [`Protocol::new`](crate::Protocol::new) is
    /// ill-formed.
    IllFormedProtocol(zooid_mpst::Error),
    /// The protocol cannot be projected onto the requested participant
    /// (the `\project` / `\get` step fails).
    Projection(zooid_mpst::Error),
    /// The participant looked up with `\get` is not part of the protocol.
    UnknownRole {
        /// The missing participant.
        role: Role,
    },
    /// A smart constructor was given inconsistent pieces (duplicate labels,
    /// empty choice, misplaced `otherwise`, ...).
    MalformedConstructor {
        /// Which constructor and why.
        reason: String,
    },
    /// Two alternatives of an `if`-process have different local types.
    BranchTypeMismatch {
        /// Type of the `then` branch.
        then_type: LocalType,
        /// Type of the `else` branch.
        else_type: LocalType,
    },
    /// A `select` has no `otherwise` alternative, has more than one, or the
    /// `otherwise` is not the last non-`skip` alternative.
    SelectShape {
        /// Why the shape is wrong.
        reason: String,
    },
    /// Duplicate label inside a `select`/`branch`.
    DuplicateLabel {
        /// The repeated label.
        label: Label,
    },
    /// The process's inferred local type is not equal (up to unravelling) to
    /// the projection of the protocol onto the role it claims to implement.
    TypeDoesNotMatchProjection {
        /// The role being implemented.
        role: Role,
        /// The type inferred for the process.
        inferred: Box<LocalType>,
        /// The projection of the global type onto the role.
        projected: Box<LocalType>,
    },
    /// The underlying typing judgement failed (this indicates a misuse of
    /// [`WtProc::from_parts_unchecked`] or an ill-sorted payload expression).
    Typing(zooid_proc::ProcError),
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DslError::IllFormedProtocol(e) => write!(f, "ill-formed protocol: {e}"),
            DslError::Projection(e) => write!(f, "projection failed: {e}"),
            DslError::UnknownRole { role } => {
                write!(f, "participant `{role}` is not part of the protocol")
            }
            DslError::MalformedConstructor { reason } => {
                write!(f, "malformed constructor: {reason}")
            }
            DslError::BranchTypeMismatch {
                then_type,
                else_type,
            } => write!(
                f,
                "the branches of an if-process have different local types: {then_type} and {else_type}"
            ),
            DslError::SelectShape { reason } => write!(f, "malformed select: {reason}"),
            DslError::DuplicateLabel { label } => {
                write!(f, "duplicate label `{label}` in a choice")
            }
            DslError::TypeDoesNotMatchProjection {
                role,
                inferred,
                projected,
            } => write!(
                f,
                "the process's local type {inferred} is not equal up to unravelling to the \
                 projection {projected} of the protocol onto `{role}`"
            ),
            DslError::Typing(e) => write!(f, "typing failed: {e}"),
        }
    }
}

impl std::error::Error for DslError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DslError::IllFormedProtocol(e) | DslError::Projection(e) => Some(e),
            DslError::Typing(e) => Some(e),
            _ => None,
        }
    }
}

impl From<zooid_proc::ProcError> for DslError {
    fn from(e: zooid_proc::ProcError) -> Self {
        DslError::Typing(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_without_trailing_punctuation() {
        let cases = vec![
            DslError::UnknownRole {
                role: Role::new("X"),
            },
            DslError::MalformedConstructor {
                reason: "empty branch list".into(),
            },
            DslError::SelectShape {
                reason: "missing otherwise".into(),
            },
            DslError::DuplicateLabel {
                label: Label::new("l"),
            },
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
            assert!(!msg.ends_with('.'), "{msg}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<DslError>();
    }
}
