//! The protocol workflow: `\project`, `\get` and certification of endpoint
//! implementations (§5.1, *A Common Workflow*).

use std::fmt;

use zooid_mpst::global::GlobalType;
use zooid_mpst::local::LocalType;
use zooid_mpst::projection::{project, project_all};
use zooid_mpst::Role;
use zooid_proc::{type_check, Externals, Proc};

use crate::builder::WtProc;
use crate::error::{DslError, Result};
use crate::unravel_eq::unravel_eq;

/// A named, well-formed global protocol, the entry point of the Zooid
/// workflow.
///
/// Constructing a `Protocol` checks well-formedness; [`Protocol::project_all`]
/// (the `\project` notation of §5.1) additionally checks projectability onto
/// every participant — only protocols that pass both can certify endpoint
/// implementations.
#[derive(Debug, Clone, PartialEq)]
pub struct Protocol {
    name: String,
    global: GlobalType,
}

impl Protocol {
    /// Wraps a global type, checking that it is well-formed (guarded, closed,
    /// non-empty label-distinct choices, no self-communication).
    ///
    /// # Errors
    ///
    /// [`DslError::IllFormedProtocol`] when the check fails.
    pub fn new(name: impl Into<String>, global: GlobalType) -> Result<Self> {
        global
            .well_formed()
            .map_err(DslError::IllFormedProtocol)?;
        Ok(Protocol {
            name: name.into(),
            global,
        })
    }

    /// The protocol's name (used in reports and diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying global type.
    pub fn global(&self) -> &GlobalType {
        &self.global
    }

    /// The participants of the protocol.
    pub fn roles(&self) -> Vec<Role> {
        self.global.participants().into_iter().collect()
    }

    /// Projects the protocol onto every participant — the paper's
    /// `\project` notation. Fails if the protocol is not projectable onto
    /// some participant, exactly like the Coq notation fails to typecheck.
    ///
    /// # Errors
    ///
    /// [`DslError::Projection`] when some projection is undefined.
    pub fn project_all(&self) -> Result<Vec<(Role, LocalType)>> {
        project_all(&self.global).map_err(DslError::Projection)
    }

    /// The projection onto one participant — the paper's `\get` notation.
    ///
    /// # Errors
    ///
    /// [`DslError::UnknownRole`] if the participant is not part of the
    /// protocol, [`DslError::Projection`] if the projection is undefined.
    pub fn get(&self, role: &Role) -> Result<LocalType> {
        if !self.global.participants().contains(role) {
            return Err(DslError::UnknownRole { role: role.clone() });
        }
        project(&self.global, role).map_err(DslError::Projection)
    }

    /// Certifies an endpoint implementation for `role`:
    ///
    /// 1. the process must be well-typed against the local type inferred by
    ///    the smart constructors (re-checked here, now that payload
    ///    expressions and external signatures can be resolved);
    /// 2. that local type must be equal *up to unravelling* to the
    ///    projection of the protocol onto `role` (step (4) of the workflow —
    ///    the small coinductive proof of §5.1, discharged by the
    ///    [`unravel_eq`] decision procedure).
    ///
    /// The returned [`CertifiedProcess`] is what the runtime executes; by
    /// Theorems 4.5 and 4.7 its traces are contained in the protocol's
    /// traces, so it inherits protocol compliance, deadlock-freedom and
    /// liveness from the global type.
    ///
    /// # Errors
    ///
    /// Any of the checks above failing is reported as a [`DslError`].
    pub fn implement(
        &self,
        role: &Role,
        process: WtProc,
        externals: &Externals,
    ) -> Result<CertifiedProcess> {
        process.validate(externals)?;
        let projected = self.get(role)?;
        let (proc, inferred) = process.into_parts();
        if !unravel_eq(&inferred, &projected) {
            return Err(DslError::TypeDoesNotMatchProjection {
                role: role.clone(),
                inferred: Box::new(inferred),
                projected: Box::new(projected),
            });
        }
        Ok(CertifiedProcess {
            protocol_name: self.name.clone(),
            role: role.clone(),
            proc,
            local: inferred,
            projected,
        })
    }

    /// Certifies an implementation provided as a raw process against the
    /// projection of the protocol onto `role` (option (1) of §5.1: the local
    /// type is given as a type index rather than inferred).
    ///
    /// # Errors
    ///
    /// Fails if the process is not well-typed against the projection.
    pub fn implement_against_projection(
        &self,
        role: &Role,
        proc: Proc,
        externals: &Externals,
    ) -> Result<CertifiedProcess> {
        let projected = self.get(role)?;
        type_check(&proc, &projected, externals)?;
        Ok(CertifiedProcess {
            protocol_name: self.name.clone(),
            role: role.clone(),
            proc,
            local: projected.clone(),
            projected,
        })
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol {}: {}", self.name, self.global)
    }
}

/// An endpoint implementation that has been certified against a protocol:
/// the process, the local type it implements, and the projection it was
/// checked against.
#[derive(Debug, Clone, PartialEq)]
pub struct CertifiedProcess {
    protocol_name: String,
    role: Role,
    proc: Proc,
    local: LocalType,
    projected: LocalType,
}

impl CertifiedProcess {
    /// The name of the protocol the process was certified against.
    pub fn protocol_name(&self) -> &str {
        &self.protocol_name
    }

    /// The role this process implements.
    pub fn role(&self) -> &Role {
        &self.role
    }

    /// The underlying process (what the runtime executes).
    pub fn proc(&self) -> &Proc {
        &self.proc
    }

    /// The local type the process implements.
    pub fn local_type(&self) -> &LocalType {
        &self.local
    }

    /// The projection of the protocol onto the role (equal to
    /// [`CertifiedProcess::local_type`] up to unravelling).
    pub fn projected_type(&self) -> &LocalType {
        &self.projected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{self, SelectAlt};
    use zooid_mpst::Sort;
    use zooid_proc::Expr;

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    fn ring() -> GlobalType {
        GlobalType::msg1(
            r("Alice"),
            r("Bob"),
            "l",
            Sort::Nat,
            GlobalType::msg1(
                r("Bob"),
                r("Carol"),
                "l",
                Sort::Nat,
                GlobalType::msg1(r("Carol"), r("Alice"), "l", Sort::Nat, GlobalType::End),
            ),
        )
    }

    fn ping_pong() -> GlobalType {
        GlobalType::rec(GlobalType::msg(
            r("Alice"),
            r("Bob"),
            vec![
                (zooid_mpst::Label::new("l1"), Sort::Unit, GlobalType::End),
                (
                    zooid_mpst::Label::new("l2"),
                    Sort::Nat,
                    GlobalType::msg1(r("Bob"), r("Alice"), "l3", Sort::Nat, GlobalType::var(0)),
                ),
            ],
        ))
    }

    #[test]
    fn protocol_creation_checks_well_formedness() {
        assert!(Protocol::new("ring", ring()).is_ok());
        let bad = GlobalType::rec(GlobalType::var(0));
        assert!(matches!(
            Protocol::new("bad", bad),
            Err(DslError::IllFormedProtocol(_))
        ));
    }

    #[test]
    fn project_all_and_get_follow_the_workflow() {
        let p = Protocol::new("ring", ring()).unwrap();
        let all = p.project_all().unwrap();
        assert_eq!(all.len(), 3);
        let alice = p.get(&r("Alice")).unwrap();
        assert_eq!(
            alice,
            LocalType::send1(
                r("Bob"),
                "l",
                Sort::Nat,
                LocalType::recv1(r("Carol"), "l", Sort::Nat, LocalType::End)
            )
        );
        assert!(matches!(
            p.get(&r("Zoe")),
            Err(DslError::UnknownRole { .. })
        ));
        assert_eq!(p.roles().len(), 3);
        assert_eq!(p.name(), "ring");
    }

    #[test]
    fn unprojectable_protocols_fail_at_project_all() {
        let g_prime = GlobalType::msg(
            r("Alice"),
            r("Bob"),
            vec![
                (
                    zooid_mpst::Label::new("l1"),
                    Sort::Nat,
                    GlobalType::msg1(r("Bob"), r("Carol"), "l", Sort::Nat, GlobalType::End),
                ),
                (
                    zooid_mpst::Label::new("l2"),
                    Sort::Nat,
                    GlobalType::msg1(r("Alice"), r("Carol"), "l", Sort::Nat, GlobalType::End),
                ),
            ],
        );
        let p = Protocol::new("bad-merge", g_prime).unwrap();
        assert!(matches!(p.project_all(), Err(DslError::Projection(_))));
    }

    #[test]
    fn implement_certifies_a_correct_alice() {
        let p = Protocol::new("ring", ring()).unwrap();
        let alice = builder::send(
            r("Bob"),
            "l",
            Sort::Nat,
            Expr::lit(7u64),
            builder::recv1(r("Carol"), "l", Sort::Nat, "y", builder::finish()).unwrap(),
        )
        .unwrap();
        let cert = p.implement(&r("Alice"), alice, &Externals::new()).unwrap();
        assert_eq!(cert.role(), &r("Alice"));
        assert_eq!(cert.protocol_name(), "ring");
        assert_eq!(cert.local_type(), cert.projected_type());
    }

    #[test]
    fn implement_rejects_a_process_for_the_wrong_role() {
        let p = Protocol::new("ring", ring()).unwrap();
        let alice = builder::send(
            r("Bob"),
            "l",
            Sort::Nat,
            Expr::lit(7u64),
            builder::recv1(r("Carol"), "l", Sort::Nat, "y", builder::finish()).unwrap(),
        )
        .unwrap();
        assert!(matches!(
            p.implement(&r("Bob"), alice, &Externals::new()),
            Err(DslError::TypeDoesNotMatchProjection { .. })
        ));
    }

    #[test]
    fn implement_accepts_unrollings_of_the_projection() {
        // alice4 of §5.1 implements an unrolling of the ping-pong projection.
        let p = Protocol::new("ping-pong", ping_pong()).unwrap();
        let k = 5u64;
        let inner = builder::select(
            r("Bob"),
            vec![
                SelectAlt::case(
                    Expr::ge(Expr::var("x"), Expr::lit(k)),
                    "l1",
                    Sort::Unit,
                    Expr::unit(),
                    builder::finish(),
                ),
                SelectAlt::otherwise("l2", Sort::Nat, Expr::var("x"), builder::jump(0)),
            ],
        )
        .unwrap();
        let looping =
            builder::loop_(builder::recv1(r("Bob"), "l3", Sort::Nat, "x", inner).unwrap()).unwrap();
        let alice4 = builder::select(
            r("Bob"),
            vec![
                SelectAlt::skip("l1", Sort::Unit, LocalType::End),
                SelectAlt::otherwise("l2", Sort::Nat, Expr::lit(0u64), looping),
            ],
        )
        .unwrap();
        let cert = p.implement(&r("Alice"), alice4, &Externals::new()).unwrap();
        assert_ne!(cert.local_type(), cert.projected_type());
        assert!(unravel_eq(cert.local_type(), cert.projected_type()));
    }

    #[test]
    fn implement_against_projection_typechecks_raw_processes() {
        let p = Protocol::new("ring", ring()).unwrap();
        // Carol: recv Bob (l, x)? send Alice (l, x)! finish — written as a
        // plain Proc rather than through the smart constructors.
        let carol = Proc::recv1(
            r("Bob"),
            "l",
            Sort::Nat,
            "x",
            Proc::send(r("Alice"), "l", Expr::var("x"), Proc::Finish),
        );
        let cert = p
            .implement_against_projection(&r("Carol"), carol, &Externals::new())
            .unwrap();
        assert_eq!(cert.role(), &r("Carol"));

        // A process that quits immediately does not implement Carol.
        let bogus = Proc::Finish;
        assert!(p
            .implement_against_projection(&r("Carol"), bogus, &Externals::new())
            .is_err());
    }

    #[test]
    fn display_mentions_the_protocol_name() {
        let p = Protocol::new("ring", ring()).unwrap();
        assert!(p.to_string().contains("ring"));
    }
}
