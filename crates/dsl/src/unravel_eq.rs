//! Equality of local types up to unravelling (§5.1).
//!
//! A process often implements an *unrolling* of its projected local type —
//! e.g. `alice4` in §5.1, whose inferred type unfolds the recursion once. In
//! the Coq development a small coinductive proof shows the two types unravel
//! to the same local tree; here that proof obligation is the decision
//! procedure [`unravel_eq`].

use zooid_mpst::local::{unravel_local, LocalType};

/// Decides whether two local types unravel to the same (bisimilar) local
/// tree, i.e. whether they prescribe the same behaviour up to unfolding of
/// recursion.
///
/// Structurally equal types short-circuit without unravelling at all (the
/// common case when a process implements its projection verbatim); otherwise
/// both types are unravelled through the hash-consed builder and their trees
/// compared up to bisimilarity.
///
/// Ill-formed types (unguarded or open) are never equal to anything,
/// including themselves.
///
/// # Examples
///
/// ```
/// use zooid_dsl::unravel_eq;
/// use zooid_mpst::local::LocalType;
/// use zooid_mpst::{Role, Sort};
///
/// let l = LocalType::rec(LocalType::send1(Role::new("q"), "ping", Sort::Nat, LocalType::var(0)));
/// assert!(unravel_eq(&l, &l.unfold_once()));
/// assert!(!unravel_eq(&l, &LocalType::End));
/// ```
pub fn unravel_eq(a: &LocalType, b: &LocalType) -> bool {
    if a == b {
        return a.well_formed().is_ok();
    }
    match (unravel_local(a), unravel_local(b)) {
        (Ok(ta), Ok(tb)) => ta.equivalent(&tb),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zooid_mpst::common::branch::Branch;
    use zooid_mpst::{Role, Sort};

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    fn ping_type() -> LocalType {
        LocalType::rec(LocalType::Send {
            to: r("Bob"),
            branches: vec![
                Branch::new("l1", Sort::Unit, LocalType::End),
                Branch::new(
                    "l2",
                    Sort::Nat,
                    LocalType::recv1(r("Bob"), "l3", Sort::Nat, LocalType::var(0)),
                ),
            ],
        })
    }

    #[test]
    fn unravel_eq_is_reflexive_and_symmetric_on_well_formed_types() {
        let l = ping_type();
        assert!(unravel_eq(&l, &l));
        assert!(unravel_eq(&l, &l.unfold_once()));
        assert!(unravel_eq(&l.unfold_once(), &l));
    }

    #[test]
    fn unravel_eq_is_transitive_across_multiple_unrollings() {
        let l = ping_type();
        let twice = l.unfold_once().unfold_once();
        assert!(unravel_eq(&l, &twice));
    }

    #[test]
    fn different_behaviours_are_distinguished() {
        let l = ping_type();
        let other = LocalType::rec(LocalType::send1(r("Bob"), "l1", Sort::Unit, LocalType::var(0)));
        assert!(!unravel_eq(&l, &other));
        assert!(!unravel_eq(&l, &LocalType::End));
    }

    #[test]
    fn ill_formed_types_are_never_equal() {
        let bad = LocalType::rec(LocalType::var(0));
        assert!(!unravel_eq(&bad, &bad));
        assert!(!unravel_eq(&bad, &LocalType::End));
    }
}
