//! The Zooid DSL: well-typed-by-construction multiparty processes
//! (§4.2–§4.3 and §5 of the paper, `Zooid.v` in the Coq development).
//!
//! The DSL layer sits on top of [`zooid_proc`] and [`zooid_mpst`] and turns
//! "write a process, then hope it follows the protocol" into the paper's
//! workflow (§5, *A Common Workflow*):
//!
//! 1. specify the protocol as a global type and wrap it in a [`Protocol`]
//!    (which checks well-formedness);
//! 2. project it onto every participant with [`Protocol::project_all`]
//!    (the `\project` notation) and pick a participant's local type with
//!    [`Protocol::get`] (the `\get` notation);
//! 3. implement the participant with the smart constructors of [`builder`]:
//!    every constructor fully determines the local type of the term it
//!    builds, so the result is a [`WtProc`] — a process *paired with* its
//!    inferred local type, the counterpart of the Coq dependent pair
//!    `{P : Proc | of_lt P L}`;
//! 4. certify it against the protocol with [`Protocol::implement`], which
//!    checks the typing derivation and that the inferred type is equal *up
//!    to unravelling* to the projection (the step the paper performs with a
//!    small coinductive proof, §5.1);
//! 5. hand the resulting [`CertifiedProcess`] to `zooid-runtime` for
//!    execution.
//!
//! # Example: the §2.3 ring, Alice's endpoint
//!
//! ```
//! use zooid_dsl::builder::{self, WtProc};
//! use zooid_dsl::Protocol;
//! use zooid_mpst::global::GlobalType;
//! use zooid_mpst::{Role, Sort};
//! use zooid_proc::{Expr, Externals};
//!
//! // G = Alice -> Bob : l(nat). Bob -> Carol : l(nat). Carol -> Alice : l(nat). end
//! let g = GlobalType::msg1(Role::new("Alice"), Role::new("Bob"), "l", Sort::Nat,
//!     GlobalType::msg1(Role::new("Bob"), Role::new("Carol"), "l", Sort::Nat,
//!         GlobalType::msg1(Role::new("Carol"), Role::new("Alice"), "l", Sort::Nat,
//!             GlobalType::End)));
//! let protocol = Protocol::new("ring", g).unwrap();
//!
//! // proc = send Bob (l, 7 : nat)! recv Carol (l, y : nat)? finish
//! let alice: WtProc = builder::send(
//!     Role::new("Bob"), "l", Sort::Nat, Expr::lit(7u64),
//!     builder::recv1(Role::new("Carol"), "l", Sort::Nat, "y", builder::finish()).unwrap(),
//! ).unwrap();
//!
//! let certified = protocol
//!     .implement(&Role::new("Alice"), alice, &Externals::new())
//!     .unwrap();
//! assert_eq!(certified.role().name(), "Alice");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod error;
pub mod protocol;
pub mod unravel_eq;

pub use builder::WtProc;
pub use error::{DslError, Result};
pub use protocol::{CertifiedProcess, Protocol};
pub use unravel_eq::unravel_eq;
