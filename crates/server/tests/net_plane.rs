//! Integration tests for the networked serving plane: sessions multiplexed
//! over real loopback sockets must be verdict-for-verdict identical to
//! direct submission, admission control must shed with the documented
//! structured rejection codes, and hostile bytes must cost the server one
//! connection — never its health.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use zooid_dsl::Protocol;
use zooid_mpst::generators;
use zooid_runtime::{MuxFrame, RejectCode};
use zooid_server::synth::skeleton_endpoints;
use zooid_server::{
    NetClient, NetServer, NetServerConfig, ProtocolRegistry, ServerConfig, Service, SessionServer,
    SessionSpec,
};

const EVENT_TIMEOUT: Duration = Duration::from_secs(10);

fn registry_with_case_studies() -> (ProtocolRegistry, Vec<(String, zooid_server::ProtocolId)>) {
    let mut registry = ProtocolRegistry::new();
    let mut ids = Vec::new();
    for (name, g) in [
        ("ring", generators::ring3()),
        ("two_buyer", generators::two_buyer()),
        ("fanout", generators::fanout_n(4)),
    ] {
        let protocol = Protocol::new(name, g).unwrap();
        let id = registry.register(protocol).unwrap();
        ids.push((name.to_owned(), id));
    }
    (registry, ids)
}

fn services(registry: &ProtocolRegistry, ids: &[(String, zooid_server::ProtocolId)]) -> Vec<Service> {
    ids.iter()
        .map(|(_, id)| Service::skeleton(registry, *id).unwrap().with_max_steps(64))
        .collect()
}

/// Waits for the next frame, failing the test on silence.
fn next_event(client: &mut NetClient) -> MuxFrame {
    let deadline = Instant::now() + EVENT_TIMEOUT;
    loop {
        match client.poll_event(Duration::from_millis(100)) {
            Ok(Some(frame)) => return frame,
            Ok(None) => assert!(Instant::now() < deadline, "no frame within {EVENT_TIMEOUT:?}"),
            Err(e) => panic!("client transport failed: {e}"),
        }
    }
}

/// Collects events until every listed session has a `Done`, asserting each
/// one was `Accepted` first.
fn await_done(client: &mut NetClient, sessions: &[u64]) -> BTreeMap<u64, MuxFrame> {
    let mut accepted = std::collections::BTreeSet::new();
    let mut done = BTreeMap::new();
    while done.len() < sessions.len() {
        match next_event(client) {
            MuxFrame::Accepted { session } => {
                assert!(accepted.insert(session), "session {session} accepted twice");
            }
            frame @ MuxFrame::Done { .. } => {
                let MuxFrame::Done { session, .. } = frame else { unreachable!() };
                assert!(accepted.contains(&session), "done before accept for {session}");
                assert!(done.insert(session, frame).is_none(), "double done for {session}");
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    for session in sessions {
        assert!(done.contains_key(session), "session {session} never finished");
    }
    done
}

#[test]
fn multiplexed_sessions_match_direct_submission() {
    let (registry, ids) = registry_with_case_studies();

    // Baseline: the same skeleton specs submitted straight to a
    // SessionServer, no sockets involved.
    let mut direct: BTreeMap<String, (bool, bool, bool, u32, u64)> = BTreeMap::new();
    {
        let (registry, ids2) = registry_with_case_studies();
        let mut server = SessionServer::start(registry, ServerConfig::default());
        let mut submitted = BTreeMap::new();
        for (name, id) in &ids2 {
            let endpoints = skeleton_endpoints(
                server.registry().get(*id).unwrap().protocol(),
            )
            .unwrap();
            let sid = server
                .submit(SessionSpec::new(*id, endpoints).with_max_steps(64))
                .unwrap();
            submitted.insert(sid, name.clone());
        }
        for outcome in server.drain() {
            let name = submitted.remove(&outcome.id).unwrap();
            let actions: u64 = outcome
                .endpoints
                .values()
                .map(|r| r.actions.len() as u64)
                .sum();
            direct.insert(
                name,
                (
                    outcome.compliant,
                    outcome.complete,
                    outcome.stalled,
                    outcome.violations.len() as u32,
                    actions,
                ),
            );
        }
    }

    let catalog = services(&registry, &ids);
    let server = NetServer::start(registry, catalog, NetServerConfig::default()).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    // 10 interleaved copies of each protocol on one connection.
    let mut opened: Vec<(u64, String)> = Vec::new();
    for round in 0..10 {
        let _ = round;
        for (name, _) in &ids {
            let session = client.open(name).unwrap();
            opened.push((session, name.clone()));
        }
    }
    let sessions: Vec<u64> = opened.iter().map(|(s, _)| *s).collect();
    let done = await_done(&mut client, &sessions);

    for (session, name) in &opened {
        let MuxFrame::Done {
            compliant,
            complete,
            stalled,
            violations,
            actions,
            ..
        } = done[session]
        else {
            unreachable!()
        };
        let expected = &direct[name];
        assert_eq!(
            (compliant, complete, stalled, violations, actions),
            *expected,
            "verdicts diverged for `{name}` (session {session})"
        );
    }

    let report = server.net_report();
    assert_eq!(report.connections_accepted, 1);
    assert_eq!(report.sessions_opened, sessions.len() as u64);
    assert_eq!(report.sessions_done, sessions.len() as u64);
    assert_eq!(report.bad_frames, 0);
    // Every Open was read; every Accepted and Done was written.
    assert_eq!(report.frames_read, sessions.len() as u64);
    assert_eq!(report.frames_written, 2 * sessions.len() as u64);

    let final_report = server.shutdown();
    assert_eq!(final_report.net.sessions_done, sessions.len() as u64);
    assert!(!final_report.to_string().is_empty());
}

#[test]
fn many_connections_share_the_server() {
    let (registry, ids) = registry_with_case_studies();
    let catalog = services(&registry, &ids);
    let server = NetServer::start(registry, catalog, NetServerConfig::default()).unwrap();

    let addr = server.local_addr();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).unwrap();
                let mut sessions = Vec::new();
                for _ in 0..8 {
                    sessions.push(client.open("ring").unwrap());
                }
                let done = await_done(&mut client, &sessions);
                for frame in done.values() {
                    let MuxFrame::Done { compliant, complete, .. } = frame else {
                        unreachable!()
                    };
                    assert!(*compliant && *complete);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    let report = server.shutdown();
    assert_eq!(report.net.connections_accepted, 4);
    assert_eq!(report.net.sessions_done, 32);
    assert_eq!(report.net.sessions_opened, 32);
}

#[test]
fn per_connection_cap_sheds_with_session_limit() {
    let (registry, ids) = registry_with_case_studies();
    let catalog = services(&registry, &ids);
    let config = NetServerConfig {
        max_inflight_per_conn: 0,
        ..NetServerConfig::default()
    };
    let server = NetServer::start(registry, catalog, config).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    let session = client.open("ring").unwrap();
    match next_event(&mut client) {
        MuxFrame::Rejected { session: s, code, reason } => {
            assert_eq!(s, session);
            assert_eq!(code, RejectCode::SessionLimit);
            assert!(!reason.is_empty());
        }
        other => panic!("expected SessionLimit, got {other:?}"),
    }

    let report = server.shutdown();
    assert_eq!(report.net.sessions_shed, 1);
    assert_eq!(report.net.sessions_opened, 0);
    // The shed is attributed to its own code, not a lumped counter.
    assert_eq!(report.net.rejects.session_limit, 1, "{}", report.net);
    assert_eq!(report.net.rejects.overloaded, 0, "{}", report.net);
    assert_eq!(report.net.rejects.unknown_protocol, 0, "{}", report.net);
}

#[test]
fn global_cap_sheds_with_overloaded() {
    let (registry, ids) = registry_with_case_studies();
    let catalog = services(&registry, &ids);
    let config = NetServerConfig {
        max_inflight_total: 0,
        ..NetServerConfig::default()
    };
    let server = NetServer::start(registry, catalog, config).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    let session = client.open("two_buyer").unwrap();
    match next_event(&mut client) {
        MuxFrame::Rejected { session: s, code, .. } => {
            assert_eq!(s, session);
            assert_eq!(code, RejectCode::Overloaded);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let report = server.shutdown();
    assert_eq!(report.net.sessions_shed, 1);
    assert_eq!(report.net.rejects.overloaded, 1, "{}", report.net);
    assert_eq!(report.net.rejects.session_limit, 0, "{}", report.net);
}

#[test]
fn connection_limit_refuses_excess_connections() {
    let (registry, ids) = registry_with_case_studies();
    let catalog = services(&registry, &ids);
    let config = NetServerConfig {
        max_connections: 1,
        ..NetServerConfig::default()
    };
    let server = NetServer::start(registry, catalog, config).unwrap();

    // First client is admitted — prove it by running a session.
    let mut first = NetClient::connect(server.local_addr()).unwrap();
    let session = first.open("ring").unwrap();
    let done = await_done(&mut first, &[session]);
    assert!(matches!(done[&session], MuxFrame::Done { compliant: true, .. }));

    // Second client is over the cap: a structured rejection, then close.
    let mut second = NetClient::connect(server.local_addr()).unwrap();
    match next_event(&mut second) {
        MuxFrame::Rejected { code, .. } => assert_eq!(code, RejectCode::ConnectionLimit),
        other => panic!("expected ConnectionLimit, got {other:?}"),
    }

    // Once the first client leaves, a new one gets in (close detection
    // takes a sweep, so retry briefly).
    drop(first);
    let deadline = Instant::now() + EVENT_TIMEOUT;
    let admitted = loop {
        let mut third = NetClient::connect(server.local_addr()).unwrap();
        let session = third.open("ring").unwrap();
        match next_event(&mut third) {
            MuxFrame::Accepted { session: s } => {
                assert_eq!(s, session);
                break third;
            }
            MuxFrame::Rejected { code, .. } => {
                assert_eq!(code, RejectCode::ConnectionLimit);
                assert!(Instant::now() < deadline, "slot never freed");
                std::thread::sleep(Duration::from_millis(10));
            }
            other => panic!("unexpected frame {other:?}"),
        }
    };
    let mut third = admitted;
    // Drain the session so the shutdown counters are stable.
    while !matches!(next_event(&mut third), MuxFrame::Done { .. }) {}

    let report = server.shutdown();
    assert!(report.net.connections_rejected >= 1, "{}", report.net);
    assert_eq!(report.net.connections_accepted, 2);
    assert!(report.net.rejects.connection_limit >= 1, "{}", report.net);
}

#[test]
fn unknown_protocols_are_rejected_but_the_connection_survives() {
    let (registry, ids) = registry_with_case_studies();
    let catalog = services(&registry, &ids);
    let server = NetServer::start(registry, catalog, NetServerConfig::default()).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    let bogus = client.open("no_such_protocol").unwrap();
    match next_event(&mut client) {
        MuxFrame::Rejected { session, code, reason } => {
            assert_eq!(session, bogus);
            assert_eq!(code, RejectCode::UnknownProtocol);
            assert!(reason.contains("no_such_protocol"), "{reason}");
        }
        other => panic!("expected UnknownProtocol, got {other:?}"),
    }

    // Same connection, real protocol: still served.
    let session = client.open("fanout").unwrap();
    let done = await_done(&mut client, &[session]);
    assert!(matches!(done[&session], MuxFrame::Done { compliant: true, .. }));

    let report = server.shutdown();
    assert_eq!(report.net.sessions_rejected, 1);
    assert_eq!(report.net.sessions_done, 1);
    assert_eq!(report.net.rejects.unknown_protocol, 1, "{}", report.net);
    assert_eq!(report.net.rejects.bad_frame, 0, "{}", report.net);
}

/// Reads frames off a raw socket until EOF, returning decoded mux frames.
fn drain_raw(stream: &mut TcpStream) -> Vec<MuxFrame> {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = zooid_runtime::FrameReader::new(zooid_runtime::DEFAULT_MAX_FRAME_BYTES);
    let mut frames = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        while let Ok(Some(payload)) = reader.next_frame() {
            if let Ok(frame) = zooid_runtime::wire::decode_mux(&payload) {
                frames.push(frame);
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => reader.extend(&buf[..n]),
            Err(_) => break,
        }
    }
    while let Ok(Some(payload)) = reader.next_frame() {
        if let Ok(frame) = zooid_runtime::wire::decode_mux(&payload) {
            frames.push(frame);
        }
    }
    frames
}

#[test]
fn hostile_bytes_cost_one_connection_not_the_server() {
    let (registry, ids) = registry_with_case_studies();
    let catalog = services(&registry, &ids);
    let server = NetServer::start(registry, catalog, NetServerConfig::default()).unwrap();

    // Probe 1: a frame whose payload is not a mux frame.
    let mut garbage = TcpStream::connect(server.local_addr()).unwrap();
    garbage.write_all(&4u32.to_be_bytes()).unwrap();
    garbage.write_all(&[0xFF; 4]).unwrap();
    let frames = drain_raw(&mut garbage);
    assert!(
        frames
            .iter()
            .any(|f| matches!(f, MuxFrame::Rejected { code: RejectCode::BadFrame, .. })),
        "expected a BadFrame rejection, got {frames:?}"
    );

    // Probe 2: an absurd length prefix. The server must refuse without
    // allocating and close the connection.
    let mut oversized = TcpStream::connect(server.local_addr()).unwrap();
    oversized.write_all(&u32::MAX.to_be_bytes()).unwrap();
    let frames = drain_raw(&mut oversized);
    assert!(
        frames
            .iter()
            .any(|f| matches!(f, MuxFrame::Rejected { code: RejectCode::BadFrame, .. })),
        "expected a BadFrame rejection, got {frames:?}"
    );

    // The server is still perfectly healthy for a compliant client.
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let session = client.open("ring").unwrap();
    let done = await_done(&mut client, &[session]);
    assert!(matches!(done[&session], MuxFrame::Done { compliant: true, .. }));

    let report = server.shutdown();
    assert!(report.net.bad_frames >= 2, "{}", report.net);
    assert!(report.net.rejects.bad_frame >= 2, "{}", report.net);
    assert_eq!(report.net.sessions_done, 1);
    assert_eq!(report.net.connections_accepted, 3);
}

#[test]
fn outcomes_for_dead_connections_are_not_misdelivered() {
    let (registry, ids) = registry_with_case_studies();
    let catalog = services(&registry, &ids);
    let server = NetServer::start(registry, catalog, NetServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // Repeatedly open a burst of sessions and vanish before their outcomes
    // return, then immediately connect a fresh client that may reuse the
    // dead connection's slot. The stale outcomes must be dropped — the new
    // client must see frames only for sessions it opened itself.
    for _ in 0..10 {
        {
            let mut ghost = NetClient::connect(addr).unwrap();
            for _ in 0..32 {
                ghost.open("ring").unwrap();
            }
        } // dropped with every outcome still in flight
        let mut client = NetClient::connect(addr).unwrap();
        let session = client.open("ring").unwrap();
        let mut accepted = false;
        loop {
            let frame = next_event(&mut client);
            let (MuxFrame::Accepted { session: s }
            | MuxFrame::Done { session: s, .. }
            | MuxFrame::Rejected { session: s, .. }) = frame
            else {
                panic!("unexpected frame {frame:?}")
            };
            assert_eq!(s, session, "frame for a session this client never opened: {frame:?}");
            match frame {
                MuxFrame::Accepted { .. } => accepted = true,
                MuxFrame::Done { .. } => break,
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert!(accepted, "done before accept");
        // After this client's own Done, nothing further may arrive: a stale
        // ghost outcome surfacing here is exactly the misdelivery bug.
        assert_eq!(client.poll_event(Duration::from_millis(50)).unwrap(), None);
    }
    server.shutdown();
}

#[test]
fn write_hog_is_disconnected_not_buffered_without_bound() {
    let (registry, ids) = registry_with_case_studies();
    let catalog = services(&registry, &ids);
    // Every Open is shed with a rejection frame; a tiny write high-water
    // mark makes the backlog bound observable quickly.
    let config = NetServerConfig {
        max_inflight_per_conn: 0,
        max_conn_outbuf_bytes: 64 * 1024,
        ..NetServerConfig::default()
    };
    let server = NetServer::start(registry, catalog, config).unwrap();

    // A hog that floods Opens and never reads: once the kernel buffers are
    // full, the server's userspace backlog hits the mark and the hog is
    // disconnected instead of growing server memory without bound.
    let mut hog = TcpStream::connect(server.local_addr()).unwrap();
    hog.set_write_timeout(Some(Duration::from_secs(10))).unwrap();
    let open = {
        let payload = zooid_runtime::wire::encode_mux(&MuxFrame::Open {
            session: 1,
            protocol: "ring".into(),
        });
        let mut buf = bytes::BytesMut::new();
        zooid_runtime::wire::put_frame(
            &mut buf,
            &payload,
            zooid_runtime::DEFAULT_MAX_FRAME_BYTES,
        )
        .unwrap();
        buf.to_vec()
    };
    let mut cut_off = false;
    for _ in 0..400_000 {
        if hog.write_all(&open).is_err() {
            cut_off = true;
            break;
        }
    }
    assert!(cut_off, "the non-reading flood was never disconnected");

    // The server itself stays healthy for a compliant client.
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let probe = client.open("ring").unwrap();
    match next_event(&mut client) {
        MuxFrame::Rejected { session, code, .. } => {
            assert_eq!(session, probe);
            assert_eq!(code, RejectCode::SessionLimit);
        }
        other => panic!("expected SessionLimit (per-conn cap is 0), got {other:?}"),
    }

    let report = server.shutdown();
    assert!(report.net.connections_closed >= 1, "{}", report.net);
    assert!(report.net.sessions_shed > 0, "{}", report.net);
}

#[test]
fn shutdown_tells_lingering_clients() {
    let (registry, ids) = registry_with_case_studies();
    let catalog = services(&registry, &ids);
    let server = NetServer::start(registry, catalog, NetServerConfig::default()).unwrap();

    // An idle raw connection: admitted, no traffic.
    let mut idle = TcpStream::connect(server.local_addr()).unwrap();
    // Give the loop a moment to admit it before stopping.
    let deadline = Instant::now() + EVENT_TIMEOUT;
    while server.net_report().connections_accepted == 0 {
        assert!(Instant::now() < deadline, "connection never admitted");
        std::thread::sleep(Duration::from_millis(1));
    }

    let report = server.shutdown();
    assert_eq!(report.net.connections_accepted, 1);

    let frames = drain_raw(&mut idle);
    assert!(
        frames
            .iter()
            .any(|f| matches!(f, MuxFrame::Rejected { code: RejectCode::ShuttingDown, .. })),
        "expected a ShuttingDown notice, got {frames:?}"
    );
}

#[test]
fn live_stats_are_fetchable_over_the_wire() {
    let (registry, ids) = registry_with_case_studies();
    let catalog = services(&registry, &ids);
    let server = NetServer::start(registry, catalog, NetServerConfig::default()).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    // Run a few sessions to completion so the histograms have substance.
    let sessions: Vec<u64> = (0..6).map(|_| client.open("ring").unwrap()).collect();
    await_done(&mut client, &sessions);
    // One rejection so a per-code counter is visibly nonzero on the wire.
    let bogus = client.open("no_such_protocol").unwrap();
    match next_event(&mut client) {
        MuxFrame::Rejected { session, code, .. } => {
            assert_eq!(session, bogus);
            assert_eq!(code, RejectCode::UnknownProtocol);
        }
        other => panic!("expected UnknownProtocol, got {other:?}"),
    }

    // The same connection pulls the whole observability bundle live — no
    // shutdown, no side channel.
    let stats = client
        .fetch_stats(EVENT_TIMEOUT)
        .unwrap()
        .expect("stats reply within the timeout");
    assert_eq!(stats.net.sessions_opened, 6);
    assert_eq!(stats.net.sessions_done, 6);
    assert_eq!(stats.net.rejects.unknown_protocol, 1);
    assert!(stats.net.io_pass_ns.count() > 0, "pass durations recorded");
    let obs = &stats.shards.obs;
    assert_eq!(obs.session_wall_ns.count(), 6, "one wall sample per session");
    assert!(obs.session_wall_ns.p50() <= obs.session_wall_ns.p99());
    assert!(obs.action_cost_ns.count() > 0, "per-action cost recorded");
    assert!(obs.flight_events >= 6, "admissions hit the flight recorder");
    assert!(obs.per_protocol_wall_ns.len() == 1, "only ring sessions ran");
    assert!(stats.incidents.is_empty(), "certified skeletons comply");
    assert_eq!(obs.incidents_recorded, 0);
    let started: u64 = stats.shards.shards.iter().map(|s| s.sessions_started).sum();
    assert_eq!(started, 6);

    // The stats exchange is accounted like any other frame traffic.
    let report = server.net_report();
    assert!(report.frames_read > stats.net.frames_read - 1);
    server.shutdown();
}
