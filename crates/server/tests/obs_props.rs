//! Property-based tests for the observability histogram: merging shard
//! snapshots must be a lossless commutative monoid, every recorded value
//! must land inside the bounds of the bucket that reports it, and the
//! surfaced percentiles must be monotone and bounded by the exact maximum
//! — whatever the workload looks like.

use proptest::prelude::*;

use zooid_server::obs::{bucket_bounds, bucket_of, Histogram, HistogramSnapshot};

/// Values spread over the whole log2 range, not just small integers: a mix
/// of raw 64-bit draws and exact powers of two (bucket edges).
fn values_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u64>(),
            (0u32..64).prop_map(|s| 1u64 << s.min(63)),
            0u64..1000,
        ],
        0..64,
    )
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merge_is_commutative_and_associative(
        a in values_strategy(),
        b in values_strategy(),
        c in values_strategy(),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        let mut ab = sa;
        ab.merge(&sb);
        let mut ba = sb;
        ba.merge(&sa);
        prop_assert_eq!(ab, ba, "merge must commute");

        // (a ⊕ b) ⊕ c  =  a ⊕ (b ⊕ c)
        let mut left = ab;
        left.merge(&sc);
        let mut bc = sb;
        bc.merge(&sc);
        let mut right = sa;
        right.merge(&bc);
        prop_assert_eq!(left, right, "merge must associate");

        // ... and both equal recording everything into one histogram.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(left, snapshot_of(&all), "merge must be lossless");
    }

    #[test]
    fn merging_an_empty_snapshot_is_the_identity(a in values_strategy()) {
        let sa = snapshot_of(&a);
        let mut merged = sa;
        merged.merge(&HistogramSnapshot::default());
        prop_assert_eq!(merged, sa);
    }

    #[test]
    fn every_recorded_value_is_inside_its_reported_bucket(v in any::<u64>()) {
        let (lo, hi) = bucket_bounds(bucket_of(v));
        prop_assert!(lo <= v && v <= hi, "{} outside [{}, {}]", v, lo, hi);
        // The snapshot puts the observation in exactly that bucket.
        let snap = snapshot_of(&[v]);
        prop_assert_eq!(snap.buckets()[bucket_of(v)], 1);
        prop_assert_eq!(snap.count(), 1);
        prop_assert_eq!(snap.max(), v);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded(values in values_strategy()) {
        let snap = snapshot_of(&values);
        let p50 = snap.p50();
        let p90 = snap.p90();
        let p99 = snap.p99();
        prop_assert!(p50 <= p90, "p50 {} > p90 {}", p50, p90);
        prop_assert!(p90 <= p99, "p90 {} > p99 {}", p90, p99);
        prop_assert!(p99 <= snap.max(), "p99 {} > max {}", p99, snap.max());
        prop_assert_eq!(snap.max(), values.iter().copied().max().unwrap_or(0));
        // Quantiles are monotone in q across the whole range, too.
        let mut prev = 0u64;
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let cur = snap.quantile(q);
            prop_assert!(prev <= cur, "quantile({}) regressed: {} < {}", q, cur, prev);
            prev = cur;
        }
    }

    #[test]
    fn quantiles_never_underestimate_their_rank(values in values_strategy(), q in 0.01f64..1.0) {
        if !values.is_empty() {
            let snap = snapshot_of(&values);
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            // Bucket resolution only ever rounds *up* (to the bucket's upper
            // bound, capped at the true max): the reported quantile is always
            // an upper bound of the exact order statistic.
            prop_assert!(
                snap.quantile(q) >= exact,
                "quantile({}) = {} underestimates exact {}",
                q,
                snap.quantile(q),
                exact
            );
        }
    }
}
