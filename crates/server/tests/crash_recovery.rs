//! Crash recovery on the serving plane: shard evacuation, re-certified
//! migration, checkpoint-restart quarantine, adaptive violation
//! thresholds, and the wire-level reject-then-ban escalation.
//!
//! The durable-session covenant is tested at the server boundary here (the
//! runtime-level kill-at-every-quantum differential lives in the runtime
//! crate's `durability` suite):
//!
//! * [`SessionServer::drain_shard`] checkpoints every session queued on a
//!   shard and hands the encoded blobs to the caller; the sessions go
//!   silent — no outcomes — until re-admitted.
//! * [`SessionServer::migrate_session`] decodes and **re-certifies** a
//!   blob against the protocol's compiled tables before any shard hosts
//!   it: tampered bytes are refused with the runtime's structured errors
//!   and never become sessions.
//! * [`QuarantinePolicy::RestartFromCheckpoint`] grants a violating
//!   session a bounded number of restarts from its last certified
//!   checkpoint (or its initial state), then closes it like `Halt`.
//! * [`ServerConfig::with_violation_threshold`] tolerates a per-protocol
//!   number of monitor rejections before quarantining.
//! * [`NetServerConfig::ban_after_quarantines`] rejects further `Open`s
//!   from a connection that keeps submitting quarantined sessions, without
//!   tearing the connection down.

use std::time::{Duration, Instant};

use zooid_dsl::Protocol;
use zooid_mpst::generators;
use zooid_runtime::{MuxFrame, RuntimeError};
use zooid_server::synth::{byzantine_driver, skeleton_endpoints};
use zooid_server::{
    ByzantineMutation, ExpectedClass, FlightEvent, NetClient, NetServer, NetServerConfig,
    ProtocolRegistry, QuarantinePolicy, ServerConfig, ServerError, Service, SessionServer,
    SessionSpec,
};

const EVENT_TIMEOUT: Duration = Duration::from_secs(10);

/// `mu X. A -> B : tick(nat). B -> A : tock(nat). X` — no choice, so the
/// skeleton cast loops forever. Sessions of this protocol are caught
/// mid-flight by a drain deterministically (they can never finish first).
fn metronome() -> zooid_mpst::global::GlobalType {
    use zooid_mpst::global::GlobalType;
    use zooid_mpst::{Role, Sort};
    GlobalType::rec(GlobalType::msg1(
        Role::new("A"),
        Role::new("B"),
        "tick",
        Sort::Nat,
        GlobalType::msg1(
            Role::new("B"),
            Role::new("A"),
            "tock",
            Sort::Nat,
            GlobalType::var(0),
        ),
    ))
}

/// A registry with one protocol, plus its skeleton cast.
fn registry_with(
    name: &str,
    g: zooid_mpst::global::GlobalType,
) -> (
    ProtocolRegistry,
    zooid_server::ProtocolId,
    Vec<(zooid_dsl::CertifiedProcess, zooid_proc::Externals)>,
) {
    let mut registry = ProtocolRegistry::new();
    let protocol = Protocol::new(name, g).expect("well-formed");
    let endpoints = skeleton_endpoints(&protocol).expect("synthesizes");
    let id = registry.register(protocol).expect("registers");
    (registry, id, endpoints)
}

// ---------------------------------------------------------------------
// Evacuation and re-admission
// ---------------------------------------------------------------------

#[test]
fn drained_sessions_go_silent_and_migrate_to_another_shard() {
    // Unbounded ping-pong sessions loop forever, so the evacuation count
    // is deterministic: every submitted session is still mid-flight when
    // the drain request reaches its shard (FIFO per shard mailbox).
    let (registry, id, endpoints) = registry_with("metronome", metronome());
    let mut server = SessionServer::start(registry, ServerConfig::with_shards(2));
    let mut submitted = Vec::new();
    for _ in 0..8 {
        submitted.push(
            server
                .submit(SessionSpec::new(id, endpoints.clone()))
                .unwrap(),
        );
    }
    let mut migrated = server.drain_shard(0).unwrap();
    migrated.extend(server.drain_shard(1).unwrap());
    assert_eq!(
        migrated.len(),
        8,
        "every unbounded session is caught mid-flight"
    );
    let mut ids: Vec<_> = migrated.iter().map(|m| m.id).collect();
    ids.sort();
    assert_eq!(ids, submitted, "identity survives evacuation");
    for m in &migrated {
        assert_eq!(m.protocol, id);
        assert!(!m.bytes.is_empty(), "the checkpoint blob is the session");
    }

    // Re-admit everything on shard 0, then evacuate shard 0 again: the
    // same eight sessions come back — they were live on the new shard.
    for m in migrated {
        let sid = m.id;
        assert_eq!(server.migrate_session(m, 0).unwrap(), sid);
    }
    let again = server.drain_shard(0).unwrap();
    assert_eq!(again.len(), 8, "migrated sessions run on their new shard");
    let mut ids: Vec<_> = again.iter().map(|m| m.id).collect();
    ids.sort();
    assert_eq!(ids, submitted);
    server.shutdown();
}

#[test]
fn migration_preserves_every_outcome_of_bounded_sessions() {
    // Bounded sessions race the drain: however many are caught and moved,
    // exactly one compliant outcome per submission must still arrive —
    // migration neither loses nor duplicates sessions.
    let (registry, id, endpoints) = registry_with("metronome", metronome());
    let config = ServerConfig {
        shards: 2,
        quantum: 1,
        ..ServerConfig::default()
    };
    let mut server = SessionServer::start(registry, config);
    let mut submitted = Vec::new();
    for _ in 0..12 {
        submitted.push(
            server
                .submit(SessionSpec::new(id, endpoints.clone()).with_max_steps(40))
                .unwrap(),
        );
    }
    let mut migrated = server.drain_shard(0).unwrap();
    migrated.extend(server.drain_shard(1).unwrap());
    for m in migrated {
        server.migrate_session(m, 0).unwrap();
    }
    let outcomes = server.drain();
    assert_eq!(outcomes.len(), 12, "one outcome per submission");
    let mut ids: Vec<_> = outcomes.iter().map(|o| o.id).collect();
    ids.sort();
    assert_eq!(ids, submitted, "no session lost or duplicated");
    for outcome in &outcomes {
        assert!(outcome.compliant, "migration must not corrupt a session");
        assert!(!outcome.quarantined);
    }
    server.shutdown();
}

// ---------------------------------------------------------------------
// The migration trust boundary
// ---------------------------------------------------------------------

#[test]
fn tampered_checkpoints_are_refused_with_structured_errors() {
    let (registry, id, endpoints) = registry_with("metronome", metronome());
    let mut server = SessionServer::start(registry, ServerConfig::with_shards(1));
    for _ in 0..3 {
        server
            .submit(SessionSpec::new(id, endpoints.clone()))
            .unwrap();
    }
    let migrated = server.drain_shard(0).unwrap();
    assert_eq!(migrated.len(), 3);
    let mut migrated = migrated.into_iter();

    // Garbage bytes: the codec refuses before anything is re-certified.
    let mut garbage = migrated.next().unwrap();
    garbage.bytes = vec![0; 4];
    match server.migrate_session(garbage, 0) {
        Err(ServerError::Runtime(RuntimeError::Codec { .. })) => {}
        other => panic!("garbage must be a structured codec error, got {other:?}"),
    }

    // A truncated blob: same refusal, never a panic.
    let mut truncated = migrated.next().unwrap();
    truncated.bytes.truncate(truncated.bytes.len() / 2);
    match server.migrate_session(truncated, 0) {
        Err(ServerError::Runtime(RuntimeError::Codec { .. })) => {}
        other => panic!("truncation must be a structured codec error, got {other:?}"),
    }

    // A decodable checkpoint whose token does not match the claimed
    // session id: refused by the identity check (byte 5 is inside the
    // big-endian token that follows the 4-byte magic and 1-byte version).
    let mut forged = migrated.next().unwrap();
    forged.bytes[5] ^= 0x01;
    match server.migrate_session(forged, 0) {
        Err(ServerError::Runtime(RuntimeError::Recovery { reason })) => {
            assert!(reason.contains("does not match"), "{reason}");
        }
        other => panic!("token forgery must be a recovery refusal, got {other:?}"),
    }

    // Out-of-range shard indexes are structured errors on both calls.
    match server.drain_shard(99) {
        Err(ServerError::Unsupported { reason }) => {
            assert!(reason.contains("out of range"), "{reason}")
        }
        other => panic!("want Unsupported, got {other:?}"),
    }
    server.shutdown();
}

// ---------------------------------------------------------------------
// Restart-from-checkpoint quarantine
// ---------------------------------------------------------------------

#[test]
fn violators_restart_from_checkpoint_until_retries_exhaust() {
    // The rotated-ring cast violates deterministically on its first send;
    // restarting it from its (initial-state) checkpoint replays the same
    // violation, so the retry budget is consumed exactly.
    let mut registry = ProtocolRegistry::new();
    let id = registry
        .register(Protocol::new("ring", generators::ring_n(3)).unwrap())
        .unwrap();
    let decoy = Protocol::new("ring", generators::ring(&["w2", "w0", "w1"])).unwrap();
    let endpoints = skeleton_endpoints(&decoy).unwrap();
    let config = ServerConfig {
        shards: 1,
        quarantine: QuarantinePolicy::RestartFromCheckpoint { max_retries: 2 },
        ..ServerConfig::default()
    };
    let mut server = SessionServer::start(registry, config);
    let sid = server
        .submit(SessionSpec::new(id, endpoints.clone()))
        .unwrap();
    let outcomes = server.drain();
    assert_eq!(outcomes.len(), 1, "the session reports exactly once");
    let outcome = &outcomes[0];
    assert_eq!(outcome.id, sid);
    assert!(!outcome.compliant);
    assert!(
        outcome.quarantined,
        "after the retry budget the close is Halt-like"
    );

    let report = server.report();
    assert_eq!(
        report.sessions_restarted(),
        2,
        "exactly max_retries restarts: {report}"
    );
    assert_eq!(report.sessions_quarantined(), 1, "{report}");
    let events = server.flight_events();
    let retries: Vec<u8> = events
        .iter()
        .filter_map(|e| match e {
            FlightEvent::Restarted { session, retry } if *session == sid.0 => Some(*retry),
            _ => None,
        })
        .collect();
    assert_eq!(retries, vec![1, 2], "restart events carry the retry count");
    assert!(
        events
            .iter()
            .any(|e| matches!(e, FlightEvent::Quarantined { .. })),
        "the final close is still a quarantine"
    );
    server.shutdown();
}

#[test]
fn restart_zero_behaves_like_halt() {
    let mut registry = ProtocolRegistry::new();
    let id = registry
        .register(Protocol::new("ring", generators::ring_n(3)).unwrap())
        .unwrap();
    let decoy = Protocol::new("ring", generators::ring(&["w2", "w0", "w1"])).unwrap();
    let endpoints = skeleton_endpoints(&decoy).unwrap();
    let config = ServerConfig {
        shards: 1,
        quarantine: QuarantinePolicy::RestartFromCheckpoint { max_retries: 0 },
        ..ServerConfig::default()
    };
    let mut server = SessionServer::start(registry, config);
    server
        .submit(SessionSpec::new(id, endpoints.clone()))
        .unwrap();
    let outcomes = server.drain();
    assert_eq!(outcomes.len(), 1);
    assert!(outcomes[0].quarantined);
    assert_eq!(outcomes[0].violations.len(), 1, "zero post-violation steps");
    let report = server.report();
    assert_eq!(report.sessions_restarted(), 0, "{report}");
    server.shutdown();
}

// ---------------------------------------------------------------------
// Adaptive per-protocol violation thresholds
// ---------------------------------------------------------------------

#[test]
fn lenient_protocols_tolerate_violations_and_strict_ones_do_not() {
    // Two registrations of structurally identical rings; only "lenient"
    // gets a threshold. The same rotated decoy cast violates both; the
    // lenient session runs to its natural conclusion un-quarantined, the
    // strict one is quarantined at the first rejection.
    let mut registry = ProtocolRegistry::new();
    let lenient = registry
        .register(Protocol::new("lenient", generators::ring_n(3)).unwrap())
        .unwrap();
    let strict = registry
        .register(Protocol::new("strict", generators::ring_n(3)).unwrap())
        .unwrap();
    let lenient_decoy = Protocol::new("lenient", generators::ring(&["w2", "w0", "w1"])).unwrap();
    let strict_decoy = Protocol::new("strict", generators::ring(&["w2", "w0", "w1"])).unwrap();
    let config =
        ServerConfig::with_shards(1).with_violation_threshold(lenient, 100);
    let mut server = SessionServer::start(registry, config);
    let lenient_sid = server
        .submit(SessionSpec::new(
            lenient,
            skeleton_endpoints(&lenient_decoy).unwrap(),
        ))
        .unwrap();
    let strict_sid = server
        .submit(SessionSpec::new(
            strict,
            skeleton_endpoints(&strict_decoy).unwrap(),
        ))
        .unwrap();
    let outcomes = server.drain();
    assert_eq!(outcomes.len(), 2);

    let lenient_out = outcomes.iter().find(|o| o.id == lenient_sid).unwrap();
    assert!(!lenient_out.compliant, "the cast still violates");
    assert!(
        !lenient_out.quarantined,
        "under its threshold the session keeps running"
    );
    assert!(
        !lenient_out.violations.is_empty(),
        "the violations are still recorded"
    );

    let strict_out = outcomes.iter().find(|o| o.id == strict_sid).unwrap();
    assert!(strict_out.quarantined, "no threshold means quarantine at 1");
    assert_eq!(strict_out.violations.len(), 1);

    let report = server.report();
    assert_eq!(report.sessions_quarantined(), 1, "{report}");
    server.shutdown();
}

#[test]
fn observe_policy_ignores_thresholds_entirely() {
    let mut registry = ProtocolRegistry::new();
    let id = registry
        .register(Protocol::new("ring", generators::ring_n(3)).unwrap())
        .unwrap();
    let decoy = Protocol::new("ring", generators::ring(&["w2", "w0", "w1"])).unwrap();
    let endpoints = skeleton_endpoints(&decoy).unwrap();
    let config = ServerConfig {
        shards: 1,
        quarantine: QuarantinePolicy::Observe,
        ..ServerConfig::default()
    }
    .with_violation_threshold(id, 1);
    let mut server = SessionServer::start(registry, config);
    server
        .submit(SessionSpec::new(id, endpoints.clone()))
        .unwrap();
    let outcomes = server.drain();
    assert_eq!(outcomes.len(), 1);
    assert!(!outcomes[0].compliant);
    assert!(!outcomes[0].quarantined, "Observe never quarantines");
    server.shutdown();
}

// ---------------------------------------------------------------------
// The wire: reject-then-ban
// ---------------------------------------------------------------------

fn wait_for_done(client: &mut NetClient, session: u64) -> bool {
    let deadline = Instant::now() + EVENT_TIMEOUT;
    loop {
        match client.poll_event(Duration::from_millis(100)).unwrap() {
            Some(MuxFrame::Done {
                session: s,
                compliant,
                ..
            }) if s == session => return compliant,
            Some(_) => {}
            None => assert!(Instant::now() < deadline, "no Done within {EVENT_TIMEOUT:?}"),
        }
    }
}

#[test]
fn connections_that_keep_getting_quarantined_are_banned_but_not_torn_down() {
    let mut registry = ProtocolRegistry::new();
    let byz_id = registry
        .register(Protocol::new("byz_ring", generators::ring_n(3)).unwrap())
        .unwrap();
    let ok_id = registry
        .register(Protocol::new("ok_ring", generators::ring_n(3)).unwrap())
        .unwrap();
    let byz_protocol = Protocol::new("byz_ring", generators::ring_n(3)).unwrap();
    let driver = byzantine_driver(&byz_protocol, ByzantineMutation::WrongLabel)
        .unwrap()
        .expect("wrong-label applies to the ring");
    assert_eq!(driver.mutation.expected(), ExpectedClass::Violation);
    let byz_service = Service {
        protocol: byz_id,
        endpoints: driver.endpoints.into(),
        options: zooid_runtime::ExecOptions::default(),
    };
    let ok_service = Service::skeleton(&registry, ok_id).unwrap();
    let config = NetServerConfig {
        ban_after_quarantines: 1,
        ..NetServerConfig::default()
    };
    let server = NetServer::start(registry, [byz_service, ok_service], config).unwrap();

    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let session = client.open_with("byz_ring", EVENT_TIMEOUT).unwrap();
    let compliant = wait_for_done(&mut client, session);
    assert!(!compliant, "the byzantine session must violate");

    // The strike is recorded with the outcome, so the next open on this
    // connection is refused — the connection itself stays up (no
    // close_on_quarantine teardown).
    match client.open_with("ok_ring", EVENT_TIMEOUT) {
        Err(RuntimeError::Codec { reason }) => {
            assert!(reason.contains("open rejected"), "{reason}");
            assert!(reason.contains("banned"), "{reason}");
        }
        other => panic!("want a structured ban rejection, got {other:?}"),
    }
    // Still refused — the ban is sticky for the connection's lifetime.
    match client.open_with("byz_ring", EVENT_TIMEOUT) {
        Err(RuntimeError::Codec { reason }) => {
            assert!(reason.contains("banned"), "{reason}")
        }
        other => panic!("the ban must be sticky, got {other:?}"),
    }

    // The ban is per-connection, not per-peer: a fresh connection serves.
    let mut fresh = NetClient::connect(server.local_addr()).unwrap();
    let ok_session = fresh.open_with("ok_ring", EVENT_TIMEOUT).unwrap();
    assert!(
        wait_for_done(&mut fresh, ok_session),
        "a fresh connection is unaffected"
    );

    let report = server.shutdown();
    assert_eq!(report.net.rejects.banned, 2, "both refusals are counted");
    assert_eq!(report.shards.sessions_quarantined(), 1);
}
