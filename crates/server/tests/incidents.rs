//! Incident capture across every execution path: a monitor violation —
//! whether it happens on the per-session slab, inside a columnar batch
//! (demoting the session mid-flight), or on a session opened over the TCP
//! mux — must leave behind an [`zooid_server::Incident`] whose bounded
//! trace prefix *replays* to the very same violation against the compiled
//! system, and the record must be fetchable from a live server over the
//! wire.
//!
//! The violating sessions are honest counterexamples: the endpoints are
//! certified against a *decoy* protocol that shares the registered
//! protocol's name and participants (all submission-time validation
//! checks) but disagrees on the conversation itself, so the monitor is the
//! first — and only — line that can catch the divergence.

use std::time::Duration;

use zooid_dsl::Protocol;
use zooid_mpst::generators;
use zooid_mpst::global::GlobalType;
use zooid_mpst::{Role, Sort};
use zooid_runtime::exec::ExecOptions;
use zooid_runtime::MuxFrame;
use zooid_server::synth::skeleton_endpoints;
use zooid_server::{
    FlightEvent, NetClient, NetServer, NetServerConfig, ProtocolRegistry, ServerConfig, Service,
    SessionServer, SessionSpec,
};

const EVENT_TIMEOUT: Duration = Duration::from_secs(10);

/// A ring over `w0 w1 w2` whose label is not part of the registered ring
/// protocol: the endpoint programs cannot pre-intern their actions against
/// the registered tables, so the sessions run on the slab (tree-walking
/// fallback) and every communication is a monitor violation.
fn bad_label_ring() -> GlobalType {
    let w = |i: usize| Role::new(format!("w{i}"));
    GlobalType::msg1(
        w(0),
        w(1),
        "bad",
        Sort::Nat,
        GlobalType::msg1(
            w(1),
            w(2),
            "bad",
            Sort::Nat,
            GlobalType::msg1(w(2), w(0), "bad", Sort::Nat, GlobalType::End),
        ),
    )
}

/// The same three exchanges as `ring_n(3)` in a rotated global order
/// (`w2 -> w0` first). Every per-role communication site exists in the
/// registered protocol's tables, so the endpoints lower, pre-intern and
/// coalesce into a columnar batch — and the first send is a monitor
/// violation that demotes the session to the slab mid-flight.
fn rotated_ring() -> GlobalType {
    generators::ring(&["w2", "w0", "w1"])
}

fn registry_with_ring() -> (ProtocolRegistry, zooid_server::ProtocolId) {
    let mut registry = ProtocolRegistry::new();
    let id = registry
        .register(Protocol::new("ring", generators::ring_n(3)).unwrap())
        .unwrap();
    (registry, id)
}

#[test]
fn slab_violations_capture_replayable_incidents() {
    let (registry, id) = registry_with_ring();
    let decoy = Protocol::new("ring", bad_label_ring()).unwrap();
    let endpoints = skeleton_endpoints(&decoy).unwrap();
    let mut server = SessionServer::start(registry, ServerConfig::with_shards(1));
    for _ in 0..4 {
        server
            .submit(SessionSpec::new(id, endpoints.clone()))
            .unwrap();
    }
    let outcomes = server.drain();
    assert_eq!(outcomes.len(), 4);
    let total_violations: usize = outcomes.iter().map(|o| o.violations.len()).sum();
    for outcome in &outcomes {
        assert!(!outcome.compliant, "the decoy label must violate");
        assert!(!outcome.violations.is_empty());
    }

    let report = server.report();
    // The uninternable label keeps the sessions off the batch path.
    assert_eq!(report.sessions_slab(), 4, "{report}");
    assert_eq!(report.sessions_batched(), 0, "{report}");
    assert_eq!(
        report.obs.incidents_recorded,
        total_violations as u64,
        "one incident per violation"
    );

    let incidents = server.incidents();
    assert!(!incidents.is_empty());
    let system = std::sync::Arc::clone(server.registry().get(id).unwrap().compiled());
    for incident in &incidents {
        assert_eq!(incident.protocol, id);
        assert!(
            incident.replays_violation(&system),
            "incident must re-certify: {incident:?}"
        );
    }

    let events = server.flight_events();
    assert!(events
        .iter()
        .any(|e| matches!(e, FlightEvent::Admitted { batched: false, .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, FlightEvent::Violation { .. })));
    server.shutdown();
}

#[test]
fn batch_demotions_capture_replayable_incidents() {
    let (registry, id) = registry_with_ring();
    let decoy = Protocol::new("ring", rotated_ring()).unwrap();
    let endpoints = skeleton_endpoints(&decoy).unwrap();
    let mut server = SessionServer::start(registry, ServerConfig::with_shards(1));
    for _ in 0..8 {
        server
            .submit(SessionSpec::new(id, endpoints.clone()))
            .unwrap();
    }
    let outcomes = server.drain();
    assert_eq!(outcomes.len(), 8);
    for outcome in &outcomes {
        assert!(!outcome.compliant, "the rotated order must violate");
        assert!(!outcome.violations.is_empty());
    }

    let report = server.report();
    // The rotated endpoints pre-intern against the registered tables, so
    // they batch — and the out-of-order send demotes them mid-flight.
    assert_eq!(report.sessions_batched(), 8, "{report}");
    assert!(report.sessions_demoted() >= 1, "{report}");

    let system = std::sync::Arc::clone(server.registry().get(id).unwrap().compiled());
    let incidents = server.incidents();
    assert!(!incidents.is_empty());
    for incident in &incidents {
        assert!(
            incident.replays_violation(&system),
            "incident must re-certify: {incident:?}"
        );
    }

    let events = server.flight_events();
    assert!(events
        .iter()
        .any(|e| matches!(e, FlightEvent::Admitted { batched: true, .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, FlightEvent::BatchDemoted { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, FlightEvent::Violation { .. })));
    server.shutdown();
}

#[test]
fn mux_violations_surface_as_wire_queryable_incidents() {
    let (registry, id) = registry_with_ring();
    let decoy = Protocol::new("ring", bad_label_ring()).unwrap();
    let service = Service {
        protocol: id,
        endpoints: skeleton_endpoints(&decoy).unwrap().into(),
        options: ExecOptions::default(),
    };
    let server = NetServer::start(registry, [service], NetServerConfig::default()).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    let session = client.open("ring").unwrap();
    let deadline = std::time::Instant::now() + EVENT_TIMEOUT;
    let reported_violations = loop {
        match client.poll_event(Duration::from_millis(100)).unwrap() {
            Some(MuxFrame::Accepted { session: s }) => assert_eq!(s, session),
            Some(MuxFrame::Done {
                session: s,
                compliant,
                violations,
                ..
            }) => {
                assert_eq!(s, session);
                assert!(!compliant);
                assert!(violations > 0);
                break violations;
            }
            Some(other) => panic!("unexpected frame {other:?}"),
            None => assert!(
                std::time::Instant::now() < deadline,
                "no outcome within {EVENT_TIMEOUT:?}"
            ),
        }
    };

    // The incident record is queryable from the live server over the wire.
    let stats = client
        .fetch_stats(EVENT_TIMEOUT)
        .unwrap()
        .expect("stats reply within the timeout");
    assert_eq!(stats.net.sessions_done, 1);
    assert!(stats.shards.obs.incidents_recorded >= u64::from(reported_violations));
    assert!(stats.shards.obs.incidents_held >= 1);
    assert_eq!(
        stats.incidents.len() as u64,
        stats.shards.obs.incidents_held
    );
    for incident in &stats.incidents {
        assert_eq!(incident.protocol, id.index() as u32);
        assert!(!incident.role.is_empty());
        assert!(incident.action.contains("bad"), "{}", incident.action);
        assert!(
            !incident.truncated,
            "short traces must retain a full prefix"
        );
    }
    server.shutdown();
}
