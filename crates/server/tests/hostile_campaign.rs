//! The hostile-world campaign: every case study is marched through a
//! fault-injecting transport and a synthesized byzantine cast, and the
//! serving plane must contain the damage.
//!
//! Four fronts, mirroring the four layers under test:
//!
//! 1. **Transport faults** — the seed-driven [`FaultyTransport`] injects
//!    delays, drops, duplicates, reorders, truncations and mid-session
//!    disconnects below honest endpoints. Each fault kind has a known
//!    outcome class (a drop stalls, a truncation is a structured codec
//!    error, a disconnect is a structured disconnect, ...), the
//!    [`CompiledMonitor`] and [`TraceMonitor`] must agree on every observed
//!    action, and the injected schedule must be byte-identical across runs
//!    and across backends (in-memory and real loopback TCP) for the same
//!    seed.
//! 2. **Byzantine casts** — [`byzantine_driver`] synthesizes minimally-
//!    wrong endpoint casts (one mutation per driver). Sessions landing in
//!    the `Violation` class must be quarantined by the default
//!    [`QuarantinePolicy::Halt`]: exactly one recorded violation (the
//!    zero-post-quarantine-steps witness), a replayable incident, counted
//!    per shard and per protocol, with co-resident compliant sessions
//!    untouched — on the slab path and on the batch path.
//! 3. **The wire** — with [`NetServerConfig::close_on_quarantine`] set, a
//!    quarantined session tears down the connection that opened it
//!    (`Done`, a `Quarantined` rejection, then EOF) while a compliant
//!    neighbour connection keeps serving; and a connection that never
//!    sends a decodable frame is reaped at the idle deadline.
//! 4. **The batch arena** — the same [`FaultPlan`] drives
//!    [`SessionBatch::set_arena_faults`], corrupting the columnar data
//!    plane's shared frame arena from below. Damage must stay contained to
//!    the victim session (co-resident sessions in the same batch conclude
//!    compliant), land in the fault kind's expected class (a drop strands,
//!    a truncation is a structured arena-codec failure), and replay
//!    byte-identically for a pinned seed.

use std::collections::BTreeMap;
use std::net::{IpAddr, Ipv4Addr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use zooid_cfsm::System;
use zooid_dsl::Protocol;
use zooid_mpst::global::GlobalType;
use zooid_mpst::{generators, Role};
use zooid_proc::{CompiledProc, Externals, Proc};
use zooid_runtime::cbatch::{BatchLayout, SessionBatch};
use zooid_runtime::cexec::EndpointProgram;
use zooid_runtime::exec::{EndpointStatus, EndpointTask, ExecOptions, StepOutcome};
use zooid_runtime::monitor::{CompiledMonitor, TraceMonitor};
use zooid_runtime::tcp::TcpTransport;
use zooid_runtime::transport::{InMemoryNetwork, Transport};
use zooid_runtime::wire::RejectCode;
use zooid_runtime::{
    FaultKind, FaultPlan, FaultSite, FaultSpec, FaultyTransport, InjectedFault, MuxFrame,
};
use zooid_server::obs::CloseReason;
use zooid_server::synth::{byzantine_driver, skeleton_endpoints};
use zooid_server::{
    ByzantineMutation, ExpectedClass, FlightEvent, NetClient, NetServer, NetServerConfig,
    ProtocolRegistry, ServerConfig, Service, SessionServer, SessionSpec,
};

const EVENT_TIMEOUT: Duration = Duration::from_secs(10);

fn case_studies() -> Vec<(&'static str, GlobalType)> {
    vec![
        ("ring3", generators::ring_n(3)),
        ("two_buyer", generators::two_buyer()),
        ("fanout4", generators::fanout_n(4)),
    ]
}

/// The `(sender, receiver)` of the protocol's first exchange: the sender is
/// the fault target for send-site faults, the receiver for recv-site ones.
fn first_edge(g: &GlobalType) -> (Role, Role) {
    match g {
        GlobalType::Msg { from, to, .. } => (from.clone(), to.clone()),
        GlobalType::Rec(body) => first_edge(body),
        _ => panic!("case studies open with a message"),
    }
}

/// Certified skeleton endpoints flattened to `(role, proc)` pairs for the
/// transport-level driver.
fn skeleton_procs(name: &str, g: &GlobalType) -> Vec<(Role, Proc)> {
    let protocol = Protocol::new(name, g.clone()).expect("case studies are well-formed");
    skeleton_endpoints(&protocol)
        .expect("case studies synthesize")
        .into_iter()
        .map(|(cp, _)| (cp.role().clone(), cp.proc().clone()))
        .collect()
}

// ---------------------------------------------------------------------
// The cooperative driver over fault-wrapped transports
// ---------------------------------------------------------------------

#[derive(Debug)]
struct CampaignRun {
    statuses: BTreeMap<Role, EndpointStatus>,
    compliant: bool,
    complete: bool,
    /// The injected-fault schedule of every endpoint (non-target endpoints
    /// carry an empty plan and must stay empty).
    schedules: BTreeMap<Role, Vec<InjectedFault>>,
}

/// Wraps every endpoint in a [`FaultyTransport`]; only `target` gets the
/// real plan, the rest run the (behaviourally invisible) empty plan.
fn wrap<T: Transport>(
    endpoints: Vec<(Role, T)>,
    target: &Role,
    plan: &FaultPlan,
) -> Vec<(Role, FaultyTransport<T>)> {
    let empty = FaultPlan::new(0);
    endpoints
        .into_iter()
        .map(|(role, transport)| {
            let p = if &role == target { plan } else { &empty };
            let wrapped = FaultyTransport::new(transport, p);
            (role, wrapped)
        })
        .collect()
}

/// Steps every endpoint round-robin (drain-until-block) with the two
/// monitors in lockstep until all are done or the session stalls.
///
/// Stall detection needs *both* guards: the round floor keeps polling long
/// enough for a delayed message to reach its release tick (the fault
/// transport only advances its clock when it is called), and the time
/// grace absorbs real TCP delivery latency.
fn drive<T: Transport>(
    g: &GlobalType,
    procs: &[(Role, Proc)],
    options: &ExecOptions,
    mut endpoints: Vec<(Role, FaultyTransport<T>)>,
    stall_grace: Duration,
) -> CampaignRun {
    endpoints.sort_by(|(a, _), (b, _)| a.cmp(b));
    let system = Arc::new(System::from_global(g).expect("projectable").compile());
    let mut monitor = CompiledMonitor::new(Arc::clone(&system));
    let mut shadow = TraceMonitor::new(g).expect("well-formed");

    let proc_of: BTreeMap<&Role, &Proc> = procs.iter().map(|(r, p)| (r, p)).collect();
    let mut tasks: Vec<(Role, EndpointTask, FaultyTransport<T>)> = endpoints
        .drain(..)
        .map(|(role, transport)| {
            let task = EndpointTask::new(
                (*proc_of[&role]).clone(),
                role.clone(),
                Externals::new(),
                options.clone(),
            );
            (role, task, transport)
        })
        .collect();

    let n = tasks.len();
    let mut last_progress = Instant::now();
    let mut idle_rounds = 0usize;
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        assert!(rounds < 10_000_000, "cooperative schedule must terminate");
        let mut progressed = false;
        for idx in 0..n {
            let (_, task, transport) = &mut tasks[idx];
            loop {
                let outcome = task.step(transport, &mut |va| {
                    let action = zooid_proc::erase(va);
                    let a = monitor.observe(&action);
                    let b = shadow.observe(&action);
                    assert_eq!(a, b, "monitors disagree on {action}");
                });
                match outcome {
                    StepOutcome::Progress => progressed = true,
                    _ => break,
                }
            }
        }
        if tasks.iter().all(|(_, t, _)| t.is_done()) {
            break;
        }
        if progressed {
            last_progress = Instant::now();
            idle_rounds = 0;
        } else {
            idle_rounds += 1;
            if idle_rounds >= 64 && last_progress.elapsed() >= stall_grace {
                for (_, task, _) in &mut tasks {
                    task.mark_stalled();
                }
                break;
            }
            std::thread::sleep(Duration::from_micros(100));
        }
    }

    let mut statuses = BTreeMap::new();
    let mut schedules = BTreeMap::new();
    for (role, task, mut transport) in tasks {
        statuses.insert(role.clone(), task.into_report().status);
        schedules.insert(role, transport.take_schedule());
    }
    assert_eq!(monitor.is_compliant(), shadow.is_compliant());
    assert_eq!(monitor.is_complete(), shadow.is_complete());
    CampaignRun {
        statuses,
        compliant: monitor.is_compliant(),
        complete: monitor.is_complete(),
        schedules,
    }
}

fn memory_run(
    g: &GlobalType,
    procs: &[(Role, Proc)],
    target: &Role,
    plan: &FaultPlan,
) -> CampaignRun {
    let mut network = InMemoryNetwork::new(procs.iter().map(|(r, _)| r.clone()));
    let endpoints: Vec<_> = procs
        .iter()
        .map(|(r, _)| (r.clone(), network.take_endpoint(r).expect("unique roles")))
        .collect();
    drive(
        g,
        procs,
        &ExecOptions::default(),
        wrap(endpoints, target, plan),
        Duration::ZERO,
    )
}

/// Full-mesh loopback TCP wiring, as in the runtime's differential suite.
fn tcp_mesh(roles: &[Role]) -> Vec<(Role, TcpTransport)> {
    let mut per_role: BTreeMap<Role, BTreeMap<Role, TcpStream>> =
        roles.iter().map(|r| (r.clone(), BTreeMap::new())).collect();
    for i in 0..roles.len() {
        for j in (i + 1)..roles.len() {
            let listener = TcpListener::bind((IpAddr::V4(Ipv4Addr::LOCALHOST), 0)).unwrap();
            let addr = listener.local_addr().unwrap();
            let client = TcpStream::connect(addr).unwrap();
            let (server, _) = listener.accept().unwrap();
            per_role
                .get_mut(&roles[i])
                .unwrap()
                .insert(roles[j].clone(), server);
            per_role
                .get_mut(&roles[j])
                .unwrap()
                .insert(roles[i].clone(), client);
        }
    }
    per_role
        .into_iter()
        .map(|(role, streams)| {
            let mut transport = TcpTransport::from_streams(role.clone(), streams);
            transport.set_recv_timeout(Duration::from_secs(10));
            (role, transport)
        })
        .collect()
}

fn tcp_run(g: &GlobalType, procs: &[(Role, Proc)], target: &Role, plan: &FaultPlan) -> CampaignRun {
    let roles: Vec<Role> = procs.iter().map(|(r, _)| r.clone()).collect();
    let endpoints = tcp_mesh(&roles);
    drive(
        g,
        procs,
        &ExecOptions::default(),
        wrap(endpoints, target, plan),
        Duration::from_millis(500),
    )
}

// ---------------------------------------------------------------------
// Front 1: the transport-fault matrix
// ---------------------------------------------------------------------

fn fault_plan(kind: FaultKind, seed: u64) -> (FaultPlan, FaultSite) {
    // Truncation models wire corruption seen by the receiver; every other
    // kind is injected at the sender.
    let site = match kind {
        FaultKind::Truncate => FaultSite::Recv,
        _ => FaultSite::Send,
    };
    (
        FaultPlan::new(seed).with(FaultSpec::new(kind, site)),
        site,
    )
}

/// Asserts one run landed in its fault kind's expected outcome class.
fn assert_expected_class(kind: FaultKind, target: &Role, run: &CampaignRun, context: &str) {
    let failures: Vec<(&Role, &str)> = run
        .statuses
        .iter()
        .filter_map(|(r, s)| match s {
            EndpointStatus::Failed { error } => Some((r, error.as_str())),
            _ => None,
        })
        .collect();
    // The target drew its one fault; bystanders drew none.
    assert_eq!(
        run.schedules[target].len(),
        1,
        "{context}: the budgeted fault must fire exactly once"
    );
    for (role, schedule) in &run.schedules {
        if role != target {
            assert!(
                schedule.is_empty(),
                "{context}: empty plans must inject nothing, {role} got {schedule:?}"
            );
        }
    }
    match kind {
        FaultKind::Delay | FaultKind::Duplicate | FaultKind::Reorder => {
            // Benign-in-this-harness kinds: extra latency or extra unread
            // wire traffic, never an endpoint failure or a false violation.
            assert!(run.compliant, "{context}: must stay compliant");
            assert!(failures.is_empty(), "{context}: unexpected failures {failures:?}");
        }
        FaultKind::Drop => {
            assert!(run.compliant, "{context}: a lost message is a valid prefix");
            assert!(!run.complete, "{context}: a dropped message must stall the session");
            assert!(failures.is_empty(), "{context}: unexpected failures {failures:?}");
            assert!(
                run.statuses.values().any(|s| matches!(s, EndpointStatus::Stalled)),
                "{context}: someone must be left waiting"
            );
        }
        FaultKind::Truncate => {
            assert!(run.compliant, "{context}: the mangled frame is never observed");
            let (_, error) = failures
                .iter()
                .find(|(r, _)| *r == target)
                .unwrap_or_else(|| panic!("{context}: target must fail, got {:?}", run.statuses));
            assert!(
                error.contains("truncated in flight"),
                "{context}: want a structured truncation error, got `{error}`"
            );
        }
        FaultKind::Disconnect => {
            let (_, error) = failures
                .iter()
                .find(|(r, _)| *r == target)
                .unwrap_or_else(|| panic!("{context}: target must fail, got {:?}", run.statuses));
            assert!(
                error.contains("disconnected"),
                "{context}: want a structured disconnect error, got `{error}`"
            );
        }
    }
}

#[test]
fn transport_faults_land_in_their_expected_classes_in_memory() {
    let kinds = [
        FaultKind::Delay,
        FaultKind::Drop,
        FaultKind::Duplicate,
        FaultKind::Reorder,
        FaultKind::Truncate,
        FaultKind::Disconnect,
    ];
    for (name, g) in case_studies() {
        let procs = skeleton_procs(name, &g);
        let (sender, receiver) = first_edge(&g);
        for kind in kinds {
            for seed in [11u64, 42] {
                let (plan, site) = fault_plan(kind, seed);
                let target = if site == FaultSite::Recv { &receiver } else { &sender };
                let run = memory_run(&g, &procs, target, &plan);
                assert_expected_class(kind, target, &run, &format!("{name}/{kind}/seed{seed}/mem"));
            }
        }
    }
}

#[test]
fn transport_faults_land_in_their_expected_classes_over_tcp() {
    let kinds = [
        FaultKind::Delay,
        FaultKind::Drop,
        FaultKind::Duplicate,
        FaultKind::Reorder,
        FaultKind::Truncate,
        FaultKind::Disconnect,
    ];
    for (name, g) in case_studies() {
        let procs = skeleton_procs(name, &g);
        let (sender, receiver) = first_edge(&g);
        for kind in kinds {
            let seed = 11u64;
            let (plan, site) = fault_plan(kind, seed);
            let target = if site == FaultSite::Recv { &receiver } else { &sender };
            let run = tcp_run(&g, &procs, target, &plan);
            assert_expected_class(kind, target, &run, &format!("{name}/{kind}/seed{seed}/tcp"));
        }
    }
}

#[test]
fn fault_schedules_are_byte_identical_across_runs_and_backends() {
    // The PRNG is consulted only on counted operations (sends and
    // message-producing receives) — per-endpoint program order — so the
    // same seed yields the same injected schedule no matter how the
    // backends interleave delivery.
    let g = generators::ring_n(3);
    let procs = skeleton_procs("ring3", &g);
    let (sender, _) = first_edge(&g);
    for kind in [FaultKind::Drop, FaultKind::Duplicate, FaultKind::Delay] {
        let (plan, _) = fault_plan(kind, 97);
        let mem_a = memory_run(&g, &procs, &sender, &plan);
        let mem_b = memory_run(&g, &procs, &sender, &plan);
        let tcp_a = tcp_run(&g, &procs, &sender, &plan);
        let tcp_b = tcp_run(&g, &procs, &sender, &plan);
        let fmt = |r: &CampaignRun| format!("{:?}", r.schedules);
        assert_eq!(fmt(&mem_a), fmt(&mem_b), "{kind}: memory runs diverged");
        assert_eq!(fmt(&tcp_a), fmt(&tcp_b), "{kind}: TCP runs diverged");
        assert_eq!(fmt(&mem_a), fmt(&tcp_a), "{kind}: backends diverged");
        // A different seed rolls different delay parameters but the same
        // budgeted single firing; the schedules still name the same op.
        let (other, _) = fault_plan(kind, 98);
        let mem_c = memory_run(&g, &procs, &sender, &other);
        assert_eq!(mem_c.schedules[&sender].len(), 1);
    }
}

// ---------------------------------------------------------------------
// Front 2: byzantine casts against the quarantine policy
// ---------------------------------------------------------------------

#[test]
fn byzantine_sessions_are_quarantined_and_neighbours_survive() {
    for (name, g) in case_studies() {
        let protocol = Protocol::new(name, g.clone()).unwrap();
        let honest = skeleton_endpoints(&protocol).unwrap();
        for mutation in ByzantineMutation::all() {
            let Some(driver) = byzantine_driver(&protocol, mutation).unwrap() else {
                continue;
            };
            let mut registry = ProtocolRegistry::new();
            let id = registry
                .register(Protocol::new(name, g.clone()).unwrap())
                .unwrap();
            let mut server = SessionServer::start(registry, ServerConfig::with_shards(1));
            let byz = server
                .submit(SessionSpec::new(id, driver.endpoints.clone()))
                .unwrap();
            for _ in 0..3 {
                server
                    .submit(SessionSpec::new(id, honest.clone()))
                    .unwrap();
            }
            let outcomes = server.drain();
            assert_eq!(outcomes.len(), 4);
            let context = format!("{name}/{mutation}");
            let byz_outcome = outcomes.iter().find(|o| o.id == byz).unwrap();
            match mutation.expected() {
                ExpectedClass::Violation => {
                    assert!(!byz_outcome.compliant, "{context}: must violate");
                    assert!(byz_outcome.quarantined, "{context}: must be quarantined");
                    assert_eq!(
                        byz_outcome.violations.len(),
                        1,
                        "{context}: quarantine means zero post-violation steps"
                    );
                }
                ExpectedClass::Silence => {
                    assert!(byz_outcome.compliant, "{context}: silence is a valid prefix");
                    assert!(!byz_outcome.complete, "{context}: silence must not complete");
                    assert!(!byz_outcome.quarantined, "{context}: silence is not quarantined");
                }
            }
            // Co-resident compliant sessions are untouched.
            for outcome in outcomes.iter().filter(|o| o.id != byz) {
                assert!(
                    outcome.all_finished_and_compliant(),
                    "{context}: neighbour {:?} was damaged",
                    outcome.id
                );
                assert!(!outcome.quarantined);
            }
            let report = server.report();
            let expected_quarantines =
                u64::from(mutation.expected() == ExpectedClass::Violation);
            assert_eq!(
                report.sessions_quarantined(),
                expected_quarantines,
                "{context}: {report}"
            );
            if expected_quarantines > 0 {
                assert_eq!(
                    report.obs.per_protocol_quarantined,
                    vec![(id.index() as u32, 1)],
                    "{context}: per-protocol counter"
                );
                assert!(
                    server
                        .flight_events()
                        .iter()
                        .any(|e| matches!(e, FlightEvent::Quarantined { .. })),
                    "{context}: missing Quarantined flight event"
                );
                // The incident replays its violation against the compiled
                // system.
                let system = Arc::clone(server.registry().get(id).unwrap().compiled());
                let incidents = server.incidents();
                assert!(!incidents.is_empty(), "{context}: no incident captured");
                for incident in &incidents {
                    assert!(
                        incident.replays_violation(&system),
                        "{context}: incident must re-certify: {incident:?}"
                    );
                }
            } else {
                assert!(report.obs.per_protocol_quarantined.is_empty());
            }
            server.shutdown();
        }
    }
}

#[test]
fn batch_demoted_violators_are_quarantined_without_slab_steps() {
    // The rotated ring pre-interns against the registered tables, so the
    // sessions coalesce into a columnar batch; the out-of-order first send
    // demotes each one — and under Halt the demoted session goes straight
    // to quarantine instead of being re-admitted to the slab.
    let mut registry = ProtocolRegistry::new();
    let id = registry
        .register(Protocol::new("ring", generators::ring_n(3)).unwrap())
        .unwrap();
    let decoy = Protocol::new("ring", generators::ring(&["w2", "w0", "w1"])).unwrap();
    let endpoints = skeleton_endpoints(&decoy).unwrap();
    let mut server = SessionServer::start(registry, ServerConfig::with_shards(1));
    for _ in 0..8 {
        server
            .submit(SessionSpec::new(id, endpoints.clone()))
            .unwrap();
    }
    let outcomes = server.drain();
    assert_eq!(outcomes.len(), 8);
    for outcome in &outcomes {
        assert!(!outcome.compliant);
        assert!(outcome.quarantined, "demoted violators must be quarantined");
        assert_eq!(
            outcome.violations.len(),
            1,
            "quarantine means zero post-violation steps"
        );
    }
    let report = server.report();
    assert_eq!(report.sessions_batched(), 8, "{report}");
    assert_eq!(report.sessions_quarantined(), 8, "{report}");
    assert_eq!(
        report.obs.per_protocol_quarantined,
        vec![(id.index() as u32, 8)]
    );
    server.shutdown();
}

// ---------------------------------------------------------------------
// Front 3: the wire — quarantine teardown and the idle reaper
// ---------------------------------------------------------------------

fn wait_for_done(client: &mut NetClient, session: u64) -> (bool, u64) {
    let deadline = Instant::now() + EVENT_TIMEOUT;
    loop {
        match client.poll_event(Duration::from_millis(100)).unwrap() {
            Some(MuxFrame::Done {
                session: s,
                compliant,
                violations,
                ..
            }) if s == session => return (compliant, u64::from(violations)),
            Some(_) => {}
            None => assert!(Instant::now() < deadline, "no Done within {EVENT_TIMEOUT:?}"),
        }
    }
}

#[test]
fn quarantine_tears_down_the_owning_connection_over_tcp() {
    let mut registry = ProtocolRegistry::new();
    let byz_id = registry
        .register(Protocol::new("byz_ring", generators::ring_n(3)).unwrap())
        .unwrap();
    let ok_id = registry
        .register(Protocol::new("ok_ring", generators::ring_n(3)).unwrap())
        .unwrap();
    let byz_protocol = Protocol::new("byz_ring", generators::ring_n(3)).unwrap();
    let driver = byzantine_driver(&byz_protocol, ByzantineMutation::WrongLabel)
        .unwrap()
        .expect("wrong-label applies to the ring");
    let byz_service = Service {
        protocol: byz_id,
        endpoints: driver.endpoints.into(),
        options: ExecOptions::default(),
    };
    let ok_service = Service::skeleton(&registry, ok_id).unwrap();
    let config = NetServerConfig {
        close_on_quarantine: true,
        ..NetServerConfig::default()
    };
    let server = NetServer::start(registry, [byz_service, ok_service], config).unwrap();

    // The compliant neighbour connection, opened first, must survive the
    // byzantine one's teardown.
    let mut ok_client = NetClient::connect(server.local_addr()).unwrap();
    let mut byz_client = NetClient::connect(server.local_addr()).unwrap();

    let byz_session = byz_client
        .open_with("byz_ring", EVENT_TIMEOUT)
        .expect("byzantine open is accepted — the monitor, not admission, catches it");
    let (compliant, violations) = wait_for_done(&mut byz_client, byz_session);
    assert!(!compliant);
    assert!(violations >= 1);
    // Then the structured rejection...
    let deadline = Instant::now() + EVENT_TIMEOUT;
    loop {
        match byz_client.poll_event(Duration::from_millis(100)) {
            Ok(Some(MuxFrame::Rejected { session, code, .. })) => {
                assert_eq!(session, byz_session);
                assert_eq!(code, RejectCode::Quarantined);
                break;
            }
            Ok(Some(other)) => panic!("unexpected frame {other:?}"),
            Ok(None) => assert!(Instant::now() < deadline, "no rejection frame"),
            Err(e) => panic!("rejection frame must precede the close: {e}"),
        }
    }
    // ...then the close, surfaced as a structured error, never Ok(None).
    let deadline = Instant::now() + EVENT_TIMEOUT;
    loop {
        match byz_client.poll_event(Duration::from_millis(100)) {
            Err(zooid_runtime::RuntimeError::Disconnected { .. }) => break,
            Err(e) => panic!("want Disconnected, got {e}"),
            Ok(Some(other)) => panic!("unexpected frame {other:?}"),
            Ok(None) => assert!(Instant::now() < deadline, "server never closed"),
        }
    }

    // The compliant neighbour still serves end to end.
    let ok_session = ok_client.open_with("ok_ring", EVENT_TIMEOUT).unwrap();
    let (compliant, _) = wait_for_done(&mut ok_client, ok_session);
    assert!(compliant, "the neighbour connection must be untouched");
    let report = server.shutdown();
    assert_eq!(report.net.rejects.quarantined, 1);
    assert_eq!(report.shards.sessions_quarantined(), 1);
}

#[test]
fn idle_connections_are_reaped_and_live_ones_are_not() {
    let mut registry = ProtocolRegistry::new();
    let id = registry
        .register(Protocol::new("ring", generators::ring_n(3)).unwrap())
        .unwrap();
    let service = Service::skeleton(&registry, id).unwrap();
    let config = NetServerConfig {
        idle_timeout: Duration::from_millis(150),
        ..NetServerConfig::default()
    };
    let server = NetServer::start(registry, [service], config).unwrap();

    // A live client disarms its own idle deadline by sending frames.
    let mut live = NetClient::connect(server.local_addr()).unwrap();
    let session = live.open_with("ring", EVENT_TIMEOUT).unwrap();

    // The mute connection never sends a byte.
    let mute = TcpStream::connect(server.local_addr()).unwrap();
    mute.set_read_timeout(Some(Duration::from_millis(100))).unwrap();

    let deadline = Instant::now() + EVENT_TIMEOUT;
    loop {
        let reaped = server.flight_events().iter().any(|e| {
            matches!(
                e,
                FlightEvent::ConnClosed {
                    reason: CloseReason::Idle,
                    ..
                }
            )
        });
        if reaped {
            break;
        }
        assert!(Instant::now() < deadline, "idle connection never reaped");
        std::thread::sleep(Duration::from_millis(20));
    }
    // The mute socket reads EOF; the live one still completes its session.
    let mut mute = mute;
    let eof_deadline = Instant::now() + EVENT_TIMEOUT;
    loop {
        let mut scratch = [0u8; 64];
        match std::io::Read::read(&mut mute, &mut scratch) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
        assert!(Instant::now() < eof_deadline, "mute socket never closed");
    }
    let (compliant, _) = wait_for_done(&mut live, session);
    assert!(compliant, "the live connection must not be reaped");
    server.shutdown();
}

#[test]
fn open_with_surfaces_structured_rejections_and_timeouts() {
    let mut registry = ProtocolRegistry::new();
    let id = registry
        .register(Protocol::new("ring", generators::ring_n(3)).unwrap())
        .unwrap();
    let service = Service::skeleton(&registry, id).unwrap();
    let server = NetServer::start(registry, [service], NetServerConfig::default()).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    // An unknown protocol is a structured error, not a silent None.
    match client.open_with("no_such_protocol", EVENT_TIMEOUT) {
        Err(zooid_runtime::RuntimeError::Codec { reason }) => {
            assert!(reason.contains("open rejected"), "{reason}");
            assert!(reason.contains("unknown"), "{reason}");
        }
        other => panic!("want a structured rejection, got {other:?}"),
    }
    server.shutdown();
}

// ---------------------------------------------------------------------
// Front 4: the batch arena under fault injection
// ---------------------------------------------------------------------

/// Compiles the campaign's skeleton casts into a batch layout (the same
/// construction the batch differential suite uses).
fn arena_layout(g: &GlobalType, procs: &[(Role, Proc)]) -> Arc<BatchLayout> {
    let system = Arc::new(System::from_global(g).expect("projectable").compile());
    let mut sorted = procs.to_vec();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let roles: Arc<[Role]> = sorted
        .iter()
        .map(|(r, _)| r.clone())
        .collect::<Vec<_>>()
        .into();
    let programs: Vec<Arc<EndpointProgram>> = sorted
        .iter()
        .map(|(role, proc)| {
            Arc::new(EndpointProgram::with_system(
                Arc::new(
                    CompiledProc::compile(proc, role, &Externals::new())
                        .expect("skeletons compile"),
                ),
                &system,
            ))
        })
        .collect();
    BatchLayout::new(roles, programs, system).expect("case studies are batch-eligible")
}

/// A faulted batch run: four co-resident sessions, one budgeted arena fault.
/// Returns `(clean_tokens, stranded, arena_codec_failures, schedule)`.
fn arena_run(
    layout: &Arc<BatchLayout>,
    plan: &FaultPlan,
) -> (Vec<u64>, bool, Vec<String>, Vec<InjectedFault>) {
    const WIDTH: u64 = 4;
    let mut batch = SessionBatch::new(Arc::clone(layout), ExecOptions::default(), WIDTH as usize);
    for token in 0..WIDTH {
        assert!(batch.admit(token), "width-{WIDTH} batch admits {token}");
    }
    batch.set_arena_faults(plan);
    let out = batch.run_quantum(usize::MAX);

    let clean: Vec<u64> = out
        .finished
        .iter()
        .filter(|o| {
            o.compliant
                && o.complete
                && !o.stalled
                && o.endpoints
                    .iter()
                    .all(|r| r.status == EndpointStatus::Finished)
        })
        .map(|o| o.token)
        .collect();
    let stranded = out
        .demoted
        .iter()
        .flat_map(|d| d.endpoints.iter())
        .any(|ep| ep.status.is_none() || ep.status == Some(EndpointStatus::Stalled))
        || out.finished.iter().any(|o| o.stalled);
    let failures: Vec<String> = out
        .finished
        .iter()
        .flat_map(|o| o.endpoints.iter())
        .filter_map(|r| match &r.status {
            EndpointStatus::Failed { error } => Some(error.clone()),
            _ => None,
        })
        .chain(
            out.demoted
                .iter()
                .flat_map(|d| d.endpoints.iter())
                .filter_map(|ep| match &ep.status {
                    Some(EndpointStatus::Failed { error }) => Some(error.clone()),
                    _ => None,
                }),
        )
        .collect();
    (clean, stranded, failures, batch.arena_fault_schedule().to_vec())
}

#[test]
fn arena_faults_damage_only_the_victim_session_in_every_case_study() {
    for (idx, (name, g)) in case_studies().into_iter().enumerate() {
        let procs = skeleton_procs(name, &g);
        let layout = arena_layout(&g, &procs);
        for kind in [FaultKind::Drop, FaultKind::Truncate] {
            let seed = 0xA7E0 + idx as u64;
            let plan = FaultPlan::new(seed)
                .with(FaultSpec::new(kind, FaultSite::Send).budget(1));
            let (clean, stranded, failures, schedule) = arena_run(&layout, &plan);
            let context = format!("{name}/{kind:?}");
            assert_eq!(schedule.len(), 1, "{context}: the budgeted fault fires once");
            assert_eq!(schedule[0].kind, kind, "{context}");
            // Containment: the one corrupted frame belongs to one session;
            // its three co-residents must conclude compliant and complete.
            assert_eq!(
                clean.len(),
                3,
                "{context}: exactly the victim is unclean, clean = {clean:?}"
            );
            match kind {
                FaultKind::Drop => assert!(
                    stranded,
                    "{context}: a dropped frame must strand an endpoint"
                ),
                FaultKind::Truncate => assert!(
                    failures
                        .iter()
                        .any(|e| e.contains("corrupted frame in the batch arena")),
                    "{context}: truncation must be a structured arena-codec \
                     failure, got {failures:?}"
                ),
                _ => unreachable!(),
            }
        }
    }
}

#[test]
fn arena_fault_schedules_replay_byte_identically_for_a_pinned_seed() {
    for (idx, (name, g)) in case_studies().into_iter().enumerate() {
        let procs = skeleton_procs(name, &g);
        let layout = arena_layout(&g, &procs);
        for kind in [FaultKind::Drop, FaultKind::Duplicate, FaultKind::Truncate] {
            let plan = FaultPlan::new(0xD1CE + idx as u64)
                .with(FaultSpec::new(kind, FaultSite::Send).budget(1));
            let (_, _, _, first) = arena_run(&layout, &plan);
            let (_, _, _, second) = arena_run(&layout, &plan);
            assert_eq!(
                first, second,
                "{name}/{kind:?}: same seed, same plan, same schedule"
            );
            assert_eq!(first.len(), 1, "{name}/{kind:?}: the budget caps firing");
        }
        // The empty plan is the bystander configuration: no schedule at all.
        let (clean, stranded, failures, schedule) = arena_run(&layout, &FaultPlan::new(0));
        assert!(schedule.is_empty(), "{name}: empty plan injects nothing");
        assert_eq!(clean.len(), 4, "{name}: all four sessions conclude clean");
        assert!(!stranded && failures.is_empty(), "{name}");
    }
}
