//! Differential tests: the sharded session server against the
//! thread-per-participant [`SessionHarness`], and the [`CompiledMonitor`]
//! against the [`TraceMonitor`] — the exhaustive-oracle pattern the ROADMAP
//! mandates for every engine replacement.
//!
//! Skeleton endpoints (first-branch sends with default payloads) make every
//! session fully deterministic per endpoint, so a protocol run through the
//! harness and through the server — under any shard schedule, with any
//! number of concurrent copies — must produce identical per-endpoint traces,
//! values included. The only legitimate divergence is *how* an endpoint that
//! can never progress again is put out of its misery: the harness times out
//! (`Failed { timed out ... }`), the server detects the stall
//! (`EndpointStatus::Stalled`); the comparison normalises the two.

use std::collections::BTreeMap;
use std::time::Duration;

use rand::{Rng, SeedableRng, StdRng};
use zooid_dsl::Protocol;
use zooid_mpst::generators::{self, RandomProtocol};
use zooid_mpst::{Action, ActionKind, Label, Role, Sort};
use zooid_proc::ValueAction;
use zooid_runtime::monitor::CompiledMonitor;
use zooid_runtime::{EndpointStatus, SessionHarness, TraceMonitor};
use zooid_server::synth::skeleton_endpoints;
use zooid_server::{ProtocolRegistry, ServerConfig, SessionServer, SessionSpec};

const MAX_STEPS: usize = 32;

/// Statuses modulo the harness-timeout vs server-stall distinction.
fn normalize_status(status: &EndpointStatus) -> String {
    match status {
        EndpointStatus::Failed { error } if error.contains("timed out") => "stalled".to_owned(),
        EndpointStatus::Stalled => "stalled".to_owned(),
        other => format!("{other:?}"),
    }
}

struct Baseline {
    /// Per-role (normalised status, full value-level trace).
    endpoints: BTreeMap<Role, (String, Vec<ValueAction>)>,
    compliant: bool,
    complete: bool,
    global_trace: Vec<Action>,
}

/// Runs the protocol once through the thread-per-endpoint harness.
fn harness_baseline(protocol: &Protocol) -> Baseline {
    let endpoints = skeleton_endpoints(protocol).expect("skeletons certify");
    let mut harness = SessionHarness::new(protocol.clone());
    for (cert, ext) in endpoints {
        harness.add_endpoint(cert, ext).unwrap();
    }
    harness.with_max_steps(MAX_STEPS);
    harness.with_recv_timeout(Duration::from_millis(200));
    let report = harness.run().expect("harness runs");
    Baseline {
        endpoints: report
            .endpoints
            .iter()
            .map(|(role, r)| {
                (role.clone(), (normalize_status(&r.status), r.actions.clone()))
            })
            .collect(),
        compliant: report.compliant,
        complete: report.complete,
        global_trace: report.global_trace.actions().to_vec(),
    }
}

/// The randomized protocol corpus: every seed whose protocol is projectable
/// (registration succeeds) and synthesizable.
fn random_corpus() -> Vec<Protocol> {
    let params = RandomProtocol::default();
    let mut corpus = Vec::new();
    for seed in 0..200u64 {
        if corpus.len() >= 25 {
            break;
        }
        let g = generators::random_global(seed, &params);
        let protocol = Protocol::new(format!("rand{seed}"), g).unwrap();
        if protocol.project_all().is_err() {
            continue;
        }
        if skeleton_endpoints(&protocol).is_err() {
            continue;
        }
        corpus.push(protocol);
    }
    assert!(corpus.len() >= 10, "corpus too small: {}", corpus.len());
    corpus
}

#[test]
fn server_sessions_match_the_harness_on_randomized_protocols() {
    let mut protocols = random_corpus();
    protocols.push(Protocol::new("ring", generators::ring3()).unwrap());
    protocols.push(Protocol::new("two_buyer", generators::two_buyer()).unwrap());
    protocols.push(Protocol::new("fanout", generators::fanout_n(5)).unwrap());

    // One server hosts every protocol at once, on 4 shards.
    let mut registry = ProtocolRegistry::new();
    let mut submissions = Vec::new();
    for protocol in &protocols {
        let id = registry.register(protocol.clone()).unwrap();
        let endpoints = skeleton_endpoints(protocol).unwrap();
        submissions.push((id, endpoints));
    }
    let baselines: BTreeMap<_, _> = protocols
        .iter()
        .zip(&submissions)
        .map(|(protocol, (id, _))| (*id, harness_baseline(protocol)))
        .collect();

    let mut server = SessionServer::start(registry, ServerConfig::with_shards(4));
    // 1..=64 concurrent copies per protocol, varying across the corpus.
    let copy_counts = [1usize, 13, 64];
    let mut expected = BTreeMap::new();
    for (i, (id, endpoints)) in submissions.iter().enumerate() {
        let copies = copy_counts[i % copy_counts.len()];
        for _ in 0..copies {
            server
                .submit(SessionSpec::new(*id, endpoints.clone()).with_max_steps(MAX_STEPS))
                .unwrap();
        }
        *expected.entry(*id).or_insert(0usize) += copies;
    }
    let outcomes = server.drain();
    assert_eq!(outcomes.len(), expected.values().sum::<usize>());

    let mut seen = BTreeMap::new();
    for outcome in &outcomes {
        *seen.entry(outcome.protocol).or_insert(0usize) += 1;
        let baseline = &baselines[&outcome.protocol];
        assert_eq!(outcome.compliant, baseline.compliant, "{:?}", outcome.id);
        assert_eq!(outcome.complete, baseline.complete, "{:?}", outcome.id);
        assert!(outcome.violations.is_empty() == baseline.compliant);
        assert_eq!(outcome.endpoints.len(), baseline.endpoints.len());
        for (role, report) in &outcome.endpoints {
            let (expected_status, expected_actions) = &baseline.endpoints[role];
            assert_eq!(
                &normalize_status(&report.status),
                expected_status,
                "status of `{role}` in {:?}",
                outcome.id
            );
            assert_eq!(
                &report.actions, expected_actions,
                "trace of `{role}` in {:?}",
                outcome.id
            );
        }
    }
    assert_eq!(seen, expected, "every submitted copy finished exactly once");

    let report = server.shutdown();
    assert_eq!(report.sessions_started() as usize, outcomes.len());
    assert_eq!(report.sessions_completed() as usize, outcomes.len());
    assert_eq!(report.sessions_violated(), 0, "skeletons are certified");
}

/// Mutations of a valid action used to probe the reject paths.
fn sabotaged(action: &Action) -> Vec<Action> {
    let mut out = vec![
        action.dual(),
        // Unknown label and a label from another protocol's namespace.
        Action::send(action.from().clone(), action.to().clone(), Label::new("zzz"), action.sort().clone()),
        // Wrong sort.
        Action::send(action.from().clone(), action.to().clone(), action.label().clone(), Sort::Str),
        // Reversed endpoints.
        Action::send(action.to().clone(), action.from().clone(), action.label().clone(), action.sort().clone()),
        // A role foreign to the protocol.
        Action::send(Role::new("zz_intruder"), action.to().clone(), action.label().clone(), action.sort().clone()),
    ];
    if action.kind() == ActionKind::Recv {
        out.push(Action::recv(
            action.to().clone(),
            action.from().clone(),
            Label::new("zzz"),
            action.sort().clone(),
        ));
    }
    out
}

#[test]
fn compiled_and_trace_monitors_agree_on_every_action() {
    let mut protocols = random_corpus();
    protocols.push(Protocol::new("ring", generators::ring3()).unwrap());
    protocols.push(Protocol::new("two_buyer", generators::two_buyer()).unwrap());

    let mut rng = StdRng::seed_from_u64(0xd1ff);
    let mut observations = 0usize;
    let mut rejections = 0usize;
    for protocol in &protocols {
        let baseline = harness_baseline(protocol);
        let mut reference = TraceMonitor::new(protocol.global()).unwrap();
        let mut compiled = CompiledMonitor::for_global(protocol.global()).unwrap();

        for action in &baseline.global_trace {
            // Probe a random mutation before each valid action: both
            // monitors must hand down the same verdict, whatever it is. A
            // mutation can be *legal* (e.g. the dual of a pending send), so
            // its acceptance is first probed on clones; only a rejected
            // probe is replayed into the live monitors — recording a
            // violation on both — to keep the baseline stream on course.
            let mutations = sabotaged(action);
            let probe = &mutations[rng.gen_range(0..mutations.len())];
            let r = reference.clone().observe(probe);
            let c = compiled.clone().observe(probe);
            assert_eq!(r, c, "{}: monitors disagree on probe {probe}", protocol.name());
            observations += 1;
            if !r {
                assert!(!reference.observe(probe));
                assert!(!compiled.observe(probe));
                rejections += 1;
            }

            let r = reference.observe(action);
            let c = compiled.observe(action);
            assert_eq!(r, c, "{}: monitors disagree on {action}", protocol.name());
            assert!(r, "{}: baseline action {action} rejected", protocol.name());
            observations += 1;
        }
        assert_eq!(reference.trace(), compiled.trace(), "{}", protocol.name());
        assert_eq!(
            reference.violations(),
            compiled.violations(),
            "{}",
            protocol.name()
        );
        assert_eq!(
            reference.is_complete(),
            compiled.is_complete(),
            "{}",
            protocol.name()
        );
        assert_eq!(reference.is_complete(), baseline.complete, "{}", protocol.name());
    }
    assert!(observations > 100, "suite too small: {observations}");
    assert!(rejections > 20, "probes never exercised the reject path");
}

#[test]
fn a_single_copy_on_one_shard_matches_the_harness_exactly() {
    let protocol = Protocol::new("ring", generators::ring3()).unwrap();
    let baseline = harness_baseline(&protocol);

    let mut registry = ProtocolRegistry::new();
    let id = registry.register(protocol.clone()).unwrap();
    let endpoints = skeleton_endpoints(&protocol).unwrap();
    let mut server = SessionServer::start(registry, ServerConfig::with_shards(1));
    server.submit(SessionSpec::new(id, endpoints)).unwrap();
    let outcomes = server.drain();
    server.shutdown();

    assert_eq!(outcomes.len(), 1);
    let outcome = &outcomes[0];
    assert!(outcome.all_finished_and_compliant());
    assert_eq!(outcome.compliant, baseline.compliant);
    assert_eq!(outcome.complete, baseline.complete);
    for (role, report) in &outcome.endpoints {
        assert_eq!(report.actions, baseline.endpoints[role].1, "{role}");
    }
}
