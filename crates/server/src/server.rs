//! The sharded session server: a bounded pool of worker shards hosting
//! thousands of concurrent sessions.
//!
//! Each worker shard owns a crossbeam run queue of [`ActiveSession`]s and
//! steps them in bounded quanta ([`ServerConfig::quantum`] visible actions),
//! so a long-running session cannot starve its neighbours and the number of
//! OS threads is fixed by [`ServerConfig::shards`] — never by the number of
//! live sessions. Sessions are assigned to shards by hashing their
//! [`SessionId`], all endpoints of one session live on the same shard (so
//! intra-session message arrival wakes the receiving endpoint on the very
//! next stepping pass, with no cross-thread signalling), and finished
//! sessions stream their [`SessionOutcome`] back to the submitter.

use std::collections::VecDeque;
use std::hash::Hasher;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use zooid_cfsm::CompiledSystem;
use zooid_mpst::common::intern::{FxHashMap, FxHasher};
use zooid_runtime::cbatch::{BatchLayout, BatchOutcome, DemotedSession, SessionBatch};
use zooid_runtime::cexec::EndpointProgram;
use zooid_runtime::checkpoint::{initial_demoted, SessionCheckpoint};

use crate::error::{Result, ServerError};
use crate::metrics::{ServerReport, ShardMetrics};
use crate::obs::{FlightEvent, Histogram, Incident, ObsReport, ShardObs, INCIDENT_PREFIX_CAP};
use crate::registry::{ProtocolArtifacts, ProtocolRegistry, ProtocolId};
use crate::session::{ActiveSession, SessionId, SessionOutcome, SessionSpec};

/// What a worker shard does with a session whose monitor rejected an
/// action.
///
/// Detection alone (PR 8's incidents) still lets a byzantine endpoint keep
/// talking — burning shard budget and spraying messages at honest peers —
/// for as long as the session takes to finish on its own. Quarantine is the
/// policy beyond recording: the shard stops stepping the session the moment
/// the monitor says no.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantinePolicy {
    /// Record the violation (metrics, incident capture) but keep stepping
    /// the session to its natural end.
    Observe,
    /// Halt the session at the first rejected action: zero further steps on
    /// either execution path (a batch-demoted violator is closed instead of
    /// re-admitted to the slab), endpoints still mid-protocol reported
    /// stalled, the outcome flagged `quarantined`, and a `Quarantined`
    /// flight-recorder event emitted. The default.
    Halt,
    /// Halt the violating run, then re-admit the session from its **last
    /// certified checkpoint** — the encoded [`SessionCheckpoint`] the shard
    /// took the last time the session was rescheduled while still compliant
    /// (or, if it violated before its first reschedule, a fresh session at
    /// the protocol's initial states). Each restart re-validates the
    /// checkpoint against the compiled tables before anything resumes. A
    /// session that keeps violating is restarted at most `max_retries`
    /// times, then closed exactly as under [`QuarantinePolicy::Halt`].
    RestartFromCheckpoint {
        /// Restart budget per session; `0` behaves like `Halt`.
        max_retries: u32,
    },
}

/// Configuration of a [`SessionServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of worker shards (and therefore worker threads).
    pub shards: usize,
    /// Maximum visible communications a session may perform per scheduling
    /// quantum before it is re-queued behind its shard neighbours.
    pub quantum: usize,
    /// What to do with a session the monitor rejects.
    pub quarantine: QuarantinePolicy,
    /// Per-protocol violation thresholds: a session of a listed protocol is
    /// only quarantined once its monitor has rejected that many actions
    /// (the adaptive knob for lenient protocols whose occasional stray
    /// message is tolerable); unlisted protocols quarantine at the first
    /// rejection. Ignored under [`QuarantinePolicy::Observe`].
    pub violation_thresholds: Vec<(ProtocolId, u32)>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            quantum: 64,
            quarantine: QuarantinePolicy::Halt,
            violation_thresholds: Vec::new(),
        }
    }
}

impl ServerConfig {
    /// A config with the given shard count and the default quantum.
    pub fn with_shards(shards: usize) -> Self {
        ServerConfig {
            shards: shards.max(1),
            ..ServerConfig::default()
        }
    }

    /// Tolerates up to `threshold - 1` monitor rejections for sessions of
    /// `protocol` before quarantining (a threshold of `0` is treated as 1).
    pub fn with_violation_threshold(mut self, protocol: ProtocolId, threshold: u32) -> Self {
        self.violation_thresholds.push((protocol, threshold.max(1)));
        self
    }
}

/// The worker-side view of the quarantine configuration: the policy plus
/// the per-protocol violation thresholds resolved into a map.
#[derive(Debug, Clone)]
struct QuarantineConfig {
    policy: QuarantinePolicy,
    thresholds: FxHashMap<ProtocolId, u32>,
}

impl QuarantineConfig {
    fn new(config: &ServerConfig) -> Self {
        let mut thresholds = FxHashMap::default();
        for &(protocol, threshold) in &config.violation_thresholds {
            thresholds.insert(protocol, threshold.max(1));
        }
        QuarantineConfig {
            policy: config.quarantine,
            thresholds,
        }
    }

    /// How many monitor rejections a session of `protocol` may accumulate
    /// before the shard stops stepping it; `None` means never (observe).
    fn threshold_for(&self, protocol: ProtocolId) -> Option<u32> {
        match self.policy {
            QuarantinePolicy::Observe => None,
            _ => Some(self.thresholds.get(&protocol).copied().unwrap_or(1)),
        }
    }

    /// The per-session restart budget (zero unless the policy is
    /// [`QuarantinePolicy::RestartFromCheckpoint`]).
    fn max_retries(&self) -> u32 {
        match self.policy {
            QuarantinePolicy::RestartFromCheckpoint { max_retries } => max_retries,
            _ => 0,
        }
    }
}

enum ShardMsg {
    /// A validated spec to build and run. Construction (channels, compiled
    /// task binding, monitor cursor) happens on the worker shard so a
    /// single submitter thread never serialises the whole batch's setup.
    Run {
        id: SessionId,
        spec: SessionSpec,
        artifacts: Arc<crate::registry::ProtocolArtifacts>,
    },
    /// Checkpoint every queued session and hand the encoded checkpoints
    /// back — the evacuation half of a session migration.
    Drain {
        reply: Sender<Vec<MigratedSession>>,
    },
    /// Re-admit a session restored from a checkpoint (already decoded and
    /// re-certified on the submitter thread) — the arrival half.
    Restore {
        id: SessionId,
        protocol: ProtocolId,
        demoted: DemotedSession,
        artifacts: Arc<crate::registry::ProtocolArtifacts>,
    },
    Shutdown,
}

/// A live session evacuated from a shard as an encoded, re-certifiable
/// checkpoint (see [`SessionServer::drain_shard`]). The bytes are the
/// [`SessionCheckpoint`] wire encoding — opaque but inspectable, so tests
/// can tamper with them and watch [`SessionServer::migrate_session`] refuse
/// the damage with a structured error instead of admitting it.
#[derive(Debug)]
pub struct MigratedSession {
    /// The session's id (stable across the migration).
    pub id: SessionId,
    /// The protocol the session runs.
    pub protocol: ProtocolId,
    /// The encoded [`SessionCheckpoint`].
    pub bytes: Vec<u8>,
    /// The compiled per-role programs the checkpoint's indices refer to,
    /// in the checkpoint's endpoint order.
    programs: Vec<Arc<EndpointProgram>>,
}

struct Shard {
    tx: Sender<ShardMsg>,
    handle: std::thread::JoinHandle<()>,
}

/// A multi-session server hosting sessions of registered protocols on a
/// bounded worker pool.
///
/// # Examples
///
/// ```
/// use zooid_dsl::Protocol;
/// use zooid_mpst::generators;
/// use zooid_server::{ProtocolRegistry, ServerConfig, SessionServer, SessionSpec};
///
/// let mut registry = ProtocolRegistry::new();
/// let ring = registry.register(Protocol::new("ring", generators::ring3()).unwrap()).unwrap();
/// let endpoints = zooid_server::synth::skeleton_endpoints(
///     registry.get(ring).unwrap().protocol(),
/// ).unwrap();
///
/// let mut server = SessionServer::start(registry, ServerConfig::with_shards(2));
/// for _ in 0..10 {
///     server.submit(SessionSpec::new(ring, endpoints.clone())).unwrap();
/// }
/// let outcomes = server.drain();
/// assert_eq!(outcomes.len(), 10);
/// assert!(outcomes.iter().all(|o| o.all_finished_and_compliant()));
/// let report = server.shutdown();
/// assert_eq!(report.sessions_completed(), 10);
/// ```
#[derive(Debug)]
pub struct SessionServer {
    registry: Arc<ProtocolRegistry>,
    shards: Vec<Shard>,
    metrics: Vec<Arc<ShardMetrics>>,
    obs: Vec<Arc<ShardObs>>,
    results_rx: Receiver<Vec<SessionOutcome>>,
    /// Outcomes received from a shard's batch but not yet handed to the
    /// caller (shards flush finished sessions in batches to keep channel
    /// traffic off the per-session path).
    ready: VecDeque<SessionOutcome>,
    next_session: u64,
    in_flight: usize,
    /// Set when a shard worker died and its sessions were written off: the
    /// results stream can no longer be attributed reliably, so the server
    /// refuses further submissions.
    degraded: bool,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard").finish_non_exhaustive()
    }
}

impl SessionServer {
    /// Starts the worker shards over a (now frozen) protocol registry.
    pub fn start(registry: ProtocolRegistry, config: ServerConfig) -> Self {
        let registry = Arc::new(registry);
        let shard_count = config.shards.max(1);
        let (results_tx, results_rx) = unbounded();
        let mut shards = Vec::with_capacity(shard_count);
        let mut metrics = Vec::with_capacity(shard_count);
        let mut obs = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let (tx, rx) = unbounded();
            let shard_metrics = Arc::new(ShardMetrics::default());
            let shard_obs = Arc::new(ShardObs::new());
            let worker_metrics = Arc::clone(&shard_metrics);
            let worker_obs = Arc::clone(&shard_obs);
            let worker_results = results_tx.clone();
            let quantum = config.quantum.max(1);
            let quarantine = QuarantineConfig::new(&config);
            let handle = std::thread::spawn(move || {
                shard_worker(
                    rx,
                    worker_results,
                    worker_metrics,
                    worker_obs,
                    quantum,
                    quarantine,
                );
            });
            shards.push(Shard { tx, handle });
            metrics.push(shard_metrics);
            obs.push(shard_obs);
        }
        SessionServer {
            registry,
            shards,
            metrics,
            obs,
            results_rx,
            ready: VecDeque::new(),
            next_session: 0,
            in_flight: 0,
            degraded: false,
        }
    }

    /// The registry the server serves.
    pub fn registry(&self) -> &ProtocolRegistry {
        &self.registry
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Convenience: registry lookup by name.
    pub fn protocol(&self, name: &str) -> Option<ProtocolId> {
        self.registry.lookup(name)
    }

    /// Submits a session for execution, returning its id immediately.
    ///
    /// # Errors
    ///
    /// Fails if the spec references an unknown protocol, does not cover the
    /// participants exactly, or the server is shut down.
    pub fn submit(&mut self, spec: SessionSpec) -> Result<SessionId> {
        if self.degraded {
            // A worker died and its sessions were written off: outcomes in
            // the results stream can no longer be matched to submissions.
            return Err(ServerError::Shutdown);
        }
        let artifacts = self
            .registry
            .get(spec.protocol)
            .ok_or(ServerError::UnknownProtocol)?;
        crate::session::validate_spec(&spec, artifacts)?;
        let id = SessionId(self.next_session);
        let shard = shard_of(id, self.shards.len());
        self.shards[shard]
            .tx
            .send(ShardMsg::Run {
                id,
                spec,
                artifacts: Arc::clone(artifacts),
            })
            .map_err(|_| ServerError::Shutdown)?;
        self.metrics[shard]
            .sessions_started
            .fetch_add(1, Ordering::Relaxed);
        self.next_session += 1;
        self.in_flight += 1;
        Ok(id)
    }

    /// Receives the next finished session, waiting up to `timeout`.
    pub fn next_outcome(&mut self, timeout: Duration) -> Option<SessionOutcome> {
        if self.in_flight == 0 {
            return None;
        }
        if let Some(outcome) = self.ready.pop_front() {
            self.in_flight -= 1;
            return Some(outcome);
        }
        match self.results_rx.recv_timeout(timeout) {
            Ok(batch) => {
                self.ready.extend(batch);
                let outcome = self.ready.pop_front()?;
                self.in_flight -= 1;
                Some(outcome)
            }
            Err(_) => None,
        }
    }

    /// Receives the next finished session if one is already available,
    /// without blocking.
    ///
    /// This is the poll the networked serving plane's IO event loop uses
    /// between socket sweeps: sockets and session outcomes are multiplexed
    /// on one thread, so neither side may park waiting for the other.
    pub fn try_next_outcome(&mut self) -> Option<SessionOutcome> {
        if self.in_flight == 0 {
            return None;
        }
        if let Some(outcome) = self.ready.pop_front() {
            self.in_flight -= 1;
            return Some(outcome);
        }
        match self.results_rx.try_recv() {
            Ok(batch) => {
                self.ready.extend(batch);
                let outcome = self.ready.pop_front()?;
                self.in_flight -= 1;
                Some(outcome)
            }
            Err(_) => None,
        }
    }

    /// Collects every in-flight session's outcome, blocking until all
    /// submitted sessions have finished. A session whose endpoints all block
    /// is detected as stalled by its shard and closed, so every *bounded*
    /// session finishes; a session of a looping protocol submitted without
    /// [`SessionSpec::with_max_steps`] never does, and `drain` will wait on
    /// it indefinitely — bound such sessions or stop them with
    /// [`SessionServer::shutdown`].
    ///
    /// If a shard worker dies (a panic inside session code), its assigned
    /// sessions can never report: once a quiet period passes with some
    /// worker thread gone, the missing outcomes are written off, the
    /// outcomes received so far are returned, and the server turns
    /// *degraded* — further [`SessionServer::submit`]s are refused, since
    /// outcomes could no longer be attributed to submissions reliably.
    /// Callers can detect the loss by comparing the returned length against
    /// their submission count.
    pub fn drain(&mut self) -> Vec<SessionOutcome> {
        let mut outcomes = Vec::with_capacity(self.in_flight);
        while self.in_flight > 0 {
            match self.next_outcome(Duration::from_secs(10)) {
                Some(outcome) => outcomes.push(outcome),
                None if self.shards.iter().any(|s| s.handle.is_finished()) => {
                    // A dead worker never reports again; leaving `in_flight`
                    // nonzero would make every later collect wait for
                    // outcomes that cannot come.
                    self.in_flight = 0;
                    self.degraded = true;
                    break;
                }
                // All workers alive: a long-running session, keep waiting.
                None => {}
            }
        }
        outcomes
    }

    /// Snapshots the per-shard metrics and the merged observability
    /// figures.
    pub fn report(&self) -> ServerReport {
        let mut obs = ObsReport::default();
        for shard_obs in &self.obs {
            shard_obs.merge_into(&mut obs);
        }
        ServerReport {
            shards: self
                .metrics
                .iter()
                .enumerate()
                .map(|(i, m)| m.snapshot(i))
                .collect(),
            obs,
        }
    }

    /// The retained [`Incident`]s across all shards (each one a replayable
    /// counterexample for one monitor violation), oldest first per shard.
    pub fn incidents(&self) -> Vec<Incident> {
        self.obs
            .iter()
            .flat_map(|o| o.incidents.snapshot())
            .collect()
    }

    /// The retained flight-recorder events across all shards, oldest first
    /// per shard.
    pub fn flight_events(&self) -> Vec<FlightEvent> {
        self.obs
            .iter()
            .flat_map(|o| o.recorder.snapshot())
            .collect()
    }

    /// Evacuates every session queued on one shard: each is checkpointed
    /// (per-role pc, value slots, monitor cursor, in-flight frames), encoded
    /// through the wire codec, and returned as a [`MigratedSession`] ready
    /// for [`SessionServer::migrate_session`]. Sessions a checkpoint cannot
    /// carry (tree-walking endpoints) are closed as stalled and report
    /// through the normal outcome stream instead.
    ///
    /// # Errors
    ///
    /// Fails if the shard index is out of range or the worker is gone.
    pub fn drain_shard(&mut self, shard: usize) -> Result<Vec<MigratedSession>> {
        if shard >= self.shards.len() {
            return Err(ServerError::Unsupported {
                reason: format!("shard index {shard} out of range (server has {})", self.shards.len()),
            });
        }
        let (reply_tx, reply_rx) = unbounded();
        self.shards[shard]
            .tx
            .send(ShardMsg::Drain { reply: reply_tx })
            .map_err(|_| ServerError::Shutdown)?;
        let migrated = reply_rx.recv().map_err(|_| ServerError::Shutdown)?;
        // Evacuated sessions will not report outcomes until re-admitted.
        self.in_flight = self.in_flight.saturating_sub(migrated.len());
        Ok(migrated)
    }

    /// Re-admits an evacuated session on the given shard. The checkpoint is
    /// decoded and re-certified against the protocol's compiled tables
    /// *before* the shard sees it: a corrupted or tampered checkpoint is
    /// refused here with the runtime's structured recovery error, and the
    /// target shard never hosts unvalidated state.
    ///
    /// # Errors
    ///
    /// Fails on a bad shard index, an unregistered protocol, a server
    /// already degraded or shut down, or a checkpoint that does not decode
    /// and re-validate ([`ServerError::Runtime`]).
    pub fn migrate_session(&mut self, migrated: MigratedSession, to_shard: usize) -> Result<SessionId> {
        if self.degraded {
            return Err(ServerError::Shutdown);
        }
        if to_shard >= self.shards.len() {
            return Err(ServerError::Unsupported {
                reason: format!(
                    "shard index {to_shard} out of range (server has {})",
                    self.shards.len()
                ),
            });
        }
        let artifacts = self
            .registry
            .get(migrated.protocol)
            .ok_or(ServerError::UnknownProtocol)?;
        let checkpoint = SessionCheckpoint::decode(&migrated.bytes)?;
        if checkpoint.token() != migrated.id.0 {
            return Err(zooid_runtime::RuntimeError::Recovery {
                reason: format!(
                    "checkpoint token {} does not match migrated session id {}",
                    checkpoint.token(),
                    migrated.id.0
                ),
            }
            .into());
        }
        let demoted = checkpoint.into_demoted(&migrated.programs, artifacts.compiled())?;
        self.shards[to_shard]
            .tx
            .send(ShardMsg::Restore {
                id: migrated.id,
                protocol: migrated.protocol,
                demoted,
                artifacts: Arc::clone(artifacts),
            })
            .map_err(|_| ServerError::Shutdown)?;
        self.in_flight += 1;
        Ok(migrated.id)
    }

    /// Stops the worker pool and returns the final metrics. Sessions still
    /// running or queued are closed as stalled (so `shutdown` returns even
    /// when an unbounded session would loop forever); outcomes not collected
    /// with [`SessionServer::drain`] beforehand are discarded.
    pub fn shutdown(mut self) -> ServerReport {
        for shard in &self.shards {
            let _ = shard.tx.send(ShardMsg::Shutdown);
        }
        for shard in self.shards.drain(..) {
            let _ = shard.handle.join();
        }
        self.report()
    }
}

/// Deterministic shard assignment by hashed session id.
fn shard_of(id: SessionId, shards: usize) -> usize {
    let mut hasher = FxHasher::default();
    hasher.write_u64(id.0);
    (hasher.finish() as usize) % shards.max(1)
}

/// Maximum sessions one [`SessionBatch`] holds before the next eligible
/// session opens a new batch.
const BATCH_CAPACITY: usize = 512;
/// Tag bit distinguishing batch indices from slab slots in the run queue.
const BATCH_BIT: u32 = 1 << 31;
/// Cap on the number of distinct batches a shard keeps alive; eligible
/// sessions beyond it fall back to the slab.
const MAX_BATCHES: usize = 64;

/// One columnar batch hosted by a shard, plus the key that decides which
/// sessions may coalesce into it: same protocol, same compiled per-role
/// programs (the layout is cached per program set, so pointer equality is
/// the comparison) and same execution options.
struct ShardBatch {
    protocol: ProtocolId,
    artifacts: Arc<ProtocolArtifacts>,
    layout: Arc<BatchLayout>,
    max_steps: Option<usize>,
    record: bool,
    batch: SessionBatch,
    /// Whether the batch currently has an entry in the run queue (batches
    /// are queued once, not once per member session).
    queued: bool,
}

/// Worker-local observability state: the shard's shared [`ShardObs`] plus
/// the maps only the owning worker touches — admission timestamps for
/// session wall time, the compiled system per protocol for incident
/// capture, and cached per-protocol histogram handles (so the steady path
/// never takes the `ShardObs` per-protocol lock).
struct WorkerObs {
    shared: Arc<ShardObs>,
    admitted: FxHashMap<u64, Instant>,
    systems: FxHashMap<ProtocolId, Arc<CompiledSystem>>,
    proto_wall: FxHashMap<ProtocolId, Arc<Histogram>>,
}

impl WorkerObs {
    fn new(shared: Arc<ShardObs>) -> Self {
        WorkerObs {
            shared,
            admitted: FxHashMap::default(),
            systems: FxHashMap::default(),
            proto_wall: FxHashMap::default(),
        }
    }

    /// Stamps a session's admission: wall-clock start, the compiled system
    /// to replay its incidents against, and the flight-recorder event. The
    /// caller supplies the stamp so one clock read covers a whole admission
    /// sweep.
    fn on_admit(
        &mut self,
        id: SessionId,
        protocol: ProtocolId,
        artifacts: &ProtocolArtifacts,
        batched: bool,
        at: Instant,
    ) {
        self.admitted.insert(id.0, at);
        self.systems
            .entry(protocol)
            .or_insert_with(|| Arc::clone(artifacts.compiled()));
        self.shared.recorder.record(FlightEvent::Admitted {
            session: id.0,
            batched,
        });
    }

    /// Folds a finished session into the histograms, the flight recorder,
    /// and — when its monitor rejected anything — the incident store. The
    /// caller supplies `now` so one clock read covers every outcome of a
    /// quantum.
    fn on_outcome(&mut self, outcome: &SessionOutcome, now: Instant) {
        if let Some(start) = self.admitted.remove(&outcome.id.0) {
            let ns =
                u64::try_from(now.saturating_duration_since(start).as_nanos()).unwrap_or(u64::MAX);
            self.shared.session_wall.record(ns);
            let hist = match self.proto_wall.get(&outcome.protocol) {
                Some(h) => Arc::clone(h),
                None => {
                    let h = self.shared.protocol_wall(outcome.protocol);
                    self.proto_wall.insert(outcome.protocol, Arc::clone(&h));
                    h
                }
            };
            hist.record(ns);
        }
        if outcome.stalled {
            self.shared.recorder.record(FlightEvent::Stalled {
                session: outcome.id.0,
            });
        }
        if !outcome.violations.is_empty() {
            self.shared.recorder.record(FlightEvent::Violation {
                session: outcome.id.0,
            });
            if let Some(system) = self.systems.get(&outcome.protocol) {
                for violation in &outcome.violations {
                    self.shared.incidents.record(Incident::capture(
                        outcome.protocol,
                        outcome.id,
                        system,
                        violation,
                        &outcome.global_trace,
                        INCIDENT_PREFIX_CAP,
                    ));
                }
            }
        }
    }

    /// Records one quantum's per-action cost (elapsed time amortised over
    /// the actions it performed). Quantum granularity keeps the recorder
    /// off the stepping loop: two clock reads per quantum, not per action.
    fn on_quantum(&self, elapsed: Duration, actions: usize) {
        if actions > 0 {
            let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX) / actions as u64;
            self.shared.action_cost.record(ns);
        }
    }
}

/// Places a validated session on its shard: into a matching columnar batch
/// when the spec's endpoints compile to a batch-eligible layout, into the
/// per-session slab otherwise.
#[allow(clippy::too_many_arguments)]
fn admit_session(
    id: SessionId,
    spec: SessionSpec,
    artifacts: Arc<ProtocolArtifacts>,
    slab: &mut Vec<Option<ActiveSession>>,
    free: &mut Vec<u32>,
    run_queue: &mut VecDeque<u32>,
    batches: &mut Vec<ShardBatch>,
    metrics: &ShardMetrics,
    wobs: &mut WorkerObs,
    at: Instant,
) {
    if let Some(layout) = artifacts.batch_layout(&spec.endpoints) {
        let max_steps = spec.options.max_steps;
        let record = spec.options.record_actions;
        let existing = batches.iter().position(|b| {
            b.protocol == spec.protocol
                && Arc::ptr_eq(&b.layout, &layout)
                && b.max_steps == max_steps
                && b.record == record
                && !b.batch.is_full()
        });
        let bi = match existing {
            Some(bi) => Some(bi),
            None if batches.len() < MAX_BATCHES => {
                let batch =
                    SessionBatch::new(Arc::clone(&layout), spec.options.clone(), BATCH_CAPACITY);
                batches.push(ShardBatch {
                    protocol: spec.protocol,
                    artifacts: Arc::clone(&artifacts),
                    layout,
                    max_steps,
                    record,
                    batch,
                    queued: false,
                });
                Some(batches.len() - 1)
            }
            None => None,
        };
        if let Some(bi) = bi {
            let sb = &mut batches[bi];
            let admitted = sb.batch.admit(id.0);
            debug_assert!(admitted, "batch was checked for room");
            metrics.sessions_batched.fetch_add(1, Ordering::Relaxed);
            wobs.on_admit(id, spec.protocol, &artifacts, true, at);
            if !sb.queued {
                sb.queued = true;
                run_queue.push_back(BATCH_BIT | u32::try_from(bi).expect("batch index fits"));
            }
            return;
        }
    }
    // The spec was validated at submission; construction is the shard's
    // job so N shards build N sessions concurrently.
    metrics.sessions_slab.fetch_add(1, Ordering::Relaxed);
    wobs.on_admit(id, spec.protocol, &artifacts, false, at);
    let session = ActiveSession::new(id, spec, &artifacts).expect("spec validated at submission");
    let slot = slab_admit(slab, free, session);
    run_queue.push_back(slot);
}

/// Stores a session in a free slab slot (growing the slab if none is free)
/// and returns the slot index.
fn slab_admit(
    slab: &mut Vec<Option<ActiveSession>>,
    free: &mut Vec<u32>,
    session: ActiveSession,
) -> u32 {
    let slot = match free.pop() {
        Some(slot) => slot,
        None => {
            slab.push(None);
            u32::try_from(slab.len() - 1).expect("slab overflow")
        }
    };
    debug_assert!(slot & BATCH_BIT == 0, "slab slot collides with batch tag");
    slab[slot as usize] = Some(session);
    slot
}

/// Converts a batch-finished session into the server's [`SessionOutcome`].
fn batch_session_outcome(protocol: ProtocolId, outcome: BatchOutcome) -> SessionOutcome {
    SessionOutcome {
        id: SessionId(outcome.token),
        protocol,
        endpoints: outcome
            .endpoints
            .into_iter()
            .map(|report| (report.role.clone(), report))
            .collect(),
        global_trace: outcome.global_trace,
        compliant: outcome.compliant,
        complete: outcome.complete,
        violations: outcome.violations,
        stalled: outcome.stalled,
        quarantined: false,
    }
}

/// Per-session restart bookkeeping under
/// [`QuarantinePolicy::RestartFromCheckpoint`].
#[derive(Default)]
struct RestartState {
    /// The last certified checkpoint: its wire encoding plus the compiled
    /// programs its dense indices refer to (in checkpoint endpoint order).
    /// `None` until the session's first compliant reschedule.
    bytes: Option<(Vec<u8>, Vec<Arc<EndpointProgram>>)>,
    /// Restarts already burned.
    retries: u32,
}

/// Decides whether a quarantined session gets another run, and builds the
/// state it restarts from: the stored last-certified checkpoint when there
/// is one (decoded and re-certified — a checkpoint that fails validation
/// forfeits the restart), else `fallback`'s fresh initial state. Returns
/// `None` when the policy grants no (further) restart.
fn try_restart(
    quarantine: &QuarantineConfig,
    restarts: &mut FxHashMap<u64, RestartState>,
    token: u64,
    fallback: Option<(&zooid_runtime::ExecOptions, &[Arc<EndpointProgram>])>,
    artifacts: &ProtocolArtifacts,
    metrics: &ShardMetrics,
    wobs: &mut WorkerObs,
) -> Option<DemotedSession> {
    let max_retries = quarantine.max_retries();
    if max_retries == 0 {
        return None;
    }
    let state = restarts.entry(token).or_default();
    if state.retries >= max_retries {
        return None;
    }
    let fresh = match &state.bytes {
        Some((bytes, programs)) => SessionCheckpoint::decode(bytes)
            .and_then(|c| c.into_demoted(programs, artifacts.compiled()))
            .ok()?,
        None => {
            let (options, programs) = fallback?;
            let fresh = initial_demoted(token, options.clone(), programs, artifacts.compiled());
            // The initial state becomes the stored restart point, so a
            // session that violates again before its first certified
            // snapshot still gets its remaining retries.
            state.bytes = Some((
                SessionCheckpoint::from_demoted(&fresh).encode().to_vec(),
                programs.to_vec(),
            ));
            fresh
        }
    };
    state.retries += 1;
    metrics.sessions_restarted.fetch_add(1, Ordering::Relaxed);
    wobs.shared.recorder.record(FlightEvent::Restarted {
        session: token,
        retry: state.retries.min(255) as u8,
    });
    Some(fresh)
}

/// Stores a session's freshly taken checkpoint as its restart point. Only
/// called for compliant sessions under `RestartFromCheckpoint`.
fn store_checkpoint(
    restarts: &mut FxHashMap<u64, RestartState>,
    token: u64,
    demoted: &DemotedSession,
) {
    let bytes = SessionCheckpoint::from_demoted(demoted).encode().to_vec();
    let programs = demoted
        .endpoints
        .iter()
        .map(|e| Arc::clone(&e.program))
        .collect();
    restarts.entry(token).or_default().bytes = Some((bytes, programs));
}

/// Evacuates every session in the run queue as an encoded checkpoint:
/// batch members are demoted in place and serialized, slab sessions are
/// checkpointed live (non-destructively, then dropped). Sessions a
/// checkpoint cannot carry — tree-walking endpoints — close as stalled and
/// report through the ordinary outcome stream.
#[allow(clippy::too_many_arguments)]
fn drain_for_migration(
    run_queue: &mut VecDeque<u32>,
    batches: &mut [ShardBatch],
    slab: &mut Vec<Option<ActiveSession>>,
    free: &mut Vec<u32>,
    restarts: &mut FxHashMap<u64, RestartState>,
    metrics: &ShardMetrics,
    wobs: &mut WorkerObs,
    pending: &mut Vec<SessionOutcome>,
) -> Vec<MigratedSession> {
    let now = Instant::now();
    let mut migrated = Vec::new();
    let push = |migrated: &mut Vec<MigratedSession>,
                    restarts: &mut FxHashMap<u64, RestartState>,
                    wobs: &mut WorkerObs,
                    protocol: ProtocolId,
                    demoted: &DemotedSession| {
        restarts.remove(&demoted.token);
        wobs.admitted.remove(&demoted.token);
        migrated.push(MigratedSession {
            id: SessionId(demoted.token),
            protocol,
            bytes: SessionCheckpoint::from_demoted(demoted).encode().to_vec(),
            programs: demoted
                .endpoints
                .iter()
                .map(|e| Arc::clone(&e.program))
                .collect(),
        });
    };
    for entry in run_queue.drain(..) {
        if entry & BATCH_BIT != 0 {
            let sb = &mut batches[(entry & !BATCH_BIT) as usize];
            sb.queued = false;
            let protocol = sb.protocol;
            for demoted in sb.batch.demote_all() {
                push(&mut migrated, restarts, wobs, protocol, &demoted);
            }
        } else {
            let mut session = slab[entry as usize].take().expect("queued slot is occupied");
            free.push(entry);
            match session.checkpoint() {
                Ok(demoted) => push(&mut migrated, restarts, wobs, session.protocol(), &demoted),
                // Tree-walking endpoints have no checkpoint form: close the
                // session as stalled instead of migrating it.
                Err(_) => record_outcome(metrics, wobs, pending, session.close_stalled(), now),
            }
        }
    }
    migrated
}

/// One worker shard: drains its inbox, steps the front of its run queue for
/// one quantum, re-queues or finishes the work item, repeats. On shutdown
/// the sessions still in the run queue are closed as stalled — a session of
/// an unbounded looping protocol would otherwise keep the worker (and the
/// server's `shutdown` join) alive forever.
///
/// A run-queue entry is either a **slab slot** (one heterogeneous or
/// demoted session, stepped by [`ActiveSession::run_quantum`]) or, tagged
/// with [`BATCH_BIT`], a **batch index**: up to [`BATCH_CAPACITY`]
/// homogeneous sessions of one protocol stepped together in `(role, pc)`
/// cohorts over columnar state by [`SessionBatch::run_quantum`]. A batch is
/// one queue entry however many sessions it holds; its quantum budget
/// scales with its live population so batched sessions get the same action
/// budget per pass through the queue as slab sessions do. Sessions the
/// batch cannot carry further (stall, violation, runtime sort mismatch)
/// are demoted: rebuilt as slab sessions mid-flight with their traces,
/// monitor cursor and in-flight frames intact.
///
/// Slab sessions live in a flat `Vec` of slots with a free list, so the run
/// queue is a deque of `u32` indices instead of boxed sessions shuffling
/// through it, a finished session's slot (and the deque capacity) is reused
/// by the next submission, and a quantum touches the session in place — the
/// steady state of a loaded shard allocates nothing per reschedule.
fn shard_worker(
    rx: Receiver<ShardMsg>,
    results: Sender<Vec<SessionOutcome>>,
    metrics: Arc<ShardMetrics>,
    obs: Arc<ShardObs>,
    quantum: usize,
    quarantine: QuarantineConfig,
) {
    let mut wobs = WorkerObs::new(obs);
    let mut slab: Vec<Option<ActiveSession>> = Vec::new();
    let mut free: Vec<u32> = Vec::new();
    let mut batches: Vec<ShardBatch> = Vec::new();
    let mut run_queue: VecDeque<u32> = VecDeque::new();
    // Restart bookkeeping for `RestartFromCheckpoint`: per session, the
    // last certified checkpoint (encoded) with the programs its indices
    // refer to, and how many restarts it has burned. Empty under any other
    // policy (`try_restart` bails before touching it).
    let mut restarts: FxHashMap<u64, RestartState> = FxHashMap::default();
    // Protocol artifacts seen by this shard, for rebuilding restarted slab
    // sessions whose outcome no longer carries an artifacts handle.
    let mut artifacts_by_protocol: FxHashMap<ProtocolId, Arc<ProtocolArtifacts>> =
        FxHashMap::default();
    // Finished sessions are reported in batches: one channel operation per
    // FLUSH_AT outcomes while the shard is loaded, with a freshness bound
    // (FLUSH_EVERY_ITERS main-loop iterations) so outcomes of short
    // sessions are never parked behind a long-running neighbour.
    const FLUSH_AT: usize = 64;
    const FLUSH_EVERY_ITERS: usize = 16;
    let mut pending: Vec<SessionOutcome> = Vec::new();
    let mut iters_since_flush = 0usize;
    loop {
        // Pull new sessions without blocking while there is work. One clock
        // read stamps the whole sweep's admissions.
        let mut shutting_down = false;
        let mut sweep_stamp: Option<Instant> = None;
        loop {
            match rx.try_recv() {
                Ok(ShardMsg::Run {
                    id,
                    spec,
                    artifacts,
                }) => {
                    artifacts_by_protocol
                        .entry(spec.protocol)
                        .or_insert_with(|| Arc::clone(&artifacts));
                    admit_session(
                        id,
                        spec,
                        artifacts,
                        &mut slab,
                        &mut free,
                        &mut run_queue,
                        &mut batches,
                        &metrics,
                        &mut wobs,
                        *sweep_stamp.get_or_insert_with(Instant::now),
                    );
                }
                Ok(ShardMsg::Drain { reply }) => {
                    let migrated = drain_for_migration(
                        &mut run_queue,
                        &mut batches,
                        &mut slab,
                        &mut free,
                        &mut restarts,
                        &metrics,
                        &mut wobs,
                        &mut pending,
                    );
                    let _ = reply.send(migrated);
                }
                Ok(ShardMsg::Restore {
                    id,
                    protocol,
                    demoted,
                    artifacts,
                }) => {
                    metrics.sessions_slab.fetch_add(1, Ordering::Relaxed);
                    wobs.on_admit(
                        id,
                        protocol,
                        &artifacts,
                        false,
                        *sweep_stamp.get_or_insert_with(Instant::now),
                    );
                    artifacts_by_protocol
                        .entry(protocol)
                        .or_insert_with(|| Arc::clone(&artifacts));
                    if quarantine.max_retries() > 0 && demoted.monitor.is_compliant() {
                        store_checkpoint(&mut restarts, id.0, &demoted);
                    }
                    let session = ActiveSession::from_demoted(id, protocol, demoted, &artifacts);
                    let slot = slab_admit(&mut slab, &mut free, session);
                    run_queue.push_back(slot);
                }
                Ok(ShardMsg::Shutdown) => shutting_down = true,
                Err(_) => break,
            }
        }
        if shutting_down {
            let now = Instant::now();
            for entry in run_queue.drain(..) {
                if entry & BATCH_BIT != 0 {
                    let sb = &mut batches[(entry & !BATCH_BIT) as usize];
                    sb.queued = false;
                    for outcome in sb.batch.close_all() {
                        record_outcome(
                            &metrics,
                            &mut wobs,
                            &mut pending,
                            batch_session_outcome(sb.protocol, outcome),
                            now,
                        );
                    }
                } else {
                    let session = slab[entry as usize].take().expect("queued slot is occupied");
                    record_outcome(&metrics, &mut wobs, &mut pending, session.close_stalled(), now);
                }
            }
            // A send failure means the server is gone too: nothing left to
            // report to.
            let _ = flush_outcomes(&results, &mut pending);
            return;
        }
        metrics.record_queue_depth(run_queue.len());
        iters_since_flush += 1;
        if !pending.is_empty()
            && (run_queue.is_empty()
                || pending.len() >= FLUSH_AT
                || iters_since_flush >= FLUSH_EVERY_ITERS)
        {
            iters_since_flush = 0;
            if flush_outcomes(&results, &mut pending).is_err() {
                // The server (and with it every submitter) is gone.
                return;
            }
        }
        let Some(entry) = run_queue.pop_front() else {
            // Idle: park on the inbox. Shutdown arrives as a message on this
            // same channel (and a dropped server disconnects it), so a
            // blocking receive cannot miss it and the worker burns no wakeups.
            match rx.recv() {
                Ok(ShardMsg::Run {
                    id,
                    spec,
                    artifacts,
                }) => {
                    artifacts_by_protocol
                        .entry(spec.protocol)
                        .or_insert_with(|| Arc::clone(&artifacts));
                    admit_session(
                        id,
                        spec,
                        artifacts,
                        &mut slab,
                        &mut free,
                        &mut run_queue,
                        &mut batches,
                        &metrics,
                        &mut wobs,
                        Instant::now(),
                    );
                }
                // The queue is empty: a drain carries nothing away.
                Ok(ShardMsg::Drain { reply }) => {
                    let _ = reply.send(Vec::new());
                }
                Ok(ShardMsg::Restore {
                    id,
                    protocol,
                    demoted,
                    artifacts,
                }) => {
                    metrics.sessions_slab.fetch_add(1, Ordering::Relaxed);
                    wobs.on_admit(id, protocol, &artifacts, false, Instant::now());
                    artifacts_by_protocol
                        .entry(protocol)
                        .or_insert_with(|| Arc::clone(&artifacts));
                    if quarantine.max_retries() > 0 && demoted.monitor.is_compliant() {
                        store_checkpoint(&mut restarts, id.0, &demoted);
                    }
                    let session = ActiveSession::from_demoted(id, protocol, demoted, &artifacts);
                    let slot = slab_admit(&mut slab, &mut free, session);
                    run_queue.push_back(slot);
                }
                Ok(ShardMsg::Shutdown) => {
                    // The queue is empty: nothing to close.
                    return;
                }
                Err(_) => return,
            }
            continue;
        };
        if entry & BATCH_BIT != 0 {
            let bi = (entry & !BATCH_BIT) as usize;
            let sb = &mut batches[bi];
            // The batch is one queue entry standing for its whole live
            // population, so it gets the quantum each member would have
            // gotten on the slab.
            let budget = quantum.saturating_mul(sb.batch.live_count().max(1));
            let started = Instant::now();
            let result = sb.batch.run_quantum(budget);
            let ended = Instant::now();
            wobs.on_quantum(ended.saturating_duration_since(started), result.actions);
            metrics.quanta.fetch_add(1, Ordering::Relaxed);
            metrics
                .actions_executed
                .fetch_add(result.actions as u64, Ordering::Relaxed);
            metrics
                .messages_routed
                .fetch_add(result.sends as u64, Ordering::Relaxed);
            metrics
                .batch_cohorts
                .fetch_add(result.cohorts as u64, Ordering::Relaxed);
            metrics
                .batch_cohort_sessions
                .fetch_add(result.cohort_sessions as u64, Ordering::Relaxed);
            for (bucket, &n) in result.cohort_widths.iter().enumerate() {
                wobs.shared.cohort_width.add_count(bucket, n);
            }
            let protocol = sb.protocol;
            let artifacts = Arc::clone(&sb.artifacts);
            for outcome in result.finished {
                record_outcome(
                    &metrics,
                    &mut wobs,
                    &mut pending,
                    batch_session_outcome(protocol, outcome),
                    ended,
                );
            }
            for demoted in result.demoted {
                metrics.sessions_demoted.fetch_add(1, Ordering::Relaxed);
                wobs.shared.recorder.record(FlightEvent::BatchDemoted {
                    session: demoted.token,
                });
                let token = demoted.token;
                let violations = demoted.monitor.violations().len();
                // Quarantine on the batch path: a session demoted with its
                // violation budget spent is not re-admitted to the slab —
                // it either restarts from its last certified checkpoint
                // (policy permitting) or closes having taken zero further
                // steps.
                let over = quarantine
                    .threshold_for(protocol)
                    .is_some_and(|n| violations >= n as usize);
                if over {
                    let programs: Vec<Arc<EndpointProgram>> = demoted
                        .endpoints
                        .iter()
                        .map(|e| Arc::clone(&e.program))
                        .collect();
                    if let Some(fresh) = try_restart(
                        &quarantine,
                        &mut restarts,
                        token,
                        Some((&demoted.options, &programs)),
                        &artifacts,
                        &metrics,
                        &mut wobs,
                    ) {
                        let session =
                            ActiveSession::from_demoted(SessionId(token), protocol, fresh, &artifacts);
                        let slot = slab_admit(&mut slab, &mut free, session);
                        run_queue.push_back(slot);
                    } else {
                        restarts.remove(&token);
                        let session = ActiveSession::from_demoted(
                            SessionId(token),
                            protocol,
                            demoted,
                            &artifacts,
                        );
                        record_outcome(
                            &metrics,
                            &mut wobs,
                            &mut pending,
                            session.close_quarantined(),
                            ended,
                        );
                    }
                    continue;
                }
                // Checkpoint-on-demote: a compliant session crossing from
                // the batch plane to the slab is a natural restart point.
                if quarantine.max_retries() > 0 && demoted.monitor.is_compliant() {
                    store_checkpoint(&mut restarts, token, &demoted);
                }
                let session =
                    ActiveSession::from_demoted(SessionId(token), protocol, demoted, &artifacts);
                let slot = slab_admit(&mut slab, &mut free, session);
                run_queue.push_back(slot);
            }
            let sb = &mut batches[bi];
            if sb.batch.is_empty() {
                sb.queued = false;
            } else {
                run_queue.push_back(entry);
            }
            continue;
        }
        let session = slab[entry as usize]
            .as_mut()
            .expect("queued slot is occupied");
        let threshold = quarantine.threshold_for(session.protocol());
        let started = Instant::now();
        let result = session.run_quantum(quantum, threshold);
        let ended = Instant::now();
        wobs.on_quantum(ended.saturating_duration_since(started), result.actions);
        metrics.quanta.fetch_add(1, Ordering::Relaxed);
        metrics
            .actions_executed
            .fetch_add(result.actions as u64, Ordering::Relaxed);
        metrics
            .messages_routed
            .fetch_add(result.sends as u64, Ordering::Relaxed);
        match result.outcome {
            Some(outcome) => {
                if outcome.quarantined {
                    // A restart re-uses the session's slab slot; only when
                    // the policy grants none does the outcome report out.
                    let restarted = artifacts_by_protocol
                        .get(&outcome.protocol)
                        .map(Arc::clone)
                        .and_then(|artifacts| {
                            let fresh = try_restart(
                                &quarantine,
                                &mut restarts,
                                outcome.id.0,
                                None,
                                &artifacts,
                                &metrics,
                                &mut wobs,
                            )?;
                            Some(ActiveSession::from_demoted(
                                outcome.id,
                                outcome.protocol,
                                fresh,
                                &artifacts,
                            ))
                        });
                    if let Some(session) = restarted {
                        slab[entry as usize] = Some(session);
                        run_queue.push_back(entry);
                        continue;
                    }
                }
                restarts.remove(&outcome.id.0);
                slab[entry as usize] = None;
                free.push(entry);
                record_outcome(&metrics, &mut wobs, &mut pending, outcome, ended);
            }
            None => {
                // Group commit of the restart point: once per reschedule,
                // not per action — and only while the monitor still
                // certifies the state being saved.
                if quarantine.max_retries() > 0 && !session.is_violating() {
                    let token = session.id().0;
                    if let Ok(demoted) = session.checkpoint() {
                        store_checkpoint(&mut restarts, token, &demoted);
                    }
                }
                run_queue.push_back(entry);
            }
        }
    }
}

/// Counts a finished session in the shard metrics, folds it into the
/// observability plane (wall time, flight events, incident capture — every
/// execution path funnels through here: slab, batch-finished,
/// demoted-then-slab, and shutdown close), and buffers its outcome for the
/// next batched flush.
fn record_outcome(
    metrics: &ShardMetrics,
    wobs: &mut WorkerObs,
    pending: &mut Vec<SessionOutcome>,
    outcome: SessionOutcome,
    now: Instant,
) {
    if outcome.stalled {
        metrics.sessions_stalled.fetch_add(1, Ordering::Relaxed);
    } else {
        metrics.sessions_completed.fetch_add(1, Ordering::Relaxed);
    }
    if !outcome.compliant {
        metrics.sessions_violated.fetch_add(1, Ordering::Relaxed);
    }
    if outcome.quarantined {
        metrics.sessions_quarantined.fetch_add(1, Ordering::Relaxed);
        wobs.shared.recorder.record(FlightEvent::Quarantined {
            session: outcome.id.0,
        });
        wobs.shared.quarantined_for(outcome.protocol);
    }
    wobs.on_outcome(&outcome, now);
    pending.push(outcome);
}

/// Sends the buffered outcomes as one batch. An error means the server side
/// of the channel is gone.
fn flush_outcomes(
    results: &Sender<Vec<SessionOutcome>>,
    pending: &mut Vec<SessionOutcome>,
) -> std::result::Result<(), ()> {
    if pending.is_empty() {
        return Ok(());
    }
    results.send(std::mem::take(pending)).map_err(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::skeleton_endpoints;
    use zooid_dsl::Protocol;
    use zooid_mpst::generators;
    use zooid_runtime::EndpointStatus;

    fn ring_registry() -> (ProtocolRegistry, ProtocolId) {
        let mut registry = ProtocolRegistry::new();
        let id = registry
            .register(Protocol::new("ring", generators::ring3()).unwrap())
            .unwrap();
        (registry, id)
    }

    #[test]
    fn a_thousand_sessions_complete_on_two_shards() {
        let (registry, ring) = ring_registry();
        let endpoints = skeleton_endpoints(registry.get(ring).unwrap().protocol()).unwrap();
        let mut server = SessionServer::start(registry, ServerConfig::with_shards(2));
        for _ in 0..1_000 {
            server.submit(SessionSpec::new(ring, endpoints.clone())).unwrap();
        }
        let outcomes = server.drain();
        assert_eq!(outcomes.len(), 1_000);
        assert!(outcomes.iter().all(|o| o.all_finished_and_compliant()));
        let report = server.shutdown();
        assert_eq!(report.sessions_started(), 1_000);
        assert_eq!(report.sessions_completed(), 1_000);
        assert_eq!(report.sessions_violated(), 0);
        assert_eq!(report.sessions_stalled(), 0);
        // The ring exchanges 3 messages per session.
        assert_eq!(report.messages_routed(), 3_000);
        assert_eq!(report.actions_executed(), 6_000);
        // Work is spread over both shards.
        assert!(report.shards.iter().all(|s| s.sessions_started > 0));
    }

    #[test]
    fn tiny_quanta_interleave_sessions_instead_of_running_them_to_death() {
        let (registry, ring) = ring_registry();
        let endpoints = skeleton_endpoints(registry.get(ring).unwrap().protocol()).unwrap();
        let config = ServerConfig {
            shards: 1,
            quantum: 1,
            ..ServerConfig::default()
        };
        let mut server = SessionServer::start(registry, config);
        for _ in 0..50 {
            server.submit(SessionSpec::new(ring, endpoints.clone())).unwrap();
        }
        let outcomes = server.drain();
        assert_eq!(outcomes.len(), 50);
        assert!(outcomes.iter().all(|o| o.all_finished_and_compliant()));
        let report = server.shutdown();
        // The 50 homogeneous ring sessions coalesce into one columnar batch
        // (one run-queue entry), whose budget scales with its population:
        // quantum 1 × 50 live sessions. A ring session takes 6 actions, so
        // the batch needs several bounded quanta rather than one
        // run-to-death pass.
        assert_eq!(report.sessions_batched(), 50, "{report}");
        assert_eq!(report.sessions_slab(), 0, "{report}");
        assert!(report.shards[0].quanta >= 2, "{report}");
        // Cohort stepping amortises per-instruction work over the lockstep
        // population: cohorts span many sessions.
        assert!(report.mean_cohort_width() > 8.0, "{report}");
    }

    #[test]
    fn homogeneous_sessions_batch_and_agree_with_slab_accounting() {
        let (registry, ring) = ring_registry();
        let endpoints = skeleton_endpoints(registry.get(ring).unwrap().protocol()).unwrap();
        let mut server = SessionServer::start(registry, ServerConfig::with_shards(1));
        for _ in 0..200 {
            server.submit(SessionSpec::new(ring, endpoints.clone())).unwrap();
        }
        let outcomes = server.drain();
        assert_eq!(outcomes.len(), 200);
        assert!(outcomes.iter().all(|o| o.all_finished_and_compliant()));
        // Every session carries its full global trace out of the batch.
        assert!(outcomes.iter().all(|o| o.messages_exchanged() == 3));
        let report = server.shutdown();
        assert_eq!(report.sessions_batched(), 200, "{report}");
        assert_eq!(report.sessions_slab(), 0, "{report}");
        assert_eq!(report.sessions_demoted(), 0, "{report}");
        // Action accounting matches the slab's: 3 sends + 3 receives each.
        assert_eq!(report.messages_routed(), 600);
        assert_eq!(report.actions_executed(), 1_200);
        assert!(report.mean_cohort_width() > 1.0, "{report}");
    }

    #[test]
    fn blocked_batch_sessions_demote_to_slab_and_close_as_stalled() {
        // Pipeline with a step limit: the upstream endpoints hit their
        // limits inside the batch, the tail receiver then blocks forever,
        // and the batch's no-progress pass demotes the session to the slab,
        // which closes it as stalled — same verdicts the slab produces when
        // it runs the session from the start.
        let mut registry = ProtocolRegistry::new();
        let id = registry
            .register(Protocol::new("pipeline", generators::pipeline()).unwrap())
            .unwrap();
        let endpoints = skeleton_endpoints(registry.get(id).unwrap().protocol()).unwrap();
        let mut server = SessionServer::start(registry, ServerConfig::with_shards(1));
        for _ in 0..8 {
            server
                .submit(SessionSpec::new(id, endpoints.clone()).with_max_steps(10))
                .unwrap();
        }
        let outcomes = server.drain();
        assert_eq!(outcomes.len(), 8);
        for outcome in &outcomes {
            assert!(outcome.compliant, "{:?}", outcome.violations);
            assert!(!outcome.complete);
            assert!(outcome
                .endpoints
                .values()
                .any(|r| r.status == EndpointStatus::StepLimitReached));
        }
        let report = server.shutdown();
        assert_eq!(report.sessions_batched(), 8, "{report}");
        assert_eq!(report.sessions_demoted(), 8, "{report}");
        assert_eq!(report.sessions_stalled(), 8, "{report}");
    }

    #[test]
    fn step_limited_recursive_sessions_finish_with_step_limit_status() {
        let mut registry = ProtocolRegistry::new();
        let id = registry
            .register(Protocol::new("pipeline", generators::pipeline()).unwrap())
            .unwrap();
        let endpoints = skeleton_endpoints(registry.get(id).unwrap().protocol()).unwrap();
        let mut server = SessionServer::start(registry, ServerConfig::with_shards(2));
        server
            .submit(SessionSpec::new(id, endpoints).with_max_steps(10))
            .unwrap();
        let outcomes = server.drain();
        assert_eq!(outcomes.len(), 1);
        let outcome = &outcomes[0];
        assert!(outcome.compliant, "{:?}", outcome.violations);
        assert!(!outcome.complete);
        // Alice (the sender) certainly hits her limit; the others either hit
        // theirs or stall waiting for the eleventh message.
        assert!(outcome.endpoints.values().any(|r| r.status == EndpointStatus::StepLimitReached));
        server.shutdown();
    }

    #[test]
    fn shutdown_closes_unbounded_sessions_as_stalled_instead_of_hanging() {
        let mut registry = ProtocolRegistry::new();
        let id = registry
            .register(Protocol::new("pipeline", generators::pipeline()).unwrap())
            .unwrap();
        let endpoints = skeleton_endpoints(registry.get(id).unwrap().protocol()).unwrap();
        let mut server = SessionServer::start(registry, ServerConfig::with_shards(1));
        // No step limit: the session loops forever and is re-queued after
        // every quantum. Shutdown must still return, closing it as stalled.
        server.submit(SessionSpec::new(id, endpoints)).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let report = server.shutdown();
        assert_eq!(report.sessions_started(), 1);
        assert_eq!(report.sessions_stalled(), 1, "{report}");
        assert_eq!(report.sessions_completed(), 0, "{report}");
        assert!(report.actions_executed() > 0, "the session did run");
    }

    #[test]
    fn bad_specs_are_rejected_at_submission() {
        let (registry, ring) = ring_registry();
        let endpoints = skeleton_endpoints(registry.get(ring).unwrap().protocol()).unwrap();
        let mut server = SessionServer::start(registry, ServerConfig::with_shards(1));
        // Missing one endpoint.
        let missing = SessionSpec::new(ring, endpoints[..2].to_vec());
        assert!(matches!(
            server.submit(missing),
            Err(ServerError::MissingEndpoint { .. })
        ));
        // Duplicated endpoint.
        let mut doubled = endpoints.clone();
        doubled.push(endpoints[0].clone());
        assert!(matches!(
            server.submit(SessionSpec::new(ring, doubled)),
            Err(ServerError::UnexpectedEndpoint { .. })
        ));
        // Unknown protocol id.
        assert!(matches!(
            server.submit(SessionSpec::new(ProtocolId(99), endpoints)),
            Err(ServerError::UnknownProtocol)
        ));
        server.shutdown();
    }

    #[test]
    fn sessions_hash_to_stable_shards() {
        assert_eq!(shard_of(SessionId(7), 4), shard_of(SessionId(7), 4));
        assert_eq!(shard_of(SessionId(7), 1), 0);
        // Ids spread over shards (not all in one bucket).
        let buckets: std::collections::BTreeSet<usize> =
            (0..64).map(|i| shard_of(SessionId(i), 4)).collect();
        assert!(buckets.len() > 1);
    }
}
