//! The observability plane: latency histograms, a flight recorder, and
//! replayable incident records.
//!
//! The paper's runtime monitor turns protocol violations into a verdict
//! bit; this module turns the *serving stack around that monitor* into
//! something diagnosable. Three hermetic, allocation-light substrates:
//!
//! * [`Histogram`] — a fixed log2-bucket atomic histogram (no deps, no
//!   unsafe, no locks) with lossless [`HistogramSnapshot::merge`] and
//!   `p50/p90/p99/max` accessors. Shards record session wall-time,
//!   per-action step cost and batch cohort widths into it; the networked
//!   plane records IO-loop pass durations.
//! * [`FlightRecorder`] — a bounded ring of dense structured events
//!   ([`FlightEvent`], packed to one `u64` each, interned-id style), written
//!   lock-free by the owning worker and snapshottable at any time without
//!   stopping it.
//! * [`Incident`] — the structured record of one [`MonitorViolation`]: the
//!   protocol, session, offending role and action, the monitor cursor at
//!   violation time, and a bounded *replayable* prefix of the compliant
//!   trace. [`Incident::replays_violation`] re-certifies the violation
//!   against the [`CompiledSystem`] — detection produces an auditable
//!   counterexample, not just a boolean. A capped [`IncidentStore`] retains
//!   the most recent records per shard.
//!
//! [`StatsSnapshot`] bundles the aggregated reports, histogram snapshots
//! and recent incident summaries into a codec [`Value`] so a live
//! [`crate::NetServer`] can answer `MuxFrame::Stats` introspection frames
//! over the wire (see [`crate::NetClient::fetch_stats`]).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use zooid_cfsm::{CompiledSystem, MonitorCursor};
use zooid_mpst::{Action, Role, Trace};
use zooid_proc::Value;
use zooid_runtime::monitor::MonitorViolation;
use zooid_runtime::wire::RejectCode;

use crate::metrics::{NetReport, RejectCounts, ServerReport, ShardReport};
use crate::registry::ProtocolId;
use crate::session::SessionId;

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `k ≥ 1`
/// holds `[2^(k-1), 2^k - 1]`, and the last bucket absorbs everything up to
/// `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Default capacity of a shard's [`FlightRecorder`] ring.
pub const FLIGHT_CAPACITY: usize = 1024;

/// Default cap on retained [`Incident`]s per shard.
pub const INCIDENT_CAPACITY: usize = 64;

/// Default bound on an incident's replayable trace prefix.
pub const INCIDENT_PREFIX_CAP: usize = 256;

/// Index of the log2 bucket holding `value`.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive `(lower, upper)` bounds of a bucket.
pub fn bucket_bounds(bucket: usize) -> (u64, u64) {
    match bucket {
        0 => (0, 0),
        b if b >= HISTOGRAM_BUCKETS - 1 => (1 << (HISTOGRAM_BUCKETS - 2), u64::MAX),
        b => (1 << (b - 1), (1 << b) - 1),
    }
}

/// A fixed log2-bucket histogram updated lock-free.
///
/// Writers call [`Histogram::record`] (one relaxed `fetch_add` plus a
/// `fetch_max` for the exact maximum); readers take a [`HistogramSnapshot`]
/// at any time. No allocation after construction, no locks, no unsafe —
/// cheap enough to sit on the serving data path.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Merges `n` observations that were already bucketed elsewhere (the
    /// batch executor aggregates cohort widths into a small local array per
    /// quantum; the shard folds it in here with the same bucket mapping).
    #[inline]
    pub fn add_count(&self, bucket: usize, n: u64) {
        if n > 0 {
            let b = bucket.min(HISTOGRAM_BUCKETS - 1);
            self.buckets[b].fetch_add(n, Ordering::Relaxed);
            // The exact value is gone; the bucket's upper bound keeps `max`
            // an upper bound of every recorded observation.
            self.max.fetch_max(bucket_bounds(b).1, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|b| self.buckets[b].load(Ordering::Relaxed)),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain copy of a [`Histogram`]'s counters: mergeable, comparable, and
/// the unit the reports carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; HISTOGRAM_BUCKETS],
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The per-bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Folds another snapshot in, losslessly: bucket counts add, the
    /// maximum is the larger of the two. Merging is commutative and
    /// associative (checked by the property suite).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` (`0 < q ≤ 1`): the upper bound of the
    /// bucket containing the `ceil(q·count)`-th smallest observation,
    /// capped at the exact recorded maximum. Returns 0 for an empty
    /// snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(b).1.min(self.max);
            }
        }
        self.max
    }

    /// The median (bucket-resolution, see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

impl fmt::Display for HistogramSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p50={} p90={} p99={} max={} (n={})",
            self.p50(),
            self.p90(),
            self.p99(),
            self.max(),
            self.count()
        )
    }
}

/// Why the networked plane closed a connection (flight-recorder vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum CloseReason {
    /// The peer closed its write side with no session left in flight.
    PeerClosed = 1,
    /// Hostile or malformed framing; the connection was cut.
    BadFrame = 2,
    /// The peer stopped reading and its write buffer hit the cap.
    WriteStalled = 3,
    /// The server shut down while the connection was live.
    Shutdown = 4,
    /// A rejected connection's linger window expired.
    LingerExpired = 5,
    /// The connection never sent a decodable frame within the idle timeout.
    Idle = 6,
    /// A session hosted on the connection was quarantined and the server's
    /// policy tears the owning connection down.
    Quarantined = 7,
}

impl CloseReason {
    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => CloseReason::PeerClosed,
            2 => CloseReason::BadFrame,
            3 => CloseReason::WriteStalled,
            4 => CloseReason::Shutdown,
            5 => CloseReason::LingerExpired,
            6 => CloseReason::Idle,
            7 => CloseReason::Quarantined,
            _ => return None,
        })
    }
}

impl fmt::Display for CloseReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CloseReason::PeerClosed => "peer-closed",
            CloseReason::BadFrame => "bad-frame",
            CloseReason::WriteStalled => "write-stalled",
            CloseReason::Shutdown => "shutdown",
            CloseReason::LingerExpired => "linger-expired",
            CloseReason::Idle => "idle",
            CloseReason::Quarantined => "quarantined",
        })
    }
}

const EV_ADMITTED: u8 = 1;
const EV_BATCH_DEMOTED: u8 = 2;
const EV_STALLED: u8 = 3;
const EV_VIOLATION: u8 = 4;
const EV_REJECTED: u8 = 5;
const EV_CONN_CLOSED: u8 = 6;
const EV_QUARANTINED: u8 = 7;
const EV_RESTARTED: u8 = 8;

const PAYLOAD_MASK: u64 = (1 << 48) - 1;

fn reject_code_from_u8(v: u8) -> Option<RejectCode> {
    Some(match v {
        1 => RejectCode::UnknownProtocol,
        2 => RejectCode::ConnectionLimit,
        3 => RejectCode::SessionLimit,
        4 => RejectCode::Overloaded,
        5 => RejectCode::BadFrame,
        6 => RejectCode::ShuttingDown,
        7 => RejectCode::Quarantined,
        8 => RejectCode::Banned,
        _ => return None,
    })
}

/// One structured flight-recorder event.
///
/// Events pack to a single `u64` — `kind:8 | code:8 | payload:48` — in the
/// dense-id style of the compiled skeleton/payload tables: session and
/// client ids are dense counters, so 48 bits never truncate in practice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEvent {
    /// A session entered the shard (`batched` = columnar executor).
    Admitted {
        /// The session's dense id (low 48 bits).
        session: u64,
        /// Whether it joined a columnar batch (vs. the slab).
        batched: bool,
    },
    /// A session was pulled out of its batch mid-flight for the slab.
    BatchDemoted {
        /// The session's dense id.
        session: u64,
    },
    /// A session was closed as stalled.
    Stalled {
        /// The session's dense id.
        session: u64,
    },
    /// A session finished with at least one monitor violation (an
    /// [`Incident`] was captured alongside).
    Violation {
        /// The session's dense id.
        session: u64,
    },
    /// The networked plane refused an `Open` (or a whole connection).
    Rejected {
        /// The client-chosen session id of the refused `Open` (0 for
        /// connection-level rejections).
        session: u64,
        /// The machine-readable reason sent to the client.
        code: RejectCode,
    },
    /// The networked plane closed a connection.
    ConnClosed {
        /// The connection's dense client id.
        client: u64,
        /// Why it was closed.
        reason: CloseReason,
    },
    /// The quarantine policy halted a session at its first rejected action.
    Quarantined {
        /// The session's dense id.
        session: u64,
    },
    /// A quarantined session was re-admitted from its last certified
    /// checkpoint ([`crate::QuarantinePolicy::RestartFromCheckpoint`]).
    Restarted {
        /// The session's dense id.
        session: u64,
        /// Which retry this was (1-based, saturating at 255).
        retry: u8,
    },
}

impl FlightEvent {
    fn pack(self) -> u64 {
        let (kind, code, payload) = match self {
            FlightEvent::Admitted { session, batched } => (EV_ADMITTED, batched as u8, session),
            FlightEvent::BatchDemoted { session } => (EV_BATCH_DEMOTED, 0, session),
            FlightEvent::Stalled { session } => (EV_STALLED, 0, session),
            FlightEvent::Violation { session } => (EV_VIOLATION, 0, session),
            FlightEvent::Rejected { session, code } => (EV_REJECTED, code as u8, session),
            FlightEvent::ConnClosed { client, reason } => (EV_CONN_CLOSED, reason as u8, client),
            FlightEvent::Quarantined { session } => (EV_QUARANTINED, 0, session),
            FlightEvent::Restarted { session, retry } => (EV_RESTARTED, retry, session),
        };
        (u64::from(kind) << 56) | (u64::from(code) << 48) | (payload & PAYLOAD_MASK)
    }

    fn unpack(raw: u64) -> Option<FlightEvent> {
        let kind = (raw >> 56) as u8;
        let code = (raw >> 48) as u8;
        let payload = raw & PAYLOAD_MASK;
        Some(match kind {
            EV_ADMITTED => FlightEvent::Admitted {
                session: payload,
                batched: code != 0,
            },
            EV_BATCH_DEMOTED => FlightEvent::BatchDemoted { session: payload },
            EV_STALLED => FlightEvent::Stalled { session: payload },
            EV_VIOLATION => FlightEvent::Violation { session: payload },
            EV_REJECTED => FlightEvent::Rejected {
                session: payload,
                code: reject_code_from_u8(code)?,
            },
            EV_CONN_CLOSED => FlightEvent::ConnClosed {
                client: payload,
                reason: CloseReason::from_u8(code)?,
            },
            EV_QUARANTINED => FlightEvent::Quarantined { session: payload },
            EV_RESTARTED => FlightEvent::Restarted {
                session: payload,
                retry: code,
            },
            _ => return None,
        })
    }
}

/// A bounded lock-free ring of [`FlightEvent`]s.
///
/// The owning worker records with one relaxed counter bump and one release
/// store; any thread can [`FlightRecorder::snapshot`] without stopping it.
/// A snapshot racing a concurrent write may miss the slot being overwritten
/// at that instant — the recorder trades that last-event fuzziness for a
/// data path with no locks and no allocation.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<AtomicU64>,
    next: AtomicU64,
}

impl FlightRecorder {
    /// A ring holding the last `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        let mut slots = Vec::with_capacity(cap);
        slots.resize_with(cap, || AtomicU64::new(0));
        FlightRecorder {
            slots,
            next: AtomicU64::new(0),
        }
    }

    /// Number of ring slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (recorded − capacity have been
    /// overwritten).
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Acquire)
    }

    /// Appends one event, overwriting the oldest once the ring is full.
    #[inline]
    pub fn record(&self, event: FlightEvent) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        self.slots[slot].store(event.pack(), Ordering::Release);
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let end = self.next.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = end.saturating_sub(cap);
        let mut out = Vec::with_capacity((end - start) as usize);
        for seq in start..end {
            let raw = self.slots[(seq % cap) as usize].load(Ordering::Acquire);
            // 0 = never written (a racing writer claimed the sequence number
            // but has not stored yet); unknown kinds are skipped the same way.
            if let Some(event) = FlightEvent::unpack(raw) {
                out.push(event);
            }
        }
        out
    }
}

/// The structured record of one monitor violation: who, what, where, and a
/// bounded replayable counterexample prefix.
#[derive(Debug, Clone)]
pub struct Incident {
    /// The protocol the session ran.
    pub protocol: ProtocolId,
    /// The violating session.
    pub session: SessionId,
    /// The participant that performed the violating action (its subject).
    pub role: Role,
    /// The action the protocol does not allow.
    pub action: Action,
    /// Zero-based index of the action in the session's observation stream.
    pub position: usize,
    /// Compliant actions accepted before the violation.
    pub trace_len: usize,
    /// The monitor cursor reached by replaying [`Incident::trace_prefix`]
    /// from the initial cursor — the violation-time cursor when the prefix
    /// is complete (`truncated == false`).
    pub cursor: MonitorCursor,
    /// The replayable prefix of the compliant trace leading to the
    /// violation (bounded; see [`Incident::truncated`]).
    pub trace_prefix: Trace,
    /// `true` when the prefix is incomplete: the compliant trace was longer
    /// than the bound, or trace recording was off for the session.
    pub truncated: bool,
}

impl Incident {
    /// Captures an incident from a finished session's violation: clips the
    /// compliant trace to the violation point (bounded by `prefix_cap`) and
    /// replays it through `system` to reconstruct the violation-time
    /// monitor cursor.
    pub fn capture(
        protocol: ProtocolId,
        session: SessionId,
        system: &CompiledSystem,
        violation: &MonitorViolation,
        global_trace: &Trace,
        prefix_cap: usize,
    ) -> Incident {
        let take = violation
            .trace_len
            .min(global_trace.len())
            .min(prefix_cap);
        let mut cursor = system.monitor_cursor();
        let mut prefix = Trace::empty();
        for action in &global_trace.actions()[..take] {
            let accepted = system.observe(&mut cursor, action);
            debug_assert!(accepted, "the compliant trace must replay: {action}");
            prefix.push(action.clone());
        }
        Incident {
            protocol,
            session,
            role: violation.action.subject().clone(),
            action: violation.action.clone(),
            position: violation.position,
            trace_len: violation.trace_len,
            cursor,
            trace_prefix: prefix,
            truncated: take < violation.trace_len,
        }
    }

    /// Re-certifies the violation: replays the recorded prefix through
    /// `system` from the initial cursor and checks that every prefix action
    /// is accepted, the cursor lands exactly on [`Incident::cursor`], and
    /// the recorded action is then rejected. Returns `false` for truncated
    /// prefixes (the counterexample is not fully replayable).
    pub fn replays_violation(&self, system: &CompiledSystem) -> bool {
        if self.truncated {
            return false;
        }
        let mut cursor = system.monitor_cursor();
        for action in self.trace_prefix.actions() {
            if !system.observe(&mut cursor, action) {
                return false;
            }
        }
        cursor == self.cursor && !system.observe(&mut cursor, &self.action)
    }

    /// The wire-portable summary of this incident.
    pub fn summary(&self) -> IncidentSummary {
        IncidentSummary {
            protocol: self.protocol.index() as u32,
            session: self.session.0,
            role: self.role.to_string(),
            action: self.action.to_string(),
            position: self.position as u64,
            trace_len: self.trace_len as u64,
            prefix_len: self.trace_prefix.len() as u64,
            truncated: self.truncated,
        }
    }
}

/// A capped store of the most recent [`Incident`]s.
///
/// Violations are exceptional, so a mutex-guarded deque is fine here: the
/// hot path never touches it. The total-recorded counter keeps counting
/// past the cap.
#[derive(Debug)]
pub struct IncidentStore {
    cap: usize,
    recorded: AtomicU64,
    inner: Mutex<VecDeque<Incident>>,
}

impl IncidentStore {
    /// A store retaining the `cap` most recent incidents (at least 1).
    pub fn new(cap: usize) -> Self {
        IncidentStore {
            cap: cap.max(1),
            recorded: AtomicU64::new(0),
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Appends an incident, evicting the oldest beyond the cap.
    pub fn record(&self, incident: Incident) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.len() == self.cap {
            inner.pop_front();
        }
        inner.push_back(incident);
    }

    /// Total incidents ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// The retained incidents, oldest first.
    pub fn snapshot(&self) -> Vec<Incident> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }
}

/// One shard's observability state: histograms, flight recorder, incident
/// store, and per-protocol wall-time histograms.
#[derive(Debug)]
pub struct ShardObs {
    /// Session wall time, admission → outcome, in nanoseconds.
    pub session_wall: Histogram,
    /// Per-action step cost in nanoseconds (quantum elapsed ÷ actions).
    pub action_cost: Histogram,
    /// Batch cohort widths (sessions per `(role, pc)` cohort).
    pub cohort_width: Histogram,
    /// The shard's event ring.
    pub recorder: FlightRecorder,
    /// The shard's retained incidents.
    pub incidents: IncidentStore,
    per_protocol: Mutex<Vec<(ProtocolId, Arc<Histogram>)>>,
    quarantined: Mutex<Vec<(ProtocolId, u64)>>,
}

impl Default for ShardObs {
    fn default() -> Self {
        ShardObs::new()
    }
}

impl ShardObs {
    /// Fresh observability state with the default capacities.
    pub fn new() -> Self {
        ShardObs {
            session_wall: Histogram::new(),
            action_cost: Histogram::new(),
            cohort_width: Histogram::new(),
            recorder: FlightRecorder::new(FLIGHT_CAPACITY),
            incidents: IncidentStore::new(INCIDENT_CAPACITY),
            per_protocol: Mutex::new(Vec::new()),
            quarantined: Mutex::new(Vec::new()),
        }
    }

    /// The session wall-time histogram of one protocol (created on first
    /// sighting; workers cache the `Arc`, so the lock is off the steady
    /// path).
    pub fn protocol_wall(&self, protocol: ProtocolId) -> Arc<Histogram> {
        let mut map = self.per_protocol.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, h)) = map.iter().find(|(p, _)| *p == protocol) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        map.push((protocol, Arc::clone(&h)));
        h
    }

    /// Bumps the quarantine counter of one protocol (created on first
    /// sighting). Quarantines are rare, so this takes the lock every time
    /// rather than handing out cached handles.
    pub fn quarantined_for(&self, protocol: ProtocolId) {
        let mut map = self.quarantined.lock().unwrap_or_else(|e| e.into_inner());
        match map.iter_mut().find(|(p, _)| *p == protocol) {
            Some((_, n)) => *n += 1,
            None => map.push((protocol, 1)),
        }
    }

    /// Folds this shard's state into an aggregated [`ObsReport`].
    pub fn merge_into(&self, report: &mut ObsReport) {
        report.session_wall_ns.merge(&self.session_wall.snapshot());
        report.action_cost_ns.merge(&self.action_cost.snapshot());
        report.cohort_width.merge(&self.cohort_width.snapshot());
        report.incidents_recorded += self.incidents.recorded();
        report.incidents_held += self.incidents.snapshot().len() as u64;
        report.flight_events += self.recorder.recorded();
        let map = self.per_protocol.lock().unwrap_or_else(|e| e.into_inner());
        for (protocol, hist) in map.iter() {
            let snap = hist.snapshot();
            let id = protocol.index() as u32;
            match report.per_protocol_wall_ns.iter_mut().find(|(p, _)| *p == id) {
                Some((_, existing)) => existing.merge(&snap),
                None => report.per_protocol_wall_ns.push((id, snap)),
            }
        }
        report.per_protocol_wall_ns.sort_by_key(|(p, _)| *p);
        let quarantined = self.quarantined.lock().unwrap_or_else(|e| e.into_inner());
        for (protocol, count) in quarantined.iter() {
            let id = protocol.index() as u32;
            match report
                .per_protocol_quarantined
                .iter_mut()
                .find(|(p, _)| *p == id)
            {
                Some((_, existing)) => *existing += count,
                None => report.per_protocol_quarantined.push((id, *count)),
            }
        }
        report.per_protocol_quarantined.sort_by_key(|(p, _)| *p);
    }
}

/// Aggregated observability figures, carried inside [`ServerReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsReport {
    /// Session wall time admission → outcome, ns, merged across shards.
    pub session_wall_ns: HistogramSnapshot,
    /// Per-action step cost, ns, merged across shards.
    pub action_cost_ns: HistogramSnapshot,
    /// Batch cohort widths, merged across shards.
    pub cohort_width: HistogramSnapshot,
    /// Session wall time per protocol (dense registry index order).
    pub per_protocol_wall_ns: Vec<(u32, HistogramSnapshot)>,
    /// Sessions quarantined per protocol (dense registry index order);
    /// empty when no session was ever quarantined.
    pub per_protocol_quarantined: Vec<(u32, u64)>,
    /// Incidents captured across all shards (including evicted ones).
    pub incidents_recorded: u64,
    /// Incidents currently retained and fetchable.
    pub incidents_held: u64,
    /// Flight-recorder events ever recorded across all shards.
    pub flight_events: u64,
}

impl fmt::Display for ObsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  latency: session wall ns {}", self.session_wall_ns)?;
        writeln!(f, "  latency: per-action ns {}", self.action_cost_ns)?;
        writeln!(f, "  batching: cohort width {}", self.cohort_width)?;
        writeln!(
            f,
            "  incidents: {} recorded, {} held; {} flight events",
            self.incidents_recorded, self.incidents_held, self.flight_events
        )?;
        for (protocol, count) in &self.per_protocol_quarantined {
            writeln!(f, "  quarantine: protocol #{protocol} x{count}")?;
        }
        Ok(())
    }
}

/// The wire-portable summary of an [`Incident`]: interned ids flattened to
/// integers and display strings — everything an operator needs to locate
/// the full record, nothing that drags [`Action`]/[`MonitorCursor`]
/// encodings onto the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncidentSummary {
    /// Dense registry index of the protocol.
    pub protocol: u32,
    /// The violating session's id.
    pub session: u64,
    /// Display form of the offending role.
    pub role: String,
    /// Display form of the violating action.
    pub action: String,
    /// Zero-based observation index of the violation.
    pub position: u64,
    /// Compliant actions accepted before the violation.
    pub trace_len: u64,
    /// Length of the retained replayable prefix.
    pub prefix_len: u64,
    /// Whether the retained prefix is incomplete.
    pub truncated: bool,
}

/// Everything a live server hands back for one `MuxFrame::Stats` request.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// The IO event loop's counters.
    pub net: NetReport,
    /// The shard scheduler's report (with the aggregated [`ObsReport`]).
    pub shards: ServerReport,
    /// Summaries of the retained incidents, oldest first.
    pub incidents: Vec<IncidentSummary>,
}

// --- Value encoding -------------------------------------------------------
//
// The stats reply rides on the codec's self-describing `Value`: a record is
// a `Seq` of `(Str key, value)` pairs, so the encoding is versionable (new
// fields are simply new keys) and needs no schema beyond the codec itself.

fn record(fields: Vec<(&str, Value)>) -> Value {
    Value::Seq(
        fields
            .into_iter()
            .map(|(k, v)| Value::pair(Value::Str(k.to_owned()), v))
            .collect(),
    )
}

fn field<'a>(value: &'a Value, key: &str) -> Option<&'a Value> {
    let Value::Seq(fields) = value else {
        return None;
    };
    fields.iter().find_map(|f| match f {
        Value::Pair(k, v) if matches!(&**k, Value::Str(s) if s == key) => Some(&**v),
        _ => None,
    })
}

fn nat_field(value: &Value, key: &str) -> Option<u64> {
    match field(value, key)? {
        Value::Nat(n) => Some(*n),
        _ => None,
    }
}

fn bool_field(value: &Value, key: &str) -> Option<bool> {
    match field(value, key)? {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

fn str_field(value: &Value, key: &str) -> Option<String> {
    match field(value, key)? {
        Value::Str(s) => Some(s.clone()),
        _ => None,
    }
}

fn hist_to_value(h: &HistogramSnapshot) -> Value {
    // Sparse: one (bucket, count) pair per non-empty bucket.
    let buckets = h
        .buckets()
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(b, &n)| Value::pair(Value::Nat(b as u64), Value::Nat(n)))
        .collect();
    record(vec![
        ("max", Value::Nat(h.max())),
        ("buckets", Value::Seq(buckets)),
    ])
}

fn hist_from_value(value: &Value) -> Option<HistogramSnapshot> {
    let mut snap = HistogramSnapshot::default();
    snap.max = nat_field(value, "max")?;
    let Some(Value::Seq(buckets)) = field(value, "buckets") else {
        return None;
    };
    for entry in buckets {
        let Value::Pair(b, n) = entry else {
            return None;
        };
        let (Value::Nat(b), Value::Nat(n)) = (&**b, &**n) else {
            return None;
        };
        if *b as usize >= HISTOGRAM_BUCKETS {
            return None;
        }
        snap.buckets[*b as usize] = *n;
    }
    Some(snap)
}

fn shard_to_value(s: &ShardReport) -> Value {
    record(vec![
        ("shard", Value::Nat(s.shard as u64)),
        ("started", Value::Nat(s.sessions_started)),
        ("completed", Value::Nat(s.sessions_completed)),
        ("violated", Value::Nat(s.sessions_violated)),
        ("quarantined", Value::Nat(s.sessions_quarantined)),
        ("restarted", Value::Nat(s.sessions_restarted)),
        ("stalled", Value::Nat(s.sessions_stalled)),
        ("routed", Value::Nat(s.messages_routed)),
        ("actions", Value::Nat(s.actions_executed)),
        ("quanta", Value::Nat(s.quanta)),
        ("peak_queue", Value::Nat(s.peak_queue_depth)),
        ("batched", Value::Nat(s.sessions_batched)),
        ("slab", Value::Nat(s.sessions_slab)),
        ("demoted", Value::Nat(s.sessions_demoted)),
        ("cohorts", Value::Nat(s.batch_cohorts)),
        ("cohort_sessions", Value::Nat(s.batch_cohort_sessions)),
    ])
}

fn shard_from_value(value: &Value) -> Option<ShardReport> {
    Some(ShardReport {
        shard: nat_field(value, "shard")? as usize,
        sessions_started: nat_field(value, "started")?,
        sessions_completed: nat_field(value, "completed")?,
        sessions_violated: nat_field(value, "violated")?,
        sessions_quarantined: nat_field(value, "quarantined")?,
        sessions_restarted: nat_field(value, "restarted")?,
        sessions_stalled: nat_field(value, "stalled")?,
        messages_routed: nat_field(value, "routed")?,
        actions_executed: nat_field(value, "actions")?,
        quanta: nat_field(value, "quanta")?,
        peak_queue_depth: nat_field(value, "peak_queue")?,
        sessions_batched: nat_field(value, "batched")?,
        sessions_slab: nat_field(value, "slab")?,
        sessions_demoted: nat_field(value, "demoted")?,
        batch_cohorts: nat_field(value, "cohorts")?,
        batch_cohort_sessions: nat_field(value, "cohort_sessions")?,
    })
}

fn obs_to_value(o: &ObsReport) -> Value {
    record(vec![
        ("session_wall_ns", hist_to_value(&o.session_wall_ns)),
        ("action_cost_ns", hist_to_value(&o.action_cost_ns)),
        ("cohort_width", hist_to_value(&o.cohort_width)),
        (
            "per_protocol_wall_ns",
            Value::Seq(
                o.per_protocol_wall_ns
                    .iter()
                    .map(|(p, h)| Value::pair(Value::Nat(u64::from(*p)), hist_to_value(h)))
                    .collect(),
            ),
        ),
        (
            "per_protocol_quarantined",
            Value::Seq(
                o.per_protocol_quarantined
                    .iter()
                    .map(|(p, n)| Value::pair(Value::Nat(u64::from(*p)), Value::Nat(*n)))
                    .collect(),
            ),
        ),
        ("incidents_recorded", Value::Nat(o.incidents_recorded)),
        ("incidents_held", Value::Nat(o.incidents_held)),
        ("flight_events", Value::Nat(o.flight_events)),
    ])
}

fn obs_from_value(value: &Value) -> Option<ObsReport> {
    let mut per_protocol = Vec::new();
    if let Some(Value::Seq(entries)) = field(value, "per_protocol_wall_ns") {
        for entry in entries {
            let Value::Pair(p, h) = entry else {
                return None;
            };
            let Value::Nat(p) = &**p else {
                return None;
            };
            per_protocol.push((*p as u32, hist_from_value(h)?));
        }
    } else {
        return None;
    }
    let mut quarantined = Vec::new();
    if let Some(Value::Seq(entries)) = field(value, "per_protocol_quarantined") {
        for entry in entries {
            let Value::Pair(p, n) = entry else {
                return None;
            };
            let (Value::Nat(p), Value::Nat(n)) = (&**p, &**n) else {
                return None;
            };
            quarantined.push((*p as u32, *n));
        }
    } else {
        return None;
    }
    Some(ObsReport {
        session_wall_ns: hist_from_value(field(value, "session_wall_ns")?)?,
        action_cost_ns: hist_from_value(field(value, "action_cost_ns")?)?,
        cohort_width: hist_from_value(field(value, "cohort_width")?)?,
        per_protocol_wall_ns: per_protocol,
        per_protocol_quarantined: quarantined,
        incidents_recorded: nat_field(value, "incidents_recorded")?,
        incidents_held: nat_field(value, "incidents_held")?,
        flight_events: nat_field(value, "flight_events")?,
    })
}

fn net_to_value(n: &NetReport) -> Value {
    record(vec![
        ("conns_accepted", Value::Nat(n.connections_accepted)),
        ("conns_rejected", Value::Nat(n.connections_rejected)),
        ("conns_closed", Value::Nat(n.connections_closed)),
        ("sessions_opened", Value::Nat(n.sessions_opened)),
        ("sessions_rejected", Value::Nat(n.sessions_rejected)),
        ("sessions_shed", Value::Nat(n.sessions_shed)),
        ("sessions_done", Value::Nat(n.sessions_done)),
        ("frames_read", Value::Nat(n.frames_read)),
        ("frames_written", Value::Nat(n.frames_written)),
        ("bad_frames", Value::Nat(n.bad_frames)),
        ("rej_unknown_protocol", Value::Nat(n.rejects.unknown_protocol)),
        ("rej_connection_limit", Value::Nat(n.rejects.connection_limit)),
        ("rej_session_limit", Value::Nat(n.rejects.session_limit)),
        ("rej_overloaded", Value::Nat(n.rejects.overloaded)),
        ("rej_bad_frame", Value::Nat(n.rejects.bad_frame)),
        ("rej_shutting_down", Value::Nat(n.rejects.shutting_down)),
        ("rej_quarantined", Value::Nat(n.rejects.quarantined)),
        ("rej_banned", Value::Nat(n.rejects.banned)),
        ("io_pass_ns", hist_to_value(&n.io_pass_ns)),
    ])
}

fn net_from_value(value: &Value) -> Option<NetReport> {
    Some(NetReport {
        connections_accepted: nat_field(value, "conns_accepted")?,
        connections_rejected: nat_field(value, "conns_rejected")?,
        connections_closed: nat_field(value, "conns_closed")?,
        sessions_opened: nat_field(value, "sessions_opened")?,
        sessions_rejected: nat_field(value, "sessions_rejected")?,
        sessions_shed: nat_field(value, "sessions_shed")?,
        sessions_done: nat_field(value, "sessions_done")?,
        frames_read: nat_field(value, "frames_read")?,
        frames_written: nat_field(value, "frames_written")?,
        bad_frames: nat_field(value, "bad_frames")?,
        rejects: RejectCounts {
            unknown_protocol: nat_field(value, "rej_unknown_protocol")?,
            connection_limit: nat_field(value, "rej_connection_limit")?,
            session_limit: nat_field(value, "rej_session_limit")?,
            overloaded: nat_field(value, "rej_overloaded")?,
            bad_frame: nat_field(value, "rej_bad_frame")?,
            shutting_down: nat_field(value, "rej_shutting_down")?,
            quarantined: nat_field(value, "rej_quarantined")?,
            banned: nat_field(value, "rej_banned")?,
        },
        io_pass_ns: hist_from_value(field(value, "io_pass_ns")?)?,
    })
}

fn incident_to_value(i: &IncidentSummary) -> Value {
    record(vec![
        ("protocol", Value::Nat(u64::from(i.protocol))),
        ("session", Value::Nat(i.session)),
        ("role", Value::Str(i.role.clone())),
        ("action", Value::Str(i.action.clone())),
        ("position", Value::Nat(i.position)),
        ("trace_len", Value::Nat(i.trace_len)),
        ("prefix_len", Value::Nat(i.prefix_len)),
        ("truncated", Value::Bool(i.truncated)),
    ])
}

fn incident_from_value(value: &Value) -> Option<IncidentSummary> {
    Some(IncidentSummary {
        protocol: nat_field(value, "protocol")? as u32,
        session: nat_field(value, "session")?,
        role: str_field(value, "role")?,
        action: str_field(value, "action")?,
        position: nat_field(value, "position")?,
        trace_len: nat_field(value, "trace_len")?,
        prefix_len: nat_field(value, "prefix_len")?,
        truncated: bool_field(value, "truncated")?,
    })
}

impl StatsSnapshot {
    /// Serializes the snapshot into a codec [`Value`] (the `StatsReply`
    /// payload).
    pub fn to_value(&self) -> Value {
        record(vec![
            ("net", net_to_value(&self.net)),
            (
                "shards",
                record(vec![
                    (
                        "per_shard",
                        Value::Seq(self.shards.shards.iter().map(shard_to_value).collect()),
                    ),
                    ("obs", obs_to_value(&self.shards.obs)),
                ]),
            ),
            (
                "incidents",
                Value::Seq(self.incidents.iter().map(incident_to_value).collect()),
            ),
        ])
    }

    /// Deserializes a snapshot from a codec [`Value`]; `None` when the
    /// value does not carry the expected record shape.
    pub fn from_value(value: &Value) -> Option<StatsSnapshot> {
        let shards_rec = field(value, "shards")?;
        let Some(Value::Seq(per_shard)) = field(shards_rec, "per_shard") else {
            return None;
        };
        let shards = per_shard
            .iter()
            .map(shard_from_value)
            .collect::<Option<Vec<_>>>()?;
        let Some(Value::Seq(incidents)) = field(value, "incidents") else {
            return None;
        };
        let incidents = incidents
            .iter()
            .map(incident_from_value)
            .collect::<Option<Vec<_>>>()?;
        Some(StatsSnapshot {
            net: net_from_value(field(value, "net")?)?,
            shards: ServerReport {
                shards,
                obs: obs_from_value(field(shards_rec, "obs")?)?,
            },
            incidents,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zooid_cfsm::System;
    use zooid_mpst::{generators, Label, Sort};

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    #[test]
    fn buckets_partition_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for v in [0u64, 1, 2, 3, 7, 8, 1000, u64::MAX / 2, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_of(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
        // Bounds tile without gaps or overlaps.
        for b in 1..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_bounds(b).0, bucket_bounds(b - 1).1 + 1);
        }
    }

    #[test]
    fn percentiles_track_recorded_values_at_bucket_resolution() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        assert_eq!(snap.max(), 100);
        // p50 falls in the bucket of 50 ([32, 63]); capped upper bound.
        assert_eq!(snap.p50(), 63);
        assert_eq!(snap.p99(), 100, "top bucket percentile caps at max");
        assert!(snap.p50() <= snap.p90() && snap.p90() <= snap.p99());
        assert!(snap.p99() <= snap.max());
    }

    #[test]
    fn empty_snapshots_report_zeroes() {
        let snap = HistogramSnapshot::default();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p99(), 0);
        assert_eq!(snap.max(), 0);
    }

    #[test]
    fn merge_is_lossless() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [1u64, 5, 9, 120, 7000] {
            a.record(v);
            all.record(v);
        }
        for v in [0u64, 2, 64, 1 << 40] {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn add_count_agrees_with_individual_records_up_to_the_bucket() {
        let direct = Histogram::new();
        let bucketed = Histogram::new();
        for v in [3u64, 3, 3, 17] {
            direct.record(v);
        }
        bucketed.add_count(bucket_of(3), 3);
        bucketed.add_count(bucket_of(17), 1);
        assert_eq!(direct.snapshot().buckets(), bucketed.snapshot().buckets());
        // add_count's max is the bucket upper bound (conservative).
        assert!(bucketed.snapshot().max() >= direct.snapshot().max());
    }

    #[test]
    fn flight_recorder_keeps_the_last_events_in_order() {
        let rec = FlightRecorder::new(4);
        for i in 0..10u64 {
            rec.record(FlightEvent::Admitted {
                session: i,
                batched: i % 2 == 0,
            });
        }
        assert_eq!(rec.recorded(), 10);
        let events = rec.snapshot();
        assert_eq!(events.len(), 4);
        let sessions: Vec<u64> = events
            .iter()
            .map(|e| match e {
                FlightEvent::Admitted { session, .. } => *session,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(sessions, vec![6, 7, 8, 9]);
    }

    #[test]
    fn flight_events_pack_and_unpack_every_variant() {
        let cases = [
            FlightEvent::Admitted {
                session: 1,
                batched: true,
            },
            FlightEvent::Admitted {
                session: 2,
                batched: false,
            },
            FlightEvent::BatchDemoted { session: 77 },
            FlightEvent::Stalled { session: (1 << 48) - 1 },
            FlightEvent::Violation { session: 3 },
            FlightEvent::Rejected {
                session: 9,
                code: RejectCode::Overloaded,
            },
            FlightEvent::ConnClosed {
                client: 5,
                reason: CloseReason::WriteStalled,
            },
            FlightEvent::ConnClosed {
                client: 6,
                reason: CloseReason::Idle,
            },
            FlightEvent::ConnClosed {
                client: 7,
                reason: CloseReason::Quarantined,
            },
            FlightEvent::Rejected {
                session: 10,
                code: RejectCode::Quarantined,
            },
            FlightEvent::Quarantined { session: 11 },
            FlightEvent::Restarted {
                session: 12,
                retry: 1,
            },
            FlightEvent::Restarted {
                session: 13,
                retry: 255,
            },
        ];
        for case in cases {
            assert_eq!(FlightEvent::unpack(case.pack()), Some(case), "{case:?}");
        }
        assert_eq!(FlightEvent::unpack(0), None, "empty slots decode to nothing");
    }

    #[test]
    fn incidents_capture_and_replay_their_violation() {
        let system = Arc::new(System::from_global(&generators::ring_n(3)).unwrap().compile());
        // Accept the first exchange, then observe a premature action.
        let roles = [r("w0"), r("w1"), r("w2")];
        let send = Action::send(roles[0].clone(), roles[1].clone(), Label::new("l"), Sort::Nat);
        let mut cursor = system.monitor_cursor();
        let mut trace = Trace::empty();
        for action in [send.clone(), send.dual()] {
            assert!(system.observe(&mut cursor, &action));
            trace.push(action);
        }
        let premature = Action::send(roles[2].clone(), roles[0].clone(), Label::new("l"), Sort::Nat);
        assert!(!system.observe(&mut cursor, &premature));
        let violation = MonitorViolation {
            action: premature.clone(),
            position: 2,
            trace_len: 2,
        };
        let incident = Incident::capture(
            ProtocolId(0),
            SessionId(42),
            &system,
            &violation,
            &trace,
            INCIDENT_PREFIX_CAP,
        );
        assert_eq!(incident.role, roles[2]);
        assert!(!incident.truncated);
        assert_eq!(incident.trace_prefix.len(), 2);
        assert_eq!(incident.cursor, cursor);
        assert!(incident.replays_violation(&system));
        let summary = incident.summary();
        assert_eq!(summary.session, 42);
        assert_eq!(summary.prefix_len, 2);
        assert!(!summary.truncated);
    }

    #[test]
    fn truncated_incidents_say_so_and_refuse_replay() {
        let system = Arc::new(System::from_global(&generators::ring_n(3)).unwrap().compile());
        let send = Action::send(r("w0"), r("w1"), Label::new("l"), Sort::Nat);
        let violation = MonitorViolation {
            action: send.clone(),
            position: 5,
            trace_len: 4,
        };
        // Trace recording was off: no prefix available.
        let incident = Incident::capture(
            ProtocolId(0),
            SessionId(1),
            &system,
            &violation,
            &Trace::empty(),
            INCIDENT_PREFIX_CAP,
        );
        assert!(incident.truncated);
        assert_eq!(incident.trace_prefix.len(), 0);
        assert!(!incident.replays_violation(&system));
    }

    #[test]
    fn the_incident_store_caps_retention_but_counts_everything() {
        let system = Arc::new(System::from_global(&generators::ring_n(3)).unwrap().compile());
        let store = IncidentStore::new(2);
        let violation = MonitorViolation {
            action: Action::send(r("w1"), r("w2"), Label::new("l"), Sort::Nat),
            position: 0,
            trace_len: 0,
        };
        for i in 0..5 {
            store.record(Incident::capture(
                ProtocolId(0),
                SessionId(i),
                &system,
                &violation,
                &Trace::empty(),
                INCIDENT_PREFIX_CAP,
            ));
        }
        assert_eq!(store.recorded(), 5);
        let held = store.snapshot();
        assert_eq!(held.len(), 2);
        assert_eq!(held[0].session, SessionId(3));
        assert_eq!(held[1].session, SessionId(4));
    }

    #[test]
    fn shard_obs_merges_per_protocol_histograms() {
        let a = ShardObs::new();
        let b = ShardObs::new();
        a.protocol_wall(ProtocolId(0)).record(10);
        a.protocol_wall(ProtocolId(1)).record(20);
        b.protocol_wall(ProtocolId(0)).record(30);
        a.session_wall.record(10);
        b.session_wall.record(30);
        let mut report = ObsReport::default();
        a.merge_into(&mut report);
        b.merge_into(&mut report);
        assert_eq!(report.session_wall_ns.count(), 2);
        assert_eq!(report.per_protocol_wall_ns.len(), 2);
        assert_eq!(report.per_protocol_wall_ns[0].0, 0);
        assert_eq!(report.per_protocol_wall_ns[0].1.count(), 2);
        assert_eq!(report.per_protocol_wall_ns[1].1.count(), 1);
    }

    #[test]
    fn stats_snapshots_round_trip_through_values() {
        let mut session_wall = HistogramSnapshot::default();
        let h = Histogram::new();
        h.record(100);
        h.record(90_000);
        session_wall.merge(&h.snapshot());
        let snapshot = StatsSnapshot {
            net: NetReport {
                connections_accepted: 3,
                sessions_opened: 7,
                frames_read: 21,
                rejects: RejectCounts {
                    overloaded: 2,
                    bad_frame: 1,
                    ..RejectCounts::default()
                },
                io_pass_ns: h.snapshot(),
                ..NetReport::default()
            },
            shards: ServerReport {
                shards: vec![ShardReport {
                    shard: 0,
                    sessions_started: 7,
                    sessions_completed: 6,
                    sessions_violated: 1,
                    sessions_quarantined: 1,
                    sessions_restarted: 1,
                    sessions_stalled: 0,
                    messages_routed: 21,
                    actions_executed: 42,
                    quanta: 9,
                    peak_queue_depth: 4,
                    sessions_batched: 5,
                    sessions_slab: 2,
                    sessions_demoted: 1,
                    batch_cohorts: 3,
                    batch_cohort_sessions: 12,
                }],
                obs: ObsReport {
                    session_wall_ns: session_wall,
                    per_protocol_wall_ns: vec![(0, session_wall)],
                    per_protocol_quarantined: vec![(0, 1)],
                    incidents_recorded: 1,
                    incidents_held: 1,
                    flight_events: 17,
                    ..ObsReport::default()
                },
            },
            incidents: vec![IncidentSummary {
                protocol: 0,
                session: 4,
                role: "w1".into(),
                action: "!w1w2(l, nat)".into(),
                position: 2,
                trace_len: 2,
                prefix_len: 2,
                truncated: false,
            }],
        };
        let value = snapshot.to_value();
        let back = StatsSnapshot::from_value(&value).expect("round trip");
        assert_eq!(back, snapshot);
        // Malformed values decode to None, not a panic.
        assert_eq!(StatsSnapshot::from_value(&Value::Nat(3)), None);
        assert_eq!(StatsSnapshot::from_value(&Value::Seq(vec![])), None);
    }
}
