//! One hosted session: a set of resumable endpoint tasks over an in-memory
//! network, stepped in bounded quanta with a live compiled monitor.
//!
//! Endpoints run on the **compiled data plane** by default: each submitted
//! process is lowered once per `(protocol, role, process)` (cached in
//! [`ProtocolArtifacts`]) and executed as a
//! [`CompiledEndpointTask`] — program counter plus slot array, with the
//! monitor fed pre-interned actions. A process that does not lower (jumps
//! without loops and similar pathologies the tree executor only detects at
//! run time) falls back to the tree-walking [`EndpointTask`]; both produce
//! identical traces, statuses and verdicts (the differential suites hold
//! one against the other).

use std::collections::BTreeMap;
use std::sync::Arc;

use zooid_dsl::CertifiedProcess;
use zooid_mpst::{Role, Trace};
use zooid_proc::{erase, Externals};
use zooid_runtime::cbatch::{DemotedEndpoint, DemotedSession};
use zooid_runtime::cexec::CompiledEndpointTask;
use zooid_runtime::checkpoint::checkpoint_task;
use zooid_runtime::error::RuntimeError;
use zooid_runtime::exec::{EndpointReport, EndpointTask, ExecOptions, StepOutcome};
use zooid_runtime::monitor::{CompiledMonitor, MonitorViolation};
use zooid_runtime::transport::{InMemoryNetwork, InMemoryTransport, Transport};

use crate::error::{Result, ServerError};
use crate::registry::{ProtocolArtifacts, ProtocolId};

/// Server-wide id of a hosted session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

/// Everything needed to start one session: the protocol and a certified
/// implementation (plus externals) for every participant.
///
/// The endpoint list is behind an `Arc`: a load generator (or any client
/// starting many sessions of the same implementations) builds it once and
/// submits clones of the *handle* — the certified processes themselves are
/// shared, never re-cloned per session, and on the worker shard the
/// compiled-program cache means session construction only reads them.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// The registered protocol the session runs.
    pub protocol: ProtocolId,
    /// One certified endpoint per participant, in any order (shared).
    pub endpoints: Arc<[(CertifiedProcess, Externals)]>,
    /// Execution options applied to every endpoint (step limits for
    /// non-terminating protocols).
    pub options: ExecOptions,
}

impl SessionSpec {
    /// A spec with default options. Accepts a `Vec` (converted once) or an
    /// already shared `Arc` slice.
    pub fn new(
        protocol: ProtocolId,
        endpoints: impl Into<Arc<[(CertifiedProcess, Externals)]>>,
    ) -> Self {
        SessionSpec {
            protocol,
            endpoints: endpoints.into(),
            options: ExecOptions::default(),
        }
    }

    /// Limits every endpoint to at most `max_steps` visible communications.
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.options = ExecOptions::with_max_steps(max_steps);
        self
    }
}

/// The outcome of one hosted session (the server-side counterpart of
/// [`zooid_runtime::SessionReport`]).
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// The session's id.
    pub id: SessionId,
    /// The protocol it ran.
    pub protocol: ProtocolId,
    /// Per-endpoint reports (trace with values, final status).
    pub endpoints: BTreeMap<Role, EndpointReport>,
    /// The global interleaving accepted by the monitor (erased actions).
    pub global_trace: Trace,
    /// Whether every observed action was allowed by the protocol.
    pub compliant: bool,
    /// Whether the protocol ran to completion.
    pub complete: bool,
    /// Every observed violation.
    pub violations: Vec<MonitorViolation>,
    /// Whether the scheduler gave up because no endpoint could progress.
    pub stalled: bool,
    /// Whether the quarantine policy halted the session on its first
    /// monitor rejection (the session took zero steps after the violating
    /// action).
    pub quarantined: bool,
}

impl SessionOutcome {
    /// Returns `true` if every endpoint finished and the observed trace is
    /// compliant and complete.
    pub fn all_finished_and_compliant(&self) -> bool {
        self.compliant
            && self.complete
            && self.endpoints.values().all(|r| r.status.is_finished())
    }

    /// Total number of messages exchanged (sends accepted by the monitor).
    pub fn messages_exchanged(&self) -> usize {
        self.global_trace.iter().filter(|a| a.is_send()).count()
    }
}

/// What one scheduling quantum did to a session.
#[derive(Debug)]
pub(crate) struct QuantumResult {
    /// Visible communications performed during the quantum.
    pub(crate) actions: usize,
    /// Messages handed to the in-session network (sends).
    pub(crate) sends: usize,
    /// `Some` when the session is over (finished or stalled) — the session
    /// must not be re-queued.
    pub(crate) outcome: Option<SessionOutcome>,
}

/// One endpoint of a hosted session: compiled when the process lowers (the
/// normal case), tree-walking otherwise.
#[derive(Debug)]
pub(crate) enum Endpoint {
    /// The compiled data plane: dense program, slot array, pre-interned
    /// monitor actions.
    Compiled(CompiledEndpointTask),
    /// The tree-walking oracle, kept for processes that do not lower.
    Tree(EndpointTask),
}

impl Endpoint {
    fn is_done(&self) -> bool {
        match self {
            Endpoint::Compiled(task) => task.is_done(),
            Endpoint::Tree(task) => task.is_done(),
        }
    }

    fn mark_stalled(&mut self) {
        match self {
            Endpoint::Compiled(task) => task.mark_stalled(),
            Endpoint::Tree(task) => task.mark_stalled(),
        }
    }

    fn into_report(self) -> EndpointReport {
        match self {
            Endpoint::Compiled(task) => task.into_report(),
            Endpoint::Tree(task) => task.into_report(),
        }
    }

    /// One visible step, feeding the monitor: the compiled path hands over
    /// the pre-interned action so the observation is hash-free; the tree
    /// path (and compiled sites whose template did not resolve) goes through
    /// the monitor's own lookups.
    fn step(
        &mut self,
        transport: &mut InMemoryTransport,
        monitor: &mut CompiledMonitor,
        sends: &mut usize,
    ) -> StepOutcome {
        match self {
            Endpoint::Compiled(task) => task.step_mem(transport, &mut |va, interned| {
                if va.is_send {
                    *sends += 1;
                }
                match interned {
                    Some(interned) => {
                        // The erased action is only built if the monitor
                        // records it (trace on, or a violation).
                        monitor.observe_interned(interned, || erase(va));
                    }
                    None => {
                        monitor.observe(&erase(va));
                    }
                }
            }),
            Endpoint::Tree(task) => task.step(transport, &mut |va| {
                if va.is_send {
                    *sends += 1;
                }
                monitor.observe(&erase(va));
            }),
        }
    }
}

/// A session hosted by a worker shard: one endpoint task per role, the
/// session's in-memory channels, and a [`CompiledMonitor`] observing every
/// communication.
#[derive(Debug)]
pub(crate) struct ActiveSession {
    id: SessionId,
    protocol: ProtocolId,
    monitor: CompiledMonitor,
    tasks: Vec<(Endpoint, InMemoryTransport)>,
    /// Set when the quarantine policy halts the session: endpoints still
    /// mid-protocol are closed as stalled and the outcome is flagged.
    quarantined: bool,
}

/// Checks that a spec's endpoints cover the protocol's participants exactly
/// once each (and belong to the protocol at all). Split out of
/// [`ActiveSession::new`] so submission can validate cheaply on the caller's
/// thread while the *construction* — channels, compiled tasks, monitor —
/// happens on the worker shard, in parallel across shards.
pub(crate) fn validate_spec(spec: &SessionSpec, artifacts: &ProtocolArtifacts) -> Result<()> {
    let mut remaining: Vec<&Role> = artifacts.roles().collect();
    for (cert, _) in spec.endpoints.iter() {
        if cert.protocol_name() != artifacts.name() {
            return Err(ServerError::WrongProtocol {
                expected: artifacts.name().to_owned(),
                found: cert.protocol_name().to_owned(),
            });
        }
        let Some(pos) = remaining.iter().position(|r| *r == cert.role()) else {
            return Err(ServerError::UnexpectedEndpoint {
                role: cert.role().clone(),
            });
        };
        remaining.swap_remove(pos);
    }
    if let Some(role) = remaining.first() {
        return Err(ServerError::MissingEndpoint { role: (*role).clone() });
    }
    Ok(())
}

impl ActiveSession {
    /// The session's id.
    pub(crate) fn id(&self) -> SessionId {
        self.id
    }

    /// The protocol the session runs.
    pub(crate) fn protocol(&self) -> ProtocolId {
        self.protocol
    }

    /// Builds the session. The spec must already have passed
    /// [`validate_spec`] for these artifacts — the server validates at
    /// submission, then ships the spec to a worker shard which constructs
    /// the session; re-walking the role coverage here would just double the
    /// per-session cost the split exists to avoid.
    pub(crate) fn new(
        id: SessionId,
        spec: SessionSpec,
        artifacts: &Arc<ProtocolArtifacts>,
    ) -> Result<Self> {
        debug_assert!(validate_spec(&spec, artifacts).is_ok());

        let mut network = InMemoryNetwork::from_sorted(Arc::clone(artifacts.sorted_roles()));
        let options = spec.options;
        let options_record = options.record_actions;
        let tasks = spec
            .endpoints
            .iter()
            .map(|(cert, externals)| {
                let transport = network
                    .take_endpoint(cert.role())
                    .expect("coverage was validated above");
                // The compiled data plane is the default; a process that
                // does not lower runs on the tree-walking oracle instead
                // (and fails at run time exactly where it always did). The
                // endpoints are shared (`Arc`), so on the usual cache-hit
                // path nothing of the process is cloned here.
                let task = match artifacts.endpoint_program(cert.role(), cert.proc(), externals) {
                    Some(program) => Endpoint::Compiled(CompiledEndpointTask::new(
                        program,
                        externals.clone(),
                        options.clone(),
                    )),
                    None => Endpoint::Tree(EndpointTask::new(
                        cert.proc().clone(),
                        cert.role().clone(),
                        externals.clone(),
                        options.clone(),
                    )),
                };
                (task, transport)
            })
            .collect();
        let mut monitor = CompiledMonitor::new(Arc::clone(artifacts.compiled()));
        // Fire-and-forget sessions (`record_actions` off) skip the global
        // trace too: the outcome then carries the verdicts alone.
        monitor.set_record_trace(options_record);
        Ok(ActiveSession {
            id,
            protocol: spec.protocol,
            monitor,
            tasks,
            quarantined: false,
        })
    }

    /// Rebuilds a session from the state a [`SessionBatch`] extracted when
    /// it demoted the session mid-flight: every endpoint resumes as a
    /// compiled task at its exact program counter with its slot values,
    /// recorded actions and step count; the monitor resumes mid-stream; and
    /// the frames that were still in flight in the batch arena are
    /// re-injected through the senders' transports, preserving per-channel
    /// FIFO order. Nothing of the session's observable history is lost.
    ///
    /// [`SessionBatch`]: zooid_runtime::cbatch::SessionBatch
    pub(crate) fn from_demoted(
        id: SessionId,
        protocol: ProtocolId,
        demoted: DemotedSession,
        artifacts: &Arc<ProtocolArtifacts>,
    ) -> Self {
        let DemotedSession {
            options,
            endpoints,
            monitor,
            frames,
            ..
        } = demoted;
        let mut network = InMemoryNetwork::from_sorted(Arc::clone(artifacts.sorted_roles()));
        let roles: Vec<Role> = endpoints.iter().map(|ep| ep.role.clone()).collect();
        let mut tasks: Vec<(Endpoint, InMemoryTransport)> = endpoints
            .into_iter()
            .map(|ep| {
                let transport = network
                    .take_endpoint(&ep.role)
                    .expect("batch role order is the sorted role table");
                // Batch-eligible programs call no externals, so resuming
                // with an empty set is exact.
                let task = CompiledEndpointTask::resume(
                    ep.program,
                    Externals::new(),
                    options.clone(),
                    ep.pc,
                    ep.slots,
                    ep.actions,
                    ep.steps,
                    ep.status,
                );
                (Endpoint::Compiled(task), transport)
            })
            .collect();
        for (from, to, label, value) in frames {
            let (_, transport) = &mut tasks[from as usize];
            transport
                .send(&roles[to as usize], &label, &value)
                .expect("co-batched roles are network peers");
        }
        ActiveSession {
            id,
            protocol,
            monitor,
            tasks,
            quarantined: false,
        }
    }

    /// Whether the session's monitor has already rejected an action.
    pub(crate) fn is_violating(&self) -> bool {
        !self.monitor.is_compliant()
    }

    /// Extracts a restorable snapshot of the live session without
    /// disturbing it: per-role task state (pc, slots, recorded actions,
    /// step counts), the monitor mid-stream, and every in-flight frame in
    /// per-channel FIFO order. Endpoints are emitted in **sorted role
    /// order** — the batch role order, which is also what
    /// [`zooid_runtime::SessionCheckpoint::into_demoted`] validates its
    /// programs against.
    ///
    /// In-flight frames are captured by draining each receiver's channels
    /// and immediately re-injecting every frame through its sender's
    /// transport, so the session is byte-for-byte unchanged afterwards.
    ///
    /// Sessions with a tree-walking endpoint cannot checkpoint — their
    /// state is a process tree mid-substitution, not a pc plus slots — and
    /// are refused with [`RuntimeError::Recovery`].
    pub(crate) fn checkpoint(&mut self) -> std::result::Result<DemotedSession, RuntimeError> {
        let mut roles = Vec::with_capacity(self.tasks.len());
        for (task, _) in &self.tasks {
            match task {
                Endpoint::Compiled(t) => roles.push(t.role().clone()),
                Endpoint::Tree(_) => {
                    return Err(RuntimeError::Recovery {
                        reason: "session has a tree-walking endpoint; only compiled \
                                 sessions can checkpoint"
                            .into(),
                    })
                }
            }
        }
        let mut order: Vec<usize> = (0..self.tasks.len()).collect();
        order.sort_by(|&a, &b| roles[a].cmp(&roles[b]));
        let endpoints: Vec<DemotedEndpoint> = order
            .iter()
            .map(|&i| match &self.tasks[i].0 {
                Endpoint::Compiled(t) => checkpoint_task(t),
                Endpoint::Tree(_) => unreachable!("tree endpoints were refused above"),
            })
            .collect();
        let options = match &self.tasks[order[0]].0 {
            Endpoint::Compiled(t) => t.options().clone(),
            Endpoint::Tree(_) => unreachable!("tree endpoints were refused above"),
        };
        // Capture in-flight frames: drain every (sender, receiver) channel
        // in FIFO order, then re-inject each frame through its sender so
        // the live session keeps running as if nothing happened. Frame
        // indices are positions in the sorted endpoint order above.
        let mut frames: Vec<(u32, u32, zooid_mpst::Label, zooid_proc::Value)> = Vec::new();
        for (to_pos, &ti) in order.iter().enumerate() {
            for (from_pos, &fi) in order.iter().enumerate() {
                if fi == ti {
                    continue;
                }
                let (_, transport) = &mut self.tasks[ti];
                let Some(peer) = transport.peer_index(&roles[fi]) else {
                    continue;
                };
                while let Some((label, value)) = transport.try_recv_indexed(peer)? {
                    frames.push((from_pos as u32, to_pos as u32, label, value));
                }
            }
        }
        for (from_pos, to_pos, label, value) in &frames {
            let sender = order[*from_pos as usize];
            let receiver_role = &roles[order[*to_pos as usize]];
            let (_, transport) = &mut self.tasks[sender];
            transport.send(receiver_role, label, value)?;
        }
        Ok(DemotedSession {
            token: self.id.0,
            options,
            endpoints,
            monitor: self.monitor.clone(),
            frames,
        })
    }

    /// Runs the session for at most `budget` visible communications.
    ///
    /// Endpoints are stepped round-robin, each until it blocks; the quantum
    /// ends when the budget is exhausted (session re-queued by the caller),
    /// when every endpoint is done, or when a full round-robin pass makes no
    /// progress while tasks are still pending — which, for a self-contained
    /// in-memory session, means no message can ever arrive again: the
    /// remaining endpoints are marked [`EndpointStatus::Stalled`] and the
    /// session is closed.
    ///
    /// With a `violation_threshold` of `Some(n)`, the session is closed as
    /// soon as the monitor has rejected `n` actions — at the default
    /// threshold of 1 the violating session takes **zero** further steps —
    /// every endpoint still mid-protocol is reported stalled, and the
    /// outcome carries `quarantined = true`. `None` never quarantines
    /// (violations are recorded and the session runs on).
    ///
    /// [`EndpointStatus::Stalled`]: zooid_runtime::EndpointStatus::Stalled
    pub(crate) fn run_quantum(
        &mut self,
        budget: usize,
        violation_threshold: Option<u32>,
    ) -> QuantumResult {
        let mut actions = 0usize;
        let mut sends = 0usize;
        let ActiveSession { monitor, tasks, .. } = self;
        'quantum: loop {
            let mut progressed = false;
            for (task, transport) in tasks.iter_mut() {
                if task.is_done() {
                    continue;
                }
                loop {
                    if actions >= budget {
                        break 'quantum;
                    }
                    match task.step(transport, monitor, &mut sends) {
                        StepOutcome::Progress => {
                            progressed = true;
                            actions += 1;
                            if violation_threshold
                                .is_some_and(|n| monitor.violations().len() >= n as usize)
                            {
                                self.quarantined = true;
                                return QuantumResult {
                                    actions,
                                    sends,
                                    outcome: Some(self.finish(false)),
                                };
                            }
                        }
                        StepOutcome::WouldBlock { .. } | StepOutcome::Done(_) => break,
                    }
                }
            }
            if tasks.iter().all(|(task, _)| task.is_done()) {
                return QuantumResult {
                    actions,
                    sends,
                    outcome: Some(self.finish(false)),
                };
            }
            if !progressed {
                // Self-contained session with every endpoint blocked: no
                // message will ever arrive again.
                return QuantumResult {
                    actions,
                    sends,
                    outcome: Some(self.finish(true)),
                };
            }
        }
        // Budget exhausted mid-protocol (the task in hand had just made
        // progress, so it cannot be done): the session stays live and the
        // next quantum picks it up where it stopped.
        QuantumResult {
            actions,
            sends,
            outcome: None,
        }
    }

    /// Force-closes a session its scheduler will not run again (server
    /// shutdown): every endpoint still mid-protocol is marked stalled.
    pub(crate) fn close_stalled(mut self) -> SessionOutcome {
        self.finish(true)
    }

    /// Closes a session the quarantine policy refuses to keep stepping (a
    /// batch-demoted session whose monitor already rejected an action):
    /// endpoints still mid-protocol are reported stalled, and the outcome
    /// carries `quarantined = true`.
    pub(crate) fn close_quarantined(mut self) -> SessionOutcome {
        self.quarantined = true;
        self.finish(false)
    }

    fn finish(&mut self, stalled: bool) -> SessionOutcome {
        let mut endpoints = BTreeMap::new();
        for (mut task, transport) in std::mem::take(&mut self.tasks) {
            if stalled || self.quarantined {
                task.mark_stalled();
            }
            let report = task.into_report();
            endpoints.insert(report.role.clone(), report);
            drop(transport);
        }
        // The monitor is done observing: move its trace and violations into
        // the outcome instead of cloning them (verdicts are read first).
        let compliant = self.monitor.is_compliant();
        let complete = self.monitor.is_complete();
        SessionOutcome {
            id: self.id,
            protocol: self.protocol,
            endpoints,
            global_trace: self.monitor.take_trace(),
            compliant,
            complete,
            violations: self.monitor.take_violations(),
            stalled,
            quarantined: self.quarantined,
        }
    }
}
