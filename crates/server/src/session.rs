//! One hosted session: a set of resumable endpoint tasks over an in-memory
//! network, stepped in bounded quanta with a live compiled monitor.

use std::collections::BTreeMap;
use std::sync::Arc;

use zooid_dsl::CertifiedProcess;
use zooid_mpst::{Role, Trace};
use zooid_proc::{erase, Externals};
use zooid_runtime::exec::{EndpointReport, EndpointTask, ExecOptions, StepOutcome};
use zooid_runtime::monitor::{CompiledMonitor, MonitorViolation};
use zooid_runtime::transport::{InMemoryNetwork, InMemoryTransport};

use crate::error::{Result, ServerError};
use crate::registry::{ProtocolArtifacts, ProtocolId};

/// Server-wide id of a hosted session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

/// Everything needed to start one session: the protocol and a certified
/// implementation (plus externals) for every participant.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// The registered protocol the session runs.
    pub protocol: ProtocolId,
    /// One certified endpoint per participant, in any order.
    pub endpoints: Vec<(CertifiedProcess, Externals)>,
    /// Execution options applied to every endpoint (step limits for
    /// non-terminating protocols).
    pub options: ExecOptions,
}

impl SessionSpec {
    /// A spec with default options.
    pub fn new(protocol: ProtocolId, endpoints: Vec<(CertifiedProcess, Externals)>) -> Self {
        SessionSpec {
            protocol,
            endpoints,
            options: ExecOptions::default(),
        }
    }

    /// Limits every endpoint to at most `max_steps` visible communications.
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.options = ExecOptions::with_max_steps(max_steps);
        self
    }
}

/// The outcome of one hosted session (the server-side counterpart of
/// [`zooid_runtime::SessionReport`]).
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// The session's id.
    pub id: SessionId,
    /// The protocol it ran.
    pub protocol: ProtocolId,
    /// Per-endpoint reports (trace with values, final status).
    pub endpoints: BTreeMap<Role, EndpointReport>,
    /// The global interleaving accepted by the monitor (erased actions).
    pub global_trace: Trace,
    /// Whether every observed action was allowed by the protocol.
    pub compliant: bool,
    /// Whether the protocol ran to completion.
    pub complete: bool,
    /// Every observed violation.
    pub violations: Vec<MonitorViolation>,
    /// Whether the scheduler gave up because no endpoint could progress.
    pub stalled: bool,
}

impl SessionOutcome {
    /// Returns `true` if every endpoint finished and the observed trace is
    /// compliant and complete.
    pub fn all_finished_and_compliant(&self) -> bool {
        self.compliant
            && self.complete
            && self.endpoints.values().all(|r| r.status.is_finished())
    }

    /// Total number of messages exchanged (sends accepted by the monitor).
    pub fn messages_exchanged(&self) -> usize {
        self.global_trace.iter().filter(|a| a.is_send()).count()
    }
}

/// What one scheduling quantum did to a session.
#[derive(Debug)]
pub(crate) struct QuantumResult {
    /// Visible communications performed during the quantum.
    pub(crate) actions: usize,
    /// Messages handed to the in-session network (sends).
    pub(crate) sends: usize,
    /// `Some` when the session is over (finished or stalled) — the session
    /// must not be re-queued.
    pub(crate) outcome: Option<SessionOutcome>,
}

/// A session hosted by a worker shard: one [`EndpointTask`] per role, the
/// session's in-memory channels, and a [`CompiledMonitor`] observing every
/// communication.
#[derive(Debug)]
pub(crate) struct ActiveSession {
    id: SessionId,
    protocol: ProtocolId,
    monitor: CompiledMonitor,
    tasks: Vec<(EndpointTask, InMemoryTransport)>,
}

impl ActiveSession {
    /// Builds the session, validating that the endpoints cover the
    /// protocol's participants exactly once each.
    pub(crate) fn new(
        id: SessionId,
        spec: SessionSpec,
        artifacts: &Arc<ProtocolArtifacts>,
    ) -> Result<Self> {
        let mut remaining: Vec<&Role> = artifacts.roles().collect();
        for (cert, _) in &spec.endpoints {
            if cert.protocol_name() != artifacts.name() {
                return Err(ServerError::WrongProtocol {
                    expected: artifacts.name().to_owned(),
                    found: cert.protocol_name().to_owned(),
                });
            }
            let Some(pos) = remaining.iter().position(|r| *r == cert.role()) else {
                return Err(ServerError::UnexpectedEndpoint {
                    role: cert.role().clone(),
                });
            };
            remaining.swap_remove(pos);
        }
        if let Some(role) = remaining.first() {
            return Err(ServerError::MissingEndpoint { role: (*role).clone() });
        }

        let mut network = InMemoryNetwork::new(artifacts.roles().cloned());
        let tasks = spec
            .endpoints
            .into_iter()
            .map(|(cert, externals)| {
                let transport = network
                    .take_endpoint(cert.role())
                    .expect("coverage was validated above");
                let task = EndpointTask::new(
                    cert.proc().clone(),
                    cert.role().clone(),
                    externals,
                    spec.options.clone(),
                );
                (task, transport)
            })
            .collect();
        Ok(ActiveSession {
            id,
            protocol: spec.protocol,
            monitor: CompiledMonitor::new(Arc::clone(artifacts.compiled())),
            tasks,
        })
    }

    /// Runs the session for at most `budget` visible communications.
    ///
    /// Endpoints are stepped round-robin, each until it blocks; the quantum
    /// ends when the budget is exhausted (session re-queued by the caller),
    /// when every endpoint is done, or when a full round-robin pass makes no
    /// progress while tasks are still pending — which, for a self-contained
    /// in-memory session, means no message can ever arrive again: the
    /// remaining endpoints are marked [`EndpointStatus::Stalled`] and the
    /// session is closed.
    ///
    /// [`EndpointStatus::Stalled`]: zooid_runtime::EndpointStatus::Stalled
    pub(crate) fn run_quantum(&mut self, budget: usize) -> QuantumResult {
        let mut actions = 0usize;
        let mut sends = 0usize;
        let ActiveSession { monitor, tasks, .. } = self;
        'quantum: loop {
            let mut progressed = false;
            for (task, transport) in tasks.iter_mut() {
                if task.is_done() {
                    continue;
                }
                loop {
                    if actions >= budget {
                        break 'quantum;
                    }
                    match task.step(transport, &mut |va| {
                        if va.is_send {
                            sends += 1;
                        }
                        monitor.observe(&erase(va));
                    }) {
                        StepOutcome::Progress => {
                            progressed = true;
                            actions += 1;
                        }
                        StepOutcome::WouldBlock { .. } | StepOutcome::Done(_) => break,
                    }
                }
            }
            if tasks.iter().all(|(task, _)| task.is_done()) {
                return QuantumResult {
                    actions,
                    sends,
                    outcome: Some(self.finish(false)),
                };
            }
            if !progressed {
                // Self-contained session with every endpoint blocked: no
                // message will ever arrive again.
                return QuantumResult {
                    actions,
                    sends,
                    outcome: Some(self.finish(true)),
                };
            }
        }
        // Budget exhausted mid-protocol (the task in hand had just made
        // progress, so it cannot be done): the session stays live and the
        // next quantum picks it up where it stopped.
        QuantumResult {
            actions,
            sends,
            outcome: None,
        }
    }

    /// Force-closes a session its scheduler will not run again (server
    /// shutdown): every endpoint still mid-protocol is marked stalled.
    pub(crate) fn close_stalled(mut self) -> SessionOutcome {
        self.finish(true)
    }

    fn finish(&mut self, stalled: bool) -> SessionOutcome {
        let mut endpoints = BTreeMap::new();
        for (mut task, transport) in std::mem::take(&mut self.tasks) {
            if stalled {
                task.mark_stalled();
            }
            let report = task.into_report();
            endpoints.insert(report.role.clone(), report);
            drop(transport);
        }
        SessionOutcome {
            id: self.id,
            protocol: self.protocol,
            endpoints,
            global_trace: self.monitor.trace().clone(),
            compliant: self.monitor.is_compliant(),
            complete: self.monitor.is_complete(),
            violations: self.monitor.violations().to_vec(),
            stalled,
        }
    }
}
