//! Error types for the session server.

use std::fmt;

use zooid_mpst::Role;

/// A specialised `Result` for server operations.
pub type Result<T> = std::result::Result<T, ServerError>;

/// Errors produced by the protocol registry and the session server.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServerError {
    /// The protocol failed well-formedness, projection or certification.
    Dsl(zooid_dsl::DslError),
    /// The protocol's machines could not be compiled or composed.
    Cfsm(zooid_cfsm::CfsmError),
    /// A different protocol is already registered under this name.
    DuplicateProtocol {
        /// The contested name.
        name: String,
    },
    /// The referenced protocol id is not registered.
    UnknownProtocol,
    /// A session spec has no implementation for one of the protocol's
    /// participants.
    MissingEndpoint {
        /// The uncovered role.
        role: Role,
    },
    /// A session spec provides an endpoint for a role twice, or for a role
    /// that is not a participant of the protocol.
    UnexpectedEndpoint {
        /// The offending role.
        role: Role,
    },
    /// An endpoint was certified against a different protocol than the one
    /// the session was started for.
    WrongProtocol {
        /// The protocol the session runs.
        expected: String,
        /// The protocol the endpoint was certified for.
        found: String,
    },
    /// A local type cannot be turned into a skeleton process (its sends
    /// require payload sorts with no canonical default value).
    Unsupported {
        /// Why synthesis gave up.
        reason: String,
    },
    /// The server's worker shards are gone (already shut down).
    Shutdown,
    /// The networked serving plane hit a socket-level failure (bind,
    /// listen).
    Net {
        /// The underlying IO error, rendered.
        reason: String,
    },
    /// A runtime-layer failure surfaced through the server API — a
    /// migrated checkpoint that fails to decode or re-certify, or a
    /// transport error while checkpointing a live session.
    Runtime(zooid_runtime::RuntimeError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Dsl(e) => write!(f, "protocol error: {e}"),
            ServerError::Cfsm(e) => write!(f, "machine compilation error: {e}"),
            ServerError::DuplicateProtocol { name } => {
                write!(f, "a different protocol is already registered as `{name}`")
            }
            ServerError::UnknownProtocol => write!(f, "unknown protocol id"),
            ServerError::MissingEndpoint { role } => {
                write!(f, "no endpoint implementation for role `{role}`")
            }
            ServerError::UnexpectedEndpoint { role } => {
                write!(f, "unexpected endpoint implementation for role `{role}`")
            }
            ServerError::WrongProtocol { expected, found } => write!(
                f,
                "endpoint certified for protocol `{found}` used in a session of `{expected}`"
            ),
            ServerError::Unsupported { reason } => write!(f, "unsupported: {reason}"),
            ServerError::Shutdown => write!(f, "the server has been shut down"),
            ServerError::Net { reason } => write!(f, "network error: {reason}"),
            ServerError::Runtime(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Dsl(e) => Some(e),
            ServerError::Cfsm(e) => Some(e),
            ServerError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<zooid_dsl::DslError> for ServerError {
    fn from(e: zooid_dsl::DslError) -> Self {
        ServerError::Dsl(e)
    }
}

impl From<zooid_cfsm::CfsmError> for ServerError {
    fn from(e: zooid_cfsm::CfsmError) -> Self {
        ServerError::Cfsm(e)
    }
}

impl From<zooid_runtime::RuntimeError> for ServerError {
    fn from(e: zooid_runtime::RuntimeError) -> Self {
        ServerError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let cases: Vec<ServerError> = vec![
            ServerError::DuplicateProtocol { name: "ring".into() },
            ServerError::UnknownProtocol,
            ServerError::MissingEndpoint { role: Role::new("p") },
            ServerError::UnexpectedEndpoint { role: Role::new("p") },
            ServerError::WrongProtocol {
                expected: "a".into(),
                found: "b".into(),
            },
            ServerError::Unsupported { reason: "sum sorts".into() },
            ServerError::Shutdown,
            ServerError::Net {
                reason: "address in use".into(),
            },
            ServerError::Runtime(zooid_runtime::RuntimeError::Recovery {
                reason: "checkpoint magic mismatch".into(),
            }),
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
            assert!(!msg.ends_with('.'), "{msg}");
        }
    }
}
