//! The protocol registry: compile each registered protocol once, share the
//! artifacts with every session.
//!
//! Registration runs the whole front half of the pipeline — well-formedness
//! (already checked by [`Protocol::new`]), projection onto every participant,
//! per-role CFSM compilation and [`System::compile`] — and caches the result
//! behind an `Arc` keyed by a dense [`ProtocolId`]. Starting a session is
//! then a lookup plus a few clones of interned tables' handles: the paper's
//! per-session analysis cost is paid exactly once per protocol, no matter
//! how many thousands of sessions of it the server hosts.

use std::collections::HashMap;
use std::sync::Arc;

use zooid_cfsm::{Cfsm, CompiledSystem, System};
use zooid_dsl::Protocol;
use zooid_mpst::local::LocalType;
use zooid_mpst::Role;

use crate::error::{Result, ServerError};

/// Dense id of a registered protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProtocolId(pub(crate) u32);

impl ProtocolId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Everything the server needs to run sessions of one protocol, compiled
/// once at registration time.
#[derive(Debug)]
pub struct ProtocolArtifacts {
    id: ProtocolId,
    protocol: Protocol,
    locals: Vec<(Role, LocalType)>,
    compiled: Arc<CompiledSystem>,
}

impl ProtocolArtifacts {
    /// The protocol's registry id.
    pub fn id(&self) -> ProtocolId {
        self.id
    }

    /// The registered protocol.
    pub fn protocol(&self) -> &Protocol {
        &self.protocol
    }

    /// The protocol's name.
    pub fn name(&self) -> &str {
        self.protocol.name()
    }

    /// The participants, with the projection of the protocol onto each.
    pub fn locals(&self) -> &[(Role, LocalType)] {
        &self.locals
    }

    /// The participants of the protocol.
    pub fn roles(&self) -> impl Iterator<Item = &Role> {
        self.locals.iter().map(|(role, _)| role)
    }

    /// The compiled per-role transition tables, shared by every session's
    /// [`CompiledMonitor`](zooid_runtime::CompiledMonitor).
    pub fn compiled(&self) -> &Arc<CompiledSystem> {
        &self.compiled
    }
}

/// A registry of compiled protocols.
///
/// # Examples
///
/// ```
/// use zooid_dsl::Protocol;
/// use zooid_mpst::generators;
/// use zooid_server::ProtocolRegistry;
///
/// let mut registry = ProtocolRegistry::new();
/// let id = registry.register(Protocol::new("ring", generators::ring3()).unwrap()).unwrap();
/// assert_eq!(registry.get(id).unwrap().name(), "ring");
/// // Re-registering the same protocol is idempotent.
/// let again = registry.register(Protocol::new("ring", generators::ring3()).unwrap()).unwrap();
/// assert_eq!(id, again);
/// ```
#[derive(Debug, Default)]
pub struct ProtocolRegistry {
    ids: HashMap<String, ProtocolId>,
    artifacts: Vec<Arc<ProtocolArtifacts>>,
}

impl ProtocolRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ProtocolRegistry::default()
    }

    /// Registers a protocol, compiling its artifacts (projection, per-role
    /// machines, dense transition tables) exactly once.
    ///
    /// Registering the same (name, global type) again returns the existing
    /// id without recompiling.
    ///
    /// # Errors
    ///
    /// Fails if a *different* protocol already uses the name, or if the
    /// protocol is not projectable onto one of its participants.
    pub fn register(&mut self, protocol: Protocol) -> Result<ProtocolId> {
        if let Some(&id) = self.ids.get(protocol.name()) {
            if self.artifacts[id.index()].protocol.global() == protocol.global() {
                return Ok(id);
            }
            return Err(ServerError::DuplicateProtocol {
                name: protocol.name().to_owned(),
            });
        }
        let locals = protocol.project_all()?;
        let machines = locals
            .iter()
            .map(|(role, local)| Cfsm::from_local_type(role.clone(), local))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        let system = System::new(machines)?;
        let compiled = Arc::new(system.compile());
        let id = ProtocolId(u32::try_from(self.artifacts.len()).expect("registry overflow"));
        self.ids.insert(protocol.name().to_owned(), id);
        self.artifacts.push(Arc::new(ProtocolArtifacts {
            id,
            protocol,
            locals,
            compiled,
        }));
        Ok(id)
    }

    /// The artifacts of a registered protocol.
    pub fn get(&self, id: ProtocolId) -> Option<&Arc<ProtocolArtifacts>> {
        self.artifacts.get(id.index())
    }

    /// Looks a protocol up by name.
    pub fn lookup(&self, name: &str) -> Option<ProtocolId> {
        self.ids.get(name).copied()
    }

    /// Number of registered protocols.
    pub fn len(&self) -> usize {
        self.artifacts.len()
    }

    /// Returns `true` if no protocol has been registered.
    pub fn is_empty(&self) -> bool {
        self.artifacts.is_empty()
    }

    /// Iterates over the registered artifacts in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<ProtocolArtifacts>> {
        self.artifacts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zooid_mpst::generators;

    #[test]
    fn registration_compiles_projections_and_machines() {
        let mut registry = ProtocolRegistry::new();
        let id = registry
            .register(Protocol::new("ring", generators::ring3()).unwrap())
            .unwrap();
        let artifacts = registry.get(id).unwrap();
        assert_eq!(artifacts.locals().len(), 3);
        assert_eq!(artifacts.compiled().machine_count(), 3);
        assert_eq!(registry.lookup("ring"), Some(id));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn conflicting_names_are_rejected_but_reregistration_is_idempotent() {
        let mut registry = ProtocolRegistry::new();
        let id = registry
            .register(Protocol::new("p", generators::ring3()).unwrap())
            .unwrap();
        let again = registry
            .register(Protocol::new("p", generators::ring3()).unwrap())
            .unwrap();
        assert_eq!(id, again);
        assert_eq!(registry.len(), 1);
        let conflicting = Protocol::new("p", generators::two_buyer()).unwrap();
        assert!(matches!(
            registry.register(conflicting),
            Err(ServerError::DuplicateProtocol { .. })
        ));
    }

    #[test]
    fn unprojectable_protocols_fail_at_registration() {
        use zooid_mpst::global::GlobalType;
        use zooid_mpst::{Label, Sort};
        let r = Role::new;
        let g = GlobalType::msg(
            r("Alice"),
            r("Bob"),
            vec![
                (
                    Label::new("l1"),
                    Sort::Nat,
                    GlobalType::msg1(r("Bob"), r("Carol"), "l", Sort::Nat, GlobalType::End),
                ),
                (
                    Label::new("l2"),
                    Sort::Nat,
                    GlobalType::msg1(r("Alice"), r("Carol"), "l", Sort::Nat, GlobalType::End),
                ),
            ],
        );
        let mut registry = ProtocolRegistry::new();
        assert!(matches!(
            registry.register(Protocol::new("bad-merge", g).unwrap()),
            Err(ServerError::Dsl(_))
        ));
    }

    #[test]
    fn unknown_ids_return_none() {
        let registry = ProtocolRegistry::new();
        assert!(registry.get(ProtocolId(0)).is_none());
        assert!(registry.lookup("nope").is_none());
        assert!(registry.is_empty());
    }
}
