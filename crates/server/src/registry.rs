//! The protocol registry: compile each registered protocol once, share the
//! artifacts with every session.
//!
//! Registration runs the whole front half of the pipeline — well-formedness
//! (already checked by [`Protocol::new`]), projection onto every participant,
//! per-role CFSM compilation, [`System::compile`] and a **safety check** of
//! the compiled system (the parallel reduced exploration of the CFSM
//! engine, under a configurable [`SafetyBudget`]) — and caches the result
//! behind an `Arc` keyed by a dense [`ProtocolId`]. Starting a session is
//! then a lookup plus a few clones of interned tables' handles: the paper's
//! per-session analysis cost is paid exactly once per protocol, no matter
//! how many thousands of sessions of it the server hosts.
//!
//! The compile/check cache is keyed on the **interned global-type id** (the
//! registry owns a [`zooid_mpst::Interner`] for exactly this), so
//! registering a structurally identical protocol — same name or a new one —
//! is a pure lookup: no re-projection, no recompilation, no re-exploration.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use zooid_cfsm::{Cfsm, CompiledSystem, System, Verdict};
use zooid_dsl::{CertifiedProcess, Protocol};
use zooid_mpst::common::intern::TypeId;
use zooid_mpst::local::LocalType;
use zooid_mpst::{Interner, Role};
use zooid_proc::{CompiledProc, Externals, Proc};
use zooid_runtime::cbatch::BatchLayout;
use zooid_runtime::cexec::EndpointProgram;

use crate::error::{Result, ServerError};

/// Upper bound on cached compiled endpoint programs per protocol: sessions
/// normally submit one implementation per role, so the cache stays tiny; a
/// workload cycling through many distinct implementations of one protocol
/// compiles the excess ones per session instead of growing without bound.
const PROGRAM_CACHE_CAP: usize = 64;

/// Budget of the registration-time safety check: channel bound,
/// visited-configuration cap and worker-thread count handed to the reduced
/// CFSM exploration ([`zooid_cfsm::CompiledSystem::explore_por`] at one
/// thread, [`zooid_cfsm::CompiledSystem::explore_parallel`] beyond).
///
/// The default (bound 2, 50k configurations, 1 thread) keeps registration
/// latency flat for ordinary protocols; deployments registering large
/// concurrent protocols can raise the cap and the thread count. A capped
/// search never reports a false `Safe`: running out of budget yields
/// [`Verdict::Inconclusive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SafetyBudget {
    /// FIFO bound per ordered role pair during exploration (0 = rendezvous).
    pub channel_bound: usize,
    /// Maximum visited configurations before the verdict degrades to
    /// [`Verdict::Inconclusive`].
    pub max_configs: usize,
    /// Worker threads of the exploration. At most 1 runs the sequential
    /// reduced engine ([`zooid_cfsm::CompiledSystem::explore_por`]) on the
    /// registering thread; 2 or more spawn the work-stealing pool.
    pub threads: usize,
}

impl Default for SafetyBudget {
    fn default() -> Self {
        SafetyBudget {
            channel_bound: 2,
            max_configs: 50_000,
            threads: 1,
        }
    }
}

/// Structure-keyed compilation artifacts shared by every registration of
/// the same global type (under any name).
#[derive(Debug, Clone)]
struct CompiledEntry {
    locals: Arc<[(Role, LocalType)]>,
    /// The participants, sorted — the shared role table every session's
    /// [`zooid_runtime::transport::InMemoryNetwork`] is built from without
    /// re-sorting or re-allocating.
    sorted_roles: Arc<[Role]>,
    compiled: Arc<CompiledSystem>,
    verdict: Verdict,
}

/// Dense id of a registered protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProtocolId(pub(crate) u32);

impl ProtocolId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Everything the server needs to run sessions of one protocol, compiled
/// once at registration time.
#[derive(Debug)]
pub struct ProtocolArtifacts {
    id: ProtocolId,
    /// Interned id of the protocol's global type: equal ids ⟺ structurally
    /// identical protocols (within this registry), the key of the
    /// compile/check cache.
    tid: TypeId,
    protocol: Protocol,
    locals: Arc<[(Role, LocalType)]>,
    sorted_roles: Arc<[Role]>,
    compiled: Arc<CompiledSystem>,
    verdict: Verdict,
    /// Compiled endpoint programs ([`EndpointProgram`]), cached per
    /// `(role, process)`: every session submitting the same implementation
    /// of a role shares one lowered program with its action templates
    /// pre-interned against `compiled`. Lazily filled (sessions bring their
    /// own processes), hence the interior mutability.
    programs: Mutex<Vec<(Role, Proc, Arc<EndpointProgram>)>>,
    /// Batchable-layout descriptors ([`BatchLayout`]), cached per resolved
    /// program set. The key holds the `Arc`s themselves (compared by
    /// pointer identity) — keeping the programs alive is what makes the
    /// identity comparison sound against allocator address reuse. `None` is
    /// cached too: a program set that is not batch-eligible is not
    /// re-analysed per session.
    batch_layouts: Mutex<Vec<(Vec<Arc<EndpointProgram>>, Option<Arc<BatchLayout>>)>>,
}

impl ProtocolArtifacts {
    /// The protocol's registry id.
    pub fn id(&self) -> ProtocolId {
        self.id
    }

    /// The registered protocol.
    pub fn protocol(&self) -> &Protocol {
        &self.protocol
    }

    /// The protocol's name.
    pub fn name(&self) -> &str {
        self.protocol.name()
    }

    /// The participants, with the projection of the protocol onto each.
    pub fn locals(&self) -> &[(Role, LocalType)] {
        &self.locals
    }

    /// The participants of the protocol.
    pub fn roles(&self) -> impl Iterator<Item = &Role> {
        self.locals.iter().map(|(role, _)| role)
    }

    /// The participants, sorted, behind a shared `Arc` — every session's
    /// in-memory network is built directly on this table.
    pub(crate) fn sorted_roles(&self) -> &Arc<[Role]> {
        &self.sorted_roles
    }

    /// The compiled per-role transition tables, shared by every session's
    /// [`CompiledMonitor`](zooid_runtime::CompiledMonitor).
    pub fn compiled(&self) -> &Arc<CompiledSystem> {
        &self.compiled
    }

    /// The verdict of the registration-time safety check (deadlocks, orphan
    /// messages, reception errors) under the registry's [`SafetyBudget`].
    ///
    /// Projectable protocols come out [`Verdict::Safe`] unless the budget
    /// was exhausted first, in which case this is
    /// [`Verdict::Inconclusive`] — never a false `Safe`.
    pub fn safety_verdict(&self) -> Verdict {
        self.verdict
    }

    /// The compiled endpoint program for one `(role, process)` pair —
    /// compile-once-per-implementation, shared across every session that
    /// submits it.
    ///
    /// Returns `None` when the process does not lower (a jump without an
    /// enclosing loop, a loop that can never reach a communication): the
    /// caller falls back to the tree-walking executor, which reports the
    /// corresponding runtime failure.
    ///
    /// `externals` only contributes declared signatures to the static-sort
    /// hints; the cache deliberately ignores it — a program compiled under
    /// one `Externals` runs correctly under any other (see
    /// [`CompiledProc::compile`]).
    pub fn endpoint_program(
        &self,
        role: &Role,
        proc: &Proc,
        externals: &Externals,
    ) -> Option<Arc<EndpointProgram>> {
        let lookup = |cache: &Vec<(Role, Proc, Arc<EndpointProgram>)>| {
            cache
                .iter()
                .find(|(cached_role, cached_proc, _)| cached_role == role && cached_proc == proc)
                .map(|(_, _, program)| Arc::clone(program))
        };
        if let Some(program) = lookup(&self.programs.lock().unwrap_or_else(|e| e.into_inner())) {
            return Some(program);
        }
        // Compile outside the lock: a miss must not stall the other shards'
        // session construction for the whole lowering. Losing the race just
        // means two structurally identical programs briefly exist; the
        // cache keeps the first.
        let compiled = CompiledProc::compile(proc, role, externals).ok()?;
        let program = Arc::new(EndpointProgram::with_system(
            Arc::new(compiled),
            &self.compiled,
        ));
        let mut cache = self.programs.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = lookup(&cache) {
            return Some(existing);
        }
        if cache.len() < PROGRAM_CACHE_CAP {
            cache.push((role.clone(), proc.clone(), Arc::clone(&program)));
        }
        Some(program)
    }

    /// The shared [`BatchLayout`] for a session's endpoints, or `None` when
    /// the combination is not batch-eligible (a process that does not
    /// lower, calls externals, or has a communication site without a
    /// statically known sort): the caller keeps the session on the slab
    /// executor.
    ///
    /// The endpoints may come in any order; the layout's role order is the
    /// protocol's sorted role table. Results — including `None` — are
    /// cached per resolved program set, so the steady state is one lock and
    /// a handful of pointer comparisons per session.
    pub(crate) fn batch_layout(
        &self,
        endpoints: &[(CertifiedProcess, Externals)],
    ) -> Option<Arc<BatchLayout>> {
        let roles = self.sorted_roles();
        let mut resolved: Vec<Option<Arc<EndpointProgram>>> = vec![None; roles.len()];
        for (cert, externals) in endpoints {
            let pos = roles.binary_search(cert.role()).ok()?;
            resolved[pos] = Some(self.endpoint_program(cert.role(), cert.proc(), externals)?);
        }
        let programs: Vec<Arc<EndpointProgram>> = resolved.into_iter().collect::<Option<_>>()?;
        let lookup = |cache: &Vec<(Vec<Arc<EndpointProgram>>, Option<Arc<BatchLayout>>)>| {
            cache
                .iter()
                .find(|(key, _)| {
                    key.len() == programs.len()
                        && key.iter().zip(&programs).all(|(a, b)| Arc::ptr_eq(a, b))
                })
                .map(|(_, layout)| layout.clone())
        };
        if let Some(cached) = lookup(&self.batch_layouts.lock().unwrap_or_else(|e| e.into_inner()))
        {
            return cached;
        }
        let layout = BatchLayout::new(
            Arc::clone(roles),
            programs.clone(),
            Arc::clone(&self.compiled),
        );
        let mut cache = self.batch_layouts.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(cached) = lookup(&cache) {
            return cached;
        }
        if cache.len() < PROGRAM_CACHE_CAP {
            cache.push((programs, layout.clone()));
        }
        layout
    }
}

/// A registry of compiled protocols.
///
/// # Examples
///
/// ```
/// use zooid_dsl::Protocol;
/// use zooid_mpst::generators;
/// use zooid_server::ProtocolRegistry;
///
/// let mut registry = ProtocolRegistry::new();
/// let id = registry.register(Protocol::new("ring", generators::ring3()).unwrap()).unwrap();
/// assert_eq!(registry.get(id).unwrap().name(), "ring");
/// // Re-registering the same protocol is idempotent.
/// let again = registry.register(Protocol::new("ring", generators::ring3()).unwrap()).unwrap();
/// assert_eq!(id, again);
/// ```
#[derive(Debug, Default)]
pub struct ProtocolRegistry {
    ids: HashMap<String, ProtocolId>,
    artifacts: Vec<Arc<ProtocolArtifacts>>,
    /// Interns registered global types; equal [`TypeId`]s ⟺ structurally
    /// identical protocols, so both the duplicate-name check and the
    /// compile/check cache are id comparisons, not deep tree walks.
    interner: Interner,
    /// Compilation + safety artifacts per distinct global type.
    compiled: HashMap<TypeId, CompiledEntry>,
    budget: SafetyBudget,
}

impl ProtocolRegistry {
    /// An empty registry with the default [`SafetyBudget`].
    pub fn new() -> Self {
        ProtocolRegistry::default()
    }

    /// An empty registry whose registrations are safety-checked under
    /// `budget`.
    pub fn with_safety_budget(budget: SafetyBudget) -> Self {
        ProtocolRegistry {
            budget,
            ..ProtocolRegistry::default()
        }
    }

    /// The safety budget applied at registration time.
    pub fn safety_budget(&self) -> SafetyBudget {
        self.budget
    }

    /// Registers a protocol, compiling its artifacts (projection, per-role
    /// machines, dense transition tables) and safety-checking the compiled
    /// system (parallel reduced exploration under the registry's
    /// [`SafetyBudget`]) exactly once per *structurally distinct* global
    /// type.
    ///
    /// Registering the same (name, global type) again returns the existing
    /// id; registering the same global type under a new name is a pure
    /// cache lookup keyed on the interned type id — the new entry shares
    /// the compiled tables, projections and safety verdict of the first.
    ///
    /// # Errors
    ///
    /// Fails if a *different* protocol already uses the name, or if the
    /// protocol is not projectable onto one of its participants.
    pub fn register(&mut self, protocol: Protocol) -> Result<ProtocolId> {
        let tid = self.interner.intern_global(protocol.global());
        if let Some(&id) = self.ids.get(protocol.name()) {
            if self.artifacts[id.index()].tid == tid {
                return Ok(id);
            }
            return Err(ServerError::DuplicateProtocol {
                name: protocol.name().to_owned(),
            });
        }
        let entry = match self.compiled.get(&tid) {
            Some(entry) => entry.clone(),
            None => {
                let locals: Arc<[(Role, LocalType)]> = protocol.project_all()?.into();
                let mut sorted: Vec<Role> = locals.iter().map(|(role, _)| role.clone()).collect();
                sorted.sort();
                sorted.dedup();
                let sorted_roles: Arc<[Role]> = sorted.into();
                let machines = locals
                    .iter()
                    .map(|(role, local)| Cfsm::from_local_type(role.clone(), local))
                    .collect::<std::result::Result<Vec<_>, _>>()?;
                let system = System::new(machines)?;
                let compiled = Arc::new(system.compile());
                // Same reduced search, same verdict (differentially
                // tested); the single-threaded budget takes the sequential
                // engine and skips the shard/deque machinery outright.
                let outcome = if self.budget.threads <= 1 {
                    compiled.explore_por(self.budget.channel_bound, self.budget.max_configs)
                } else {
                    compiled.explore_parallel(
                        self.budget.channel_bound,
                        self.budget.max_configs,
                        self.budget.threads,
                    )
                };
                let verdict = outcome.verdict();
                let entry = CompiledEntry {
                    locals,
                    sorted_roles,
                    compiled,
                    verdict,
                };
                self.compiled.insert(tid, entry.clone());
                entry
            }
        };
        let id = ProtocolId(u32::try_from(self.artifacts.len()).expect("registry overflow"));
        self.ids.insert(protocol.name().to_owned(), id);
        self.artifacts.push(Arc::new(ProtocolArtifacts {
            id,
            tid,
            protocol,
            locals: entry.locals,
            sorted_roles: entry.sorted_roles,
            compiled: entry.compiled,
            verdict: entry.verdict,
            programs: Mutex::new(Vec::new()),
            batch_layouts: Mutex::new(Vec::new()),
        }));
        Ok(id)
    }

    /// The artifacts of a registered protocol.
    pub fn get(&self, id: ProtocolId) -> Option<&Arc<ProtocolArtifacts>> {
        self.artifacts.get(id.index())
    }

    /// Looks a protocol up by name.
    pub fn lookup(&self, name: &str) -> Option<ProtocolId> {
        self.ids.get(name).copied()
    }

    /// Number of registered protocols.
    pub fn len(&self) -> usize {
        self.artifacts.len()
    }

    /// Returns `true` if no protocol has been registered.
    pub fn is_empty(&self) -> bool {
        self.artifacts.is_empty()
    }

    /// Iterates over the registered artifacts in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<ProtocolArtifacts>> {
        self.artifacts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zooid_mpst::generators;

    #[test]
    fn registration_compiles_projections_and_machines() {
        let mut registry = ProtocolRegistry::new();
        let id = registry
            .register(Protocol::new("ring", generators::ring3()).unwrap())
            .unwrap();
        let artifacts = registry.get(id).unwrap();
        assert_eq!(artifacts.locals().len(), 3);
        assert_eq!(artifacts.compiled().machine_count(), 3);
        assert_eq!(registry.lookup("ring"), Some(id));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn conflicting_names_are_rejected_but_reregistration_is_idempotent() {
        let mut registry = ProtocolRegistry::new();
        let id = registry
            .register(Protocol::new("p", generators::ring3()).unwrap())
            .unwrap();
        let again = registry
            .register(Protocol::new("p", generators::ring3()).unwrap())
            .unwrap();
        assert_eq!(id, again);
        assert_eq!(registry.len(), 1);
        let conflicting = Protocol::new("p", generators::two_buyer()).unwrap();
        assert!(matches!(
            registry.register(conflicting),
            Err(ServerError::DuplicateProtocol { .. })
        ));
    }

    #[test]
    fn unprojectable_protocols_fail_at_registration() {
        use zooid_mpst::global::GlobalType;
        use zooid_mpst::{Label, Sort};
        let r = Role::new;
        let g = GlobalType::msg(
            r("Alice"),
            r("Bob"),
            vec![
                (
                    Label::new("l1"),
                    Sort::Nat,
                    GlobalType::msg1(r("Bob"), r("Carol"), "l", Sort::Nat, GlobalType::End),
                ),
                (
                    Label::new("l2"),
                    Sort::Nat,
                    GlobalType::msg1(r("Alice"), r("Carol"), "l", Sort::Nat, GlobalType::End),
                ),
            ],
        );
        let mut registry = ProtocolRegistry::new();
        assert!(matches!(
            registry.register(Protocol::new("bad-merge", g).unwrap()),
            Err(ServerError::Dsl(_))
        ));
    }

    #[test]
    fn structurally_identical_protocols_share_artifacts_across_names() {
        let mut registry = ProtocolRegistry::new();
        let a = registry
            .register(Protocol::new("ring-a", generators::ring3()).unwrap())
            .unwrap();
        let b = registry
            .register(Protocol::new("ring-b", generators::ring3()).unwrap())
            .unwrap();
        assert_ne!(a, b, "distinct names get distinct ids");
        let (fa, fb) = (registry.get(a).unwrap(), registry.get(b).unwrap());
        // The compile/check cache is keyed on the interned global-type id:
        // the second registration reuses the first's compiled tables and
        // projections outright instead of recomputing them.
        assert!(Arc::ptr_eq(fa.compiled(), fb.compiled()));
        assert_eq!(fa.safety_verdict(), fb.safety_verdict());
        assert!(std::ptr::eq(fa.locals().as_ptr(), fb.locals().as_ptr()));
    }

    #[test]
    fn registration_records_a_safety_verdict() {
        let mut registry = ProtocolRegistry::new();
        let id = registry
            .register(Protocol::new("ring", generators::ring3()).unwrap())
            .unwrap();
        assert_eq!(registry.get(id).unwrap().safety_verdict(), Verdict::Safe);
        assert_eq!(registry.safety_budget(), SafetyBudget::default());
    }

    #[test]
    fn an_exhausted_budget_reads_inconclusive_not_safe() {
        let mut registry = ProtocolRegistry::with_safety_budget(SafetyBudget {
            channel_bound: 2,
            max_configs: 1,
            threads: 2,
        });
        let id = registry
            .register(Protocol::new("ring", generators::ring3()).unwrap())
            .unwrap();
        assert_eq!(
            registry.get(id).unwrap().safety_verdict(),
            Verdict::Inconclusive
        );
    }

    #[test]
    fn unknown_ids_return_none() {
        let registry = ProtocolRegistry::new();
        assert!(registry.get(ProtocolId(0)).is_none());
        assert!(registry.lookup("nope").is_none());
        assert!(registry.is_empty());
    }
}
