//! The event-driven networked serving plane: sessions over real sockets.
//!
//! [`NetServer`] puts the in-memory [`SessionServer`] behind a TCP front
//! door. One IO thread owns a non-blocking listener and every client
//! connection, multiplexed with the readiness-poll loop from
//! [`zooid_runtime::poll`] — no thread per connection, no parked accepts.
//! Clients speak the framed wire protocol of [`zooid_runtime::wire`]: each
//! frame is a `u32` length prefix (capped — hostile lengths are structured
//! errors, not allocations) followed by a [`MuxFrame`], and many sessions
//! share one connection through client-chosen session ids echoed on every
//! response.
//!
//! The data path is event-driven end to end: a readable socket is pumped
//! into its connection's [`FrameReader`]; each complete `Open` frame is an
//! admission decision and — when admitted — a [`SessionSpec`] submitted to
//! the shard scheduler, which enqueues the session for a quantum on its
//! worker shard. Finished sessions come back through the server's
//! non-blocking outcome poll and leave as `Done` frames on the owning
//! connection's buffered writer. Sockets, admissions and completions all
//! interleave on the one loop thread.
//!
//! # Backpressure and admission control
//!
//! * **Bounded accept queue** — at most [`ACCEPTS_PER_SWEEP`] connections
//!   are admitted per loop iteration, and a connection beyond
//!   [`NetServerConfig::max_connections`] is refused with a structured
//!   [`RejectCode::ConnectionLimit`] frame before its socket is closed.
//!   The refusal itself is non-blocking: the socket lingers in the loop as
//!   a write-only entry just long enough to flush the frame (bounded by
//!   [`MAX_PENDING_REJECTS`] and [`REJECT_LINGER`]), so a connect flood at
//!   the limit cannot stall live connections.
//! * **Per-connection in-flight cap** — a connection may have at most
//!   [`NetServerConfig::max_inflight_per_conn`] sessions open; further
//!   `Open`s are shed with [`RejectCode::SessionLimit`].
//! * **Bounded write buffers** — a client that triggers response frames
//!   faster than it reads them is disconnected once its userspace write
//!   backlog passes [`NetServerConfig::max_conn_outbuf_bytes`]; a
//!   non-reading hostile client cannot grow server memory without bound.
//! * **Global load shed** — past
//!   [`NetServerConfig::max_inflight_total`] in-flight sessions the server
//!   sheds every `Open` with [`RejectCode::Overloaded`] instead of letting
//!   the shard queues grow without bound.
//! * **Hostile framing** — an oversized length prefix or an undecodable
//!   frame draws one [`RejectCode::BadFrame`] rejection and closes the
//!   connection; the server itself stays healthy (see the counters in
//!   [`NetReport`]).
//! * **Idle reaper** — a connection that never delivers a decodable frame
//!   within [`NetServerConfig::idle_timeout`] is closed with a
//!   [`CloseReason::Idle`] flight event; silent peers cannot hold slots.
//! * **Quarantine teardown** — with
//!   [`NetServerConfig::close_on_quarantine`] set, a session the shards
//!   quarantined also costs its opener the connection: `Done`, then a
//!   [`RejectCode::Quarantined`] rejection, then the close.

use std::collections::BTreeMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use zooid_dsl::CertifiedProcess;
use zooid_proc::Externals;
use zooid_runtime::exec::ExecOptions;
use zooid_runtime::poll::{Poller, Readiness};
use zooid_runtime::wire::{
    decode_mux, encode_mux, put_frame, FillStatus, FrameReader, MuxFrame, RejectCode,
};
use zooid_runtime::RuntimeError;

use crate::metrics::{NetMetrics, NetReport, NetServerReport};
use crate::obs::{
    CloseReason, FlightEvent, FlightRecorder, Histogram, Incident, StatsSnapshot, FLIGHT_CAPACITY,
};
use crate::registry::{ProtocolId, ProtocolRegistry};
use crate::server::{ServerConfig, SessionServer};
use crate::session::{SessionId, SessionSpec};
use crate::{Result, ServerError};

/// Maximum connections admitted in one event-loop sweep: the bounded
/// accept queue. Pending peers stay in the kernel backlog until the next
/// iteration, so a connect storm cannot starve in-flight sessions.
const ACCEPTS_PER_SWEEP: usize = 64;

/// Poll timeout per loop iteration: bounds how stale the loop's view of
/// pending accepts and finished sessions can get while every socket idles.
const SWEEP_TIMEOUT: Duration = Duration::from_millis(1);

/// How long a connection refused at accept time may linger (non-blocking,
/// write-only) so the peer can read its `ConnectionLimit` rejection before
/// the close.
const REJECT_LINGER: Duration = Duration::from_millis(250);

/// Cap on simultaneously lingering refused connections: a connect flood at
/// the connection limit beyond this is dropped without the courtesy frame
/// instead of tying up loop state.
const MAX_PENDING_REJECTS: usize = 128;

/// How many inbound bytes a closing connection discards per sweep. Reading
/// (and throwing away) the peer's in-flight bytes keeps the final close
/// from turning into a RST that could destroy the queued rejection frame.
const DISCARD_PER_SWEEP: usize = 64 * 1024;

/// One entry of the service catalog: what to run when a client opens a
/// session of a protocol.
///
/// The serving plane is a *submission* plane: the server hosts every
/// endpoint of the session on its shards (the endpoints are certified at
/// registration time), and the wire carries session control — open,
/// accept/reject, done — not individual payload messages.
#[derive(Debug, Clone)]
pub struct Service {
    /// The registered protocol this service runs.
    pub protocol: ProtocolId,
    /// One certified endpoint per participant.
    pub endpoints: Arc<[(CertifiedProcess, Externals)]>,
    /// Execution options for every session of this service.
    pub options: ExecOptions,
}

impl Service {
    /// Builds the deterministic skeleton service (first-branch sends,
    /// default payloads) for a registered protocol.
    ///
    /// # Errors
    ///
    /// Fails if the protocol id is unknown or its projections need payload
    /// sorts with no default value.
    pub fn skeleton(registry: &ProtocolRegistry, protocol: ProtocolId) -> Result<Service> {
        let artifacts = registry.get(protocol).ok_or(ServerError::UnknownProtocol)?;
        let endpoints = crate::synth::skeleton_endpoints(artifacts.protocol())?;
        Ok(Service {
            protocol,
            endpoints: endpoints.into(),
            options: ExecOptions::default(),
        })
    }

    /// Limits every session of this service to `max_steps` communications
    /// per endpoint (required for looping protocols).
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.options = ExecOptions::with_max_steps(max_steps);
        self
    }
}

/// Configuration of a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Address to bind (use port 0 for an ephemeral test port).
    pub addr: SocketAddr,
    /// Shard scheduler configuration for the hosted [`SessionServer`].
    pub server: ServerConfig,
    /// Connections beyond this are refused with `ConnectionLimit`.
    pub max_connections: usize,
    /// Per-connection cap on sessions opened but not yet done; beyond it
    /// `Open`s are shed with `SessionLimit`.
    pub max_inflight_per_conn: usize,
    /// Global cap on in-flight sessions; beyond it `Open`s are shed with
    /// `Overloaded`.
    pub max_inflight_total: usize,
    /// Per-frame payload cap on every connection (default 16 MiB).
    pub max_frame_bytes: usize,
    /// High-water mark on a connection's buffered-but-unflushed outbound
    /// bytes: a client that triggers response frames faster than it reads
    /// them is disconnected when its backlog passes this (default 256 KiB).
    pub max_conn_outbuf_bytes: usize,
    /// A connection that has never delivered a decodable frame is reaped
    /// after this long (default 30 s): a peer that connects and goes
    /// silent cannot hold a slot forever. The deadline is disarmed by the
    /// first decoded frame.
    pub idle_timeout: Duration,
    /// When set, a session quarantined by the shards also tears down the
    /// TCP connection that opened it: the client sees its `Done` frame,
    /// then a [`RejectCode::Quarantined`] rejection, then the close
    /// (default `false` — quarantine stays a scheduler-side containment).
    pub close_on_quarantine: bool,
    /// Reject-then-ban: once a connection has accumulated this many
    /// quarantined sessions (byzantine *strikes*), its further `Open`s are
    /// shed with [`RejectCode::Banned`] — the connection stays up (its
    /// compliant sessions finish and its `Done`/`Stats` traffic still
    /// flows), but it can open nothing new. `0` disables banning
    /// (the default).
    pub ban_after_quarantines: usize,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            server: ServerConfig::default(),
            max_connections: 1024,
            max_inflight_per_conn: 256,
            max_inflight_total: 16 * 1024,
            max_frame_bytes: zooid_runtime::wire::DEFAULT_MAX_FRAME_BYTES,
            max_conn_outbuf_bytes: 256 * 1024,
            idle_timeout: Duration::from_secs(30),
            close_on_quarantine: false,
            ban_after_quarantines: 0,
        }
    }
}

/// One client connection in the event loop.
#[derive(Debug)]
struct NetConn {
    stream: TcpStream,
    reader: FrameReader,
    /// Userspace write buffer: the loop never blocks on a slow reader.
    out: Vec<u8>,
    /// How much of `out` has already reached the socket.
    written: usize,
    /// Sessions opened on this connection and not yet done.
    inflight: usize,
    /// Set when the connection must close once `out` has drained (bad
    /// frame, peer EOF, write backlog over the high-water mark).
    closing: bool,
    /// High-water mark on `out.len() - written`; past it the connection is
    /// aborted instead of buffering without bound.
    outbuf_limit: usize,
    /// True for a connection refused at accept time (over
    /// `max_connections`): it exists only to deliver the rejection frame
    /// and never counts against the connection limit.
    limit_reject: bool,
    /// Why the connection earned its close, for the flight recorder (first
    /// cause wins).
    close_reason: Option<CloseReason>,
    /// The peer closed its write side while this connection was closing.
    peer_eof: bool,
    /// Write half shut down after the last queued byte was flushed.
    fin_sent: bool,
    /// Hard deadline for a refused connection to drain and close.
    linger_until: Option<Instant>,
    /// Reap deadline for a connection that has yet to deliver a decodable
    /// frame; disarmed by the first decoded frame.
    idle_until: Option<Instant>,
    /// Quarantined sessions this connection has opened (byzantine
    /// strikes), for [`NetServerConfig::ban_after_quarantines`].
    strikes: usize,
}

impl NetConn {
    fn new(stream: TcpStream, max_frame_bytes: usize, outbuf_limit: usize) -> Self {
        NetConn {
            stream,
            reader: FrameReader::new(max_frame_bytes),
            out: Vec::new(),
            written: 0,
            inflight: 0,
            closing: false,
            outbuf_limit,
            limit_reject: false,
            close_reason: None,
            peer_eof: false,
            fin_sent: false,
            linger_until: None,
            idle_until: None,
            strikes: 0,
        }
    }

    fn queue(&mut self, frame: &MuxFrame, max_frame_bytes: usize) {
        if self.closing {
            // The connection already earned its close; buffering more for a
            // peer that may never read it would undo the backlog bound.
            return;
        }
        let payload = encode_mux(frame);
        let mut buf = bytes::BytesMut::new();
        // Control frames are tiny; the cap cannot trip for a compliant
        // server, but keep the single enforcement point anyway.
        if put_frame(&mut buf, &payload, max_frame_bytes).is_ok() {
            self.out.extend_from_slice(&buf);
        }
        if self.out.len() - self.written > self.outbuf_limit {
            // The peer triggers frames faster than it reads them: abort the
            // connection rather than grow the buffer without bound.
            self.out.truncate(self.written);
            self.close(CloseReason::WriteStalled);
        }
    }

    /// Marks the connection for closing, keeping the first recorded cause.
    fn close(&mut self, reason: CloseReason) {
        self.closing = true;
        self.close_reason.get_or_insert(reason);
    }

    fn pending_out(&self) -> bool {
        self.written < self.out.len()
    }

    /// Reads and discards inbound bytes on a closing connection (bounded
    /// per sweep), so the eventual close does not turn into a RST that
    /// destroys the queued rejection before the peer reads it.
    fn discard_input(&mut self) {
        let mut scratch = [0u8; 4096];
        let mut total = 0usize;
        while total < DISCARD_PER_SWEEP {
            match std::io::Read::read(&mut self.stream, &mut scratch) {
                Ok(0) => {
                    self.peer_eof = true;
                    return;
                }
                Ok(n) => total += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    self.peer_eof = true;
                    return;
                }
            }
        }
    }

    /// Pushes buffered bytes into the socket without blocking. Returns
    /// `false` when the connection died.
    fn flush(&mut self) -> bool {
        while self.written < self.out.len() {
            match self.stream.write(&self.out[self.written..]) {
                Ok(0) => return false,
                Ok(n) => self.written += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => return false,
            }
        }
        if self.written == self.out.len() {
            self.out.clear();
            self.written = 0;
        } else if self.written > 64 * 1024 {
            // Compact so an always-partially-flushed connection cannot grow
            // its buffer without bound.
            self.out.drain(..self.written);
            self.written = 0;
        }
        true
    }
}

/// The networked serving plane: a [`SessionServer`] fronted by one
/// event-driven IO thread speaking the multiplexed wire protocol.
#[derive(Debug)]
pub struct NetServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    metrics: Arc<NetMetrics>,
    io_pass: Arc<Histogram>,
    recorder: Arc<FlightRecorder>,
    handle: Option<JoinHandle<NetServerReport>>,
}

impl NetServer {
    /// Compiles the service catalog, binds the listener and spawns the IO
    /// event loop (which in turn starts the shard scheduler).
    ///
    /// # Errors
    ///
    /// Fails if a service references an unregistered protocol or the bind
    /// fails.
    pub fn start(
        registry: ProtocolRegistry,
        services: impl IntoIterator<Item = Service>,
        config: NetServerConfig,
    ) -> Result<NetServer> {
        // Key the catalog by registered protocol name: the wire carries
        // names, the scheduler wants ids.
        let mut catalog: BTreeMap<String, Service> = BTreeMap::new();
        for service in services {
            let artifacts = registry
                .get(service.protocol)
                .ok_or(ServerError::UnknownProtocol)?;
            catalog.insert(artifacts.name().to_owned(), service);
        }
        let listener = TcpListener::bind(config.addr).map_err(io_err)?;
        listener.set_nonblocking(true).map_err(io_err)?;
        let local_addr = listener.local_addr().map_err(io_err)?;

        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(NetMetrics::default());
        let io_pass = Arc::new(Histogram::new());
        let recorder = Arc::new(FlightRecorder::new(FLIGHT_CAPACITY));
        let loop_stop = Arc::clone(&stop);
        let loop_metrics = Arc::clone(&metrics);
        let loop_io_pass = Arc::clone(&io_pass);
        let loop_recorder = Arc::clone(&recorder);
        let server = SessionServer::start(registry, config.server.clone());
        let handle = std::thread::Builder::new()
            .name("zooid-net-io".into())
            .spawn(move || {
                io_loop(
                    listener,
                    server,
                    catalog,
                    config,
                    loop_stop,
                    loop_metrics,
                    loop_io_pass,
                    loop_recorder,
                )
            })
            .expect("spawning the IO thread");

        Ok(NetServer {
            local_addr,
            stop,
            metrics,
            io_pass,
            recorder,
            handle: Some(handle),
        })
    }

    /// The bound address (with the real port when configured with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshots the IO loop's counters (with the live pass-duration
    /// histogram).
    pub fn net_report(&self) -> NetReport {
        let mut report = self.metrics.snapshot();
        report.io_pass_ns = self.io_pass.snapshot();
        report
    }

    /// The IO loop's retained flight-recorder events (rejections,
    /// connection closes), oldest first.
    pub fn flight_events(&self) -> Vec<FlightEvent> {
        self.recorder.snapshot()
    }

    /// Stops the IO loop and the shard scheduler, returning both reports.
    /// In-flight sessions are closed as stalled by the scheduler's own
    /// shutdown; unread client bytes are discarded.
    pub fn shutdown(mut self) -> NetServerReport {
        self.stop.store(true, Ordering::Release);
        let handle = self.handle.take().expect("shutdown runs once");
        handle.join().unwrap_or_else(|_| NetServerReport {
            net: self.metrics.snapshot(),
            shards: crate::ServerReport::default(),
        })
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn io_err(e: std::io::Error) -> ServerError {
    ServerError::Net {
        reason: e.to_string(),
    }
}

/// The IO event loop: accepts, reads, admits, drains outcomes, flushes.
#[allow(clippy::too_many_arguments)]
fn io_loop(
    listener: TcpListener,
    mut server: SessionServer,
    catalog: BTreeMap<String, Service>,
    config: NetServerConfig,
    stop: Arc<AtomicBool>,
    metrics: Arc<NetMetrics>,
    io_pass: Arc<Histogram>,
    recorder: Arc<FlightRecorder>,
) -> NetServerReport {
    let mut conns: Vec<Option<NetConn>> = Vec::new();
    // Per-slot generation, bumped on every removal: slots are reused, so a
    // route must name (slot, generation) to prove the connection it was
    // created for is still the one living there.
    let mut gens: Vec<u64> = Vec::new();
    // Server-side session id → (connection slot, slot generation,
    // client-chosen id).
    let mut routes: BTreeMap<SessionId, (usize, u64, u64)> = BTreeMap::new();
    let mut open_sessions = 0usize;
    let mut poller = Poller::new();
    let mut events = Vec::new();
    // Eager first sweep; after that, spin only while work keeps arriving.
    let mut prev_busy = true;

    while !stop.load(Ordering::Acquire) {
        let pass_started = Instant::now();
        let mut busy = false;

        // 1. Admit new connections (bounded per sweep).
        for _ in 0..ACCEPTS_PER_SWEEP {
            match listener.accept() {
                Ok((stream, _)) => {
                    busy = true;
                    let active = conns.iter().flatten().filter(|c| !c.limit_reject).count();
                    if active >= config.max_connections {
                        metrics.connections_rejected.fetch_add(1, Ordering::Relaxed);
                        metrics.record_reject(RejectCode::ConnectionLimit);
                        recorder.record(FlightEvent::Rejected {
                            session: 0,
                            code: RejectCode::ConnectionLimit,
                        });
                        let pending =
                            conns.iter().flatten().filter(|c| c.limit_reject).count();
                        if pending >= MAX_PENDING_REJECTS
                            || stream.set_nonblocking(true).is_err()
                        {
                            // Flooded: drop without the courtesy frame.
                            continue;
                        }
                        // Refuse non-blockingly: a short-lived write-only
                        // entry in the loop delivers the rejection; the old
                        // blocking write-and-drain here could stall every
                        // live connection through a connect flood.
                        let mut conn = NetConn::new(
                            stream,
                            config.max_frame_bytes,
                            config.max_conn_outbuf_bytes,
                        );
                        conn.queue(
                            &MuxFrame::Rejected {
                                session: 0,
                                code: RejectCode::ConnectionLimit,
                                reason: "connection limit reached".into(),
                            },
                            config.max_frame_bytes,
                        );
                        conn.close(CloseReason::LingerExpired);
                        conn.limit_reject = true;
                        conn.linger_until = Some(Instant::now() + REJECT_LINGER);
                        install(&mut conns, &mut gens, conn);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    metrics.connections_accepted.fetch_add(1, Ordering::Relaxed);
                    let mut conn =
                        NetConn::new(stream, config.max_frame_bytes, config.max_conn_outbuf_bytes);
                    conn.idle_until = Some(Instant::now() + config.idle_timeout);
                    install(&mut conns, &mut gens, conn);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::Interrupted =>
                {
                    break
                }
                Err(_) => break,
            }
        }

        // 2. Sweep readable sockets. Sleep (with the poller's adaptive
        // backoff) whenever neither this sweep's accepts nor the previous
        // sweep made progress — on small machines a spinning IO thread
        // starves the very shards it is waiting on.
        events.clear();
        let timeout = if busy || prev_busy {
            Duration::ZERO
        } else {
            SWEEP_TIMEOUT
        };
        poller.poll(
            || {
                conns
                    .iter()
                    .enumerate()
                    .filter_map(|(slot, c)| c.as_ref().map(|c| (slot, &c.stream)))
            },
            &mut events,
            timeout,
        );

        // 3. Pump every readable connection and act on its frames.
        for event in events.drain(..) {
            let slot = event.token;
            let Some(conn) = conns[slot].as_mut() else {
                continue;
            };
            if conn.closing {
                // Still read (and discard) so the close stays graceful.
                conn.discard_input();
                continue;
            }
            let eof = match event.readiness {
                Readiness::Closed => {
                    // Drain whatever arrived before the close below; the
                    // fill observes the EOF itself.
                    true
                }
                Readiness::Readable => false,
                Readiness::Empty => continue,
            };
            busy = true;
            let fill = conn.reader.fill(&mut conn.stream);
            // Parse every complete frame that is now buffered.
            let mut hostile: Option<String> = None;
            loop {
                match conn.reader.next_frame() {
                    Ok(Some(payload)) => match decode_mux(&payload) {
                        Ok(frame) => {
                            metrics.frames_read.fetch_add(1, Ordering::Relaxed);
                            // A decodable frame proves the peer is live:
                            // disarm the idle reaper for good.
                            conn.idle_until = None;
                            handle_frame(
                                frame,
                                slot,
                                gens[slot],
                                conn,
                                &mut server,
                                &catalog,
                                &config,
                                &mut routes,
                                &mut open_sessions,
                                &metrics,
                                &io_pass,
                                &recorder,
                            );
                        }
                        Err(e) => {
                            hostile = Some(e.to_string());
                            break;
                        }
                    },
                    Ok(None) => break,
                    Err(e) => {
                        // Oversized length prefix: poisoned reader.
                        hostile = Some(e.to_string());
                        break;
                    }
                }
            }
            let half_open = conn.reader.pending_bytes() > 0;
            match (hostile, fill) {
                (Some(reason), _) => {
                    metrics.bad_frames.fetch_add(1, Ordering::Relaxed);
                    metrics.record_reject(RejectCode::BadFrame);
                    recorder.record(FlightEvent::Rejected {
                        session: 0,
                        code: RejectCode::BadFrame,
                    });
                    conn.queue(
                        &MuxFrame::Rejected {
                            session: 0,
                            code: RejectCode::BadFrame,
                            reason,
                        },
                        config.max_frame_bytes,
                    );
                    metrics.frames_written.fetch_add(1, Ordering::Relaxed);
                    conn.close(CloseReason::BadFrame);
                }
                (None, Ok(FillStatus::Eof)) => {
                    if half_open {
                        metrics.bad_frames.fetch_add(1, Ordering::Relaxed);
                        conn.close(CloseReason::BadFrame);
                    } else {
                        conn.close(CloseReason::PeerClosed);
                    }
                }
                (None, Err(_)) => {
                    conn.close(CloseReason::PeerClosed);
                }
                (None, Ok(_)) => {
                    if eof {
                        conn.close(CloseReason::PeerClosed);
                    }
                }
            }
        }

        // 4. Drain finished sessions into Done frames.
        while let Some(outcome) = server.try_next_outcome() {
            busy = true;
            open_sessions = open_sessions.saturating_sub(1);
            let Some((slot, gen, client_id)) = routes.remove(&outcome.id) else {
                continue;
            };
            if gens[slot] != gen {
                // The opening connection died and its slot was reused: the
                // unrelated client living there now must not see this
                // outcome or have its admission counter touched.
                continue;
            }
            let Some(conn) = conns[slot].as_mut() else {
                // The owning connection died while the session ran.
                continue;
            };
            conn.inflight = conn.inflight.saturating_sub(1);
            let actions: u64 = outcome
                .endpoints
                .values()
                .map(|r| r.actions.len() as u64)
                .sum();
            conn.queue(
                &MuxFrame::Done {
                    session: client_id,
                    compliant: outcome.compliant,
                    complete: outcome.complete,
                    stalled: outcome.stalled,
                    violations: outcome.violations.len().min(u32::MAX as usize) as u32,
                    actions,
                },
                config.max_frame_bytes,
            );
            metrics.frames_written.fetch_add(1, Ordering::Relaxed);
            metrics.sessions_done.fetch_add(1, Ordering::Relaxed);
            if outcome.quarantined {
                // A byzantine strike against the opening connection, for
                // the reject-then-ban admission check.
                conn.strikes += 1;
            }
            if outcome.quarantined && config.close_on_quarantine {
                // Quarantine escalates to the transport: the opener reads
                // its Done, a structured rejection, then EOF.
                metrics.record_reject(RejectCode::Quarantined);
                recorder.record(FlightEvent::Rejected {
                    session: client_id,
                    code: RejectCode::Quarantined,
                });
                conn.queue(
                    &MuxFrame::Rejected {
                        session: client_id,
                        code: RejectCode::Quarantined,
                        reason: "session quarantined by monitor".into(),
                    },
                    config.max_frame_bytes,
                );
                metrics.frames_written.fetch_add(1, Ordering::Relaxed);
                conn.close(CloseReason::Quarantined);
            }
        }

        // 5. Flush write buffers; collect the dead.
        let now = Instant::now();
        for slot in 0..conns.len() {
            let Some(conn) = conns[slot].as_mut() else {
                continue;
            };
            if !conn.closing && conn.idle_until.is_some_and(|t| now >= t) {
                // Accepted, never sent a decodable frame, deadline hit:
                // reap the slot.
                conn.close(CloseReason::Idle);
            }
            let alive = conn.flush();
            if alive && conn.limit_reject && !conn.pending_out() && !conn.fin_sent {
                // The rejection is flushed: half-close so a peer reading to
                // EOF finishes promptly; the socket itself lives until the
                // peer closes or the linger deadline fires.
                let _ = conn.stream.shutdown(std::net::Shutdown::Write);
                conn.fin_sent = true;
            }
            let lingering = !conn.peer_eof && conn.linger_until.is_some_and(|t| now < t);
            if !alive || (conn.closing && !conn.pending_out() && !lingering) {
                if !conn.limit_reject {
                    metrics.connections_closed.fetch_add(1, Ordering::Relaxed);
                }
                recorder.record(FlightEvent::ConnClosed {
                    client: slot as u64,
                    reason: conn.close_reason.unwrap_or(CloseReason::PeerClosed),
                });
                conns[slot] = None;
                gens[slot] = gens[slot].wrapping_add(1);
            }
        }
        prev_busy = busy;
        io_pass.record(u64::try_from(pass_started.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }

    // Shutdown: tell the lingering clients, then stop the scheduler (which
    // closes in-flight sessions as stalled).
    for (slot, conn) in conns.iter_mut().enumerate() {
        let Some(conn) = conn else { continue };
        metrics.record_reject(RejectCode::ShuttingDown);
        conn.queue(
            &MuxFrame::Rejected {
                session: 0,
                code: RejectCode::ShuttingDown,
                reason: "server shutting down".into(),
            },
            config.max_frame_bytes,
        );
        let _ = conn.flush();
        recorder.record(FlightEvent::ConnClosed {
            client: slot as u64,
            reason: CloseReason::Shutdown,
        });
    }
    let shards = server.shutdown();
    let mut net = metrics.snapshot();
    net.io_pass_ns = io_pass.snapshot();
    NetServerReport { net, shards }
}

/// Installs a connection into the first free slot (or a new one), keeping
/// the per-slot generation vector in step with the slot vector.
fn install(conns: &mut Vec<Option<NetConn>>, gens: &mut Vec<u64>, conn: NetConn) {
    match conns.iter_mut().position(|c| c.is_none()) {
        Some(slot) => conns[slot] = Some(conn),
        None => {
            conns.push(Some(conn));
            gens.push(0);
        }
    }
}

/// Admission control for one decoded client frame.
#[allow(clippy::too_many_arguments)]
fn handle_frame(
    frame: MuxFrame,
    slot: usize,
    slot_gen: u64,
    conn: &mut NetConn,
    server: &mut SessionServer,
    catalog: &BTreeMap<String, Service>,
    config: &NetServerConfig,
    routes: &mut BTreeMap<SessionId, (usize, u64, u64)>,
    open_sessions: &mut usize,
    metrics: &NetMetrics,
    io_pass: &Histogram,
    recorder: &FlightRecorder,
) {
    let (session, protocol) = match frame {
        MuxFrame::Open { session, protocol } => (session, protocol),
        MuxFrame::Stats { session } => {
            // Live introspection: ship the whole observability bundle —
            // IO counters, shard report with histograms, incident
            // summaries — as one codec-serialized value.
            let mut net = metrics.snapshot();
            net.io_pass_ns = io_pass.snapshot();
            let stats = StatsSnapshot {
                net,
                shards: server.report(),
                incidents: server.incidents().iter().map(Incident::summary).collect(),
            };
            conn.queue(
                &MuxFrame::StatsReply {
                    session,
                    stats: stats.to_value(),
                },
                config.max_frame_bytes,
            );
            metrics.frames_written.fetch_add(1, Ordering::Relaxed);
            return;
        }
        _ => {
            // Clients may only send Open or Stats; anything else is a
            // protocol error.
            metrics.bad_frames.fetch_add(1, Ordering::Relaxed);
            metrics.record_reject(RejectCode::BadFrame);
            recorder.record(FlightEvent::Rejected {
                session: 0,
                code: RejectCode::BadFrame,
            });
            conn.queue(
                &MuxFrame::Rejected {
                    session: 0,
                    code: RejectCode::BadFrame,
                    reason: "only Open and Stats frames may be sent by clients".into(),
                },
                config.max_frame_bytes,
            );
            metrics.frames_written.fetch_add(1, Ordering::Relaxed);
            conn.close(CloseReason::BadFrame);
            return;
        }
    };

    let reject = |conn: &mut NetConn, code: RejectCode, reason: String| {
        metrics.record_reject(code);
        recorder.record(FlightEvent::Rejected { session, code });
        conn.queue(
            &MuxFrame::Rejected {
                session,
                code,
                reason,
            },
            config.max_frame_bytes,
        );
        metrics.frames_written.fetch_add(1, Ordering::Relaxed);
    };

    if config.ban_after_quarantines > 0 && conn.strikes >= config.ban_after_quarantines {
        // Reject-then-ban: the connection has spent its byzantine-strike
        // budget; its in-flight sessions finish but nothing new is
        // admitted from it.
        metrics.sessions_rejected.fetch_add(1, Ordering::Relaxed);
        reject(
            conn,
            RejectCode::Banned,
            format!(
                "connection banned after {} quarantined sessions",
                conn.strikes
            ),
        );
        return;
    }
    let Some(service) = catalog.get(&protocol) else {
        metrics.sessions_rejected.fetch_add(1, Ordering::Relaxed);
        reject(
            conn,
            RejectCode::UnknownProtocol,
            format!("no service registered for `{protocol}`"),
        );
        return;
    };
    if conn.inflight >= config.max_inflight_per_conn {
        metrics.sessions_shed.fetch_add(1, Ordering::Relaxed);
        reject(
            conn,
            RejectCode::SessionLimit,
            format!(
                "connection already has {} sessions in flight",
                conn.inflight
            ),
        );
        return;
    }
    if *open_sessions >= config.max_inflight_total {
        metrics.sessions_shed.fetch_add(1, Ordering::Relaxed);
        reject(
            conn,
            RejectCode::Overloaded,
            format!("server has {open_sessions} sessions in flight"),
        );
        return;
    }

    let spec = SessionSpec {
        protocol: service.protocol,
        endpoints: Arc::clone(&service.endpoints),
        options: service.options.clone(),
    };
    match server.submit(spec) {
        Ok(id) => {
            routes.insert(id, (slot, slot_gen, session));
            conn.inflight += 1;
            *open_sessions += 1;
            metrics.sessions_opened.fetch_add(1, Ordering::Relaxed);
            conn.queue(&MuxFrame::Accepted { session }, config.max_frame_bytes);
            metrics.frames_written.fetch_add(1, Ordering::Relaxed);
        }
        Err(e) => {
            metrics.sessions_rejected.fetch_add(1, Ordering::Relaxed);
            reject(conn, RejectCode::ShuttingDown, e.to_string());
        }
    }
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// A blocking client for the multiplexed serving plane: open many sessions
/// over one connection and poll their events.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    reader: FrameReader,
    next_session: u64,
}

impl NetClient {
    /// Connects to a [`NetServer`].
    ///
    /// # Errors
    ///
    /// Fails if the TCP connect fails.
    pub fn connect(addr: SocketAddr) -> zooid_runtime::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // Blocking socket with a short read timeout: `poll_event` loops on
        // its own deadline.
        stream.set_read_timeout(Some(Duration::from_millis(20)))?;
        Ok(NetClient {
            stream,
            reader: FrameReader::new(zooid_runtime::wire::DEFAULT_MAX_FRAME_BYTES),
            next_session: 1,
        })
    }

    /// Sends an `Open` for the named protocol, returning the client-side
    /// session id to correlate later events with.
    ///
    /// # Errors
    ///
    /// Fails if the write fails.
    pub fn open(&mut self, protocol: &str) -> zooid_runtime::Result<u64> {
        let session = self.next_session;
        self.next_session += 1;
        let payload = encode_mux(&MuxFrame::Open {
            session,
            protocol: protocol.to_owned(),
        });
        let mut buf = bytes::BytesMut::new();
        put_frame(
            &mut buf,
            &payload,
            zooid_runtime::wire::DEFAULT_MAX_FRAME_BYTES,
        )?;
        self.stream.write_all(&buf)?;
        Ok(session)
    }

    /// Sends an `Open` and waits up to `timeout` for the admission verdict,
    /// returning the client-side session id once the server `Accepted` it.
    ///
    /// Unlike [`NetClient::open`] + [`NetClient::poll_event`] by hand,
    /// every failure mode is a structured error: a rejection maps to
    /// [`RuntimeError::Codec`] naming the reject code, server silence past
    /// `timeout` maps to [`RuntimeError::Timeout`], and a connection the
    /// server closes mid-wait surfaces as [`RuntimeError::Disconnected`]
    /// (never a silent `None`). Frames for other sessions that arrive while
    /// waiting are decoded and discarded, as with
    /// [`NetClient::fetch_stats`].
    ///
    /// # Errors
    ///
    /// Fails on connection loss, malformed server frames, rejection, or
    /// admission silence past `timeout`.
    pub fn open_with(&mut self, protocol: &str, timeout: Duration) -> zooid_runtime::Result<u64> {
        let session = self.open(protocol)?;
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.poll_event(remaining)? {
                Some(MuxFrame::Accepted { session: reply }) if reply == session => {
                    return Ok(session);
                }
                Some(MuxFrame::Rejected {
                    session: reply,
                    code,
                    reason,
                }) if reply == session || reply == 0 => {
                    return Err(RuntimeError::Codec {
                        reason: format!("open rejected ({code}): {reason}"),
                    });
                }
                Some(_) => {}
                None => {
                    return Err(RuntimeError::Timeout {
                        from: zooid_mpst::Role::new("server"),
                    });
                }
            }
        }
    }

    /// Pulls the server's live observability bundle — IO counters and
    /// pass-duration histogram, the merged shard report with latency
    /// histograms, and recent incident summaries — over the wire.
    ///
    /// Frames for other sessions that arrive while waiting are decoded and
    /// discarded; interleave stats pulls with session traffic on a
    /// dedicated connection when every `Done` matters.
    ///
    /// Returns `Ok(None)` when the server stays silent past `timeout`.
    ///
    /// # Errors
    ///
    /// Fails on connection loss, malformed server frames, or a stats
    /// payload that does not decode as a [`StatsSnapshot`].
    pub fn fetch_stats(
        &mut self,
        timeout: Duration,
    ) -> zooid_runtime::Result<Option<StatsSnapshot>> {
        let session = self.next_session;
        self.next_session += 1;
        let payload = encode_mux(&MuxFrame::Stats { session });
        let mut buf = bytes::BytesMut::new();
        put_frame(
            &mut buf,
            &payload,
            zooid_runtime::wire::DEFAULT_MAX_FRAME_BYTES,
        )?;
        self.stream.write_all(&buf)?;
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.poll_event(remaining)? {
                Some(MuxFrame::StatsReply {
                    session: reply,
                    stats,
                }) if reply == session => {
                    let snapshot =
                        StatsSnapshot::from_value(&stats).ok_or(RuntimeError::Codec {
                            reason: "malformed stats payload".into(),
                        })?;
                    return Ok(Some(snapshot));
                }
                Some(_) => {}
                None => return Ok(None),
            }
        }
    }

    /// Waits up to `timeout` for the next server frame
    /// (`Accepted`/`Rejected`/`Done`), returning `Ok(None)` on silence.
    ///
    /// # Errors
    ///
    /// Fails on connection loss or malformed server frames.
    pub fn poll_event(&mut self, timeout: Duration) -> zooid_runtime::Result<Option<MuxFrame>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(payload) = self.reader.next_frame()? {
                return Ok(Some(decode_mux(&payload)?));
            }
            match self.reader.fill(&mut self.stream)? {
                FillStatus::Progress => {}
                FillStatus::Eof => {
                    // The close may ride right behind complete frames:
                    // hand those out before reporting the shutdown.
                    if let Some(payload) = self.reader.next_frame()? {
                        return Ok(Some(decode_mux(&payload)?));
                    }
                    if self.reader.pending_bytes() > 0 {
                        return Err(RuntimeError::Codec {
                            reason: "server disconnected mid-frame".into(),
                        });
                    }
                    return Err(RuntimeError::Disconnected {
                        role: zooid_mpst::Role::new("server"),
                    });
                }
                FillStatus::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Ok(None);
                    }
                }
            }
        }
    }
}
