//! `zooid-server` — a multi-session server for certified session protocols.
//!
//! The paper's runtime (§4.5) executes one session at a time, one OS thread
//! per participant. This crate is the serving layer the ROADMAP's north star
//! asks for: host **thousands of concurrent sessions** of registered
//! protocols on a **bounded worker pool**, amortizing every per-protocol
//! cost through the compile-once substrate built in earlier PRs (the shared
//! interner and the dense [`zooid_cfsm::CompiledSystem`] transition tables).
//!
//! * [`registry`] — a [`ProtocolRegistry`] compiles each registered protocol
//!   exactly once (well-formedness → projection → per-role CFSMs →
//!   [`zooid_cfsm::System::compile`]) and caches the artifacts behind an
//!   `Arc`, keyed by a dense [`ProtocolId`];
//! * [`session`] — an [`ActiveSession`](session::SessionSpec) bundles one
//!   resumable [`zooid_runtime::EndpointTask`] per participant with the
//!   session's in-memory channels and a
//!   [`zooid_runtime::CompiledMonitor`] checking every communication against
//!   the compiled per-role transition tables (O(1) per action);
//! * [`server`] — the [`SessionServer`] schedules sessions over N worker
//!   shards (crossbeam run queues, sessions hashed by id); each shard steps
//!   its sessions in bounded quanta, so thread count is fixed by the shard
//!   count while sessions number in the tens of thousands;
//! * [`metrics`] — per-shard counters (sessions started / completed /
//!   violated / stalled, messages routed, queue depths) aggregated into a
//!   [`ServerReport`];
//! * [`synth`] — skeleton endpoint implementations synthesized from
//!   projections, used by the load generator and the differential tests.
//!
//! The harness-vs-server differential suite (`tests/differential.rs`)
//! checks that a session hosted here is indistinguishable — per-endpoint
//! statuses, traces, monitor verdicts — from the same endpoints run by the
//! thread-per-participant [`zooid_runtime::SessionHarness`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod metrics;
pub mod registry;
pub mod server;
pub mod session;
pub mod synth;

pub use error::{Result, ServerError};
pub use metrics::{ServerReport, ShardReport};
pub use registry::{ProtocolArtifacts, ProtocolId, ProtocolRegistry, SafetyBudget};
pub use server::{ServerConfig, SessionServer};
pub use session::{SessionId, SessionOutcome, SessionSpec};
