//! `zooid-server` — a multi-session server for certified session protocols.
//!
//! The paper's runtime (§4.5) executes one session at a time, one OS thread
//! per participant. This crate is the serving layer the ROADMAP's north star
//! asks for: host **thousands of concurrent sessions** of registered
//! protocols on a **bounded worker pool**, amortizing every per-protocol
//! cost through the compile-once substrate built in earlier PRs (the shared
//! interner and the dense [`zooid_cfsm::CompiledSystem`] transition tables).
//!
//! * [`registry`] — a [`ProtocolRegistry`] compiles each registered protocol
//!   exactly once (well-formedness → projection → per-role CFSMs →
//!   [`zooid_cfsm::System::compile`]) and caches the artifacts behind an
//!   `Arc`, keyed by a dense [`ProtocolId`]; per `(role, process)` it also
//!   caches the **compiled endpoint program**
//!   ([`zooid_runtime::EndpointProgram`], a [`zooid_proc::CompiledProc`]
//!   with its action templates pre-interned against the protocol's
//!   transition tables), so every session of the same implementation shares
//!   one lowered program;
//! * [`session`] — an [`ActiveSession`](session::SessionSpec) bundles one
//!   endpoint task per participant — a compiled
//!   [`zooid_runtime::CompiledEndpointTask`] (program counter + slot array;
//!   the tree-walking [`zooid_runtime::EndpointTask`] remains the fallback
//!   and oracle) — with the session's in-memory channels (direct
//!   `(Label, Value)` frames, dense peer indices, no codec) and a
//!   [`zooid_runtime::CompiledMonitor`] fed **pre-interned actions**, so
//!   steady-state serving neither hashes a string nor walks a tree;
//! * [`server`] — the [`SessionServer`] schedules sessions over N worker
//!   shards (sessions hashed by id, validated specs shipped to the shard
//!   that *constructs* them, outcomes flushed in batches); each shard steps
//!   its work in bounded quanta, so thread count is fixed by the shard
//!   count while sessions number in the tens of thousands. Homogeneous
//!   sessions — same protocol, same compiled per-role programs, same
//!   options, batch-eligible layout (no externals, statically sorted and
//!   pre-interned communication sites) — coalesce into **columnar
//!   batches** ([`zooid_runtime::SessionBatch`]): the invariant skeleton is
//!   shared once and the per-session state lives in struct-of-arrays
//!   columns stepped in `(role, pc)` cohorts, with co-batched sends as
//!   index writes into a shared frame arena. Everything else — and every
//!   straggler a batch demotes mid-flight (stall, violation, runtime sort
//!   mismatch), with its traces, monitor cursor and in-flight frames
//!   intact — runs on the per-session **slab** (reusable slots, also the
//!   behavioural oracle for the batched path). Under the default
//!   [`QuarantinePolicy::Halt`] a session the monitor flags is
//!   **quarantined**: never stepped again (slab and batch paths alike),
//!   counted per shard and per protocol, and recorded as a
//!   [`FlightEvent::Quarantined`];
//! * [`metrics`] — per-shard counters (sessions started / completed /
//!   violated / stalled, batched / slab / demoted, messages routed, cohort
//!   widths, queue depths, per-[`zooid_runtime::wire::RejectCode`]
//!   rejections, restarts) aggregated into a [`ServerReport`];
//! * [`obs`] — the observability plane: lock-free log2-bucket latency
//!   [`obs::Histogram`]s (session wall time, per-action cost, cohort
//!   widths, IO-pass duration) with `p50/p90/p99/max` in the reports, a
//!   bounded per-shard [`obs::FlightRecorder`] of dense structured events,
//!   and — on every monitor violation — a replayable [`obs::Incident`]
//!   (role, action, monitor cursor, bounded compliant-trace prefix) that
//!   re-certifies the violation against the [`zooid_cfsm::CompiledSystem`].
//!   A live [`NetServer`] answers `MuxFrame::Stats` introspection frames
//!   with the whole bundle ([`obs::StatsSnapshot`]) over the wire;
//! * [`synth`] — skeleton endpoint implementations synthesized from
//!   projections, used by the load generator and the differential tests,
//!   plus the **byzantine driver generator**: for a registered protocol it
//!   synthesizes minimally-wrong endpoint casts — wrong label, wrong
//!   payload sort, a message after termination, premature silence — one
//!   mutation per driver, each with a known expected violation class, for
//!   the hostile-world campaign (`tests/hostile_campaign.rs`);
//! * [`net`] — the event-driven networked serving plane: a [`NetServer`]
//!   fronts the [`SessionServer`] with one non-blocking IO thread (the
//!   readiness-poll loop of [`zooid_runtime::poll`]) speaking the framed,
//!   multiplexed wire protocol of [`zooid_runtime::wire`]. Many sessions
//!   share one connection; admission control (bounded accepts, per-
//!   connection and global in-flight caps) sheds load with structured
//!   rejection frames, and hostile framing is a counted, bounded error —
//!   never an allocation or a hang. Connections that never produce a
//!   decodable frame are reaped after
//!   [`NetServerConfig::idle_timeout`], and quarantined sessions can
//!   optionally tear down their opening connection
//!   ([`NetServerConfig::close_on_quarantine`]) — or, with
//!   [`NetServerConfig::ban_after_quarantines`], a connection whose
//!   sessions keep getting quarantined has its further opens rejected
//!   while it stays up for in-flight work.
//!
//! Sessions are **durable** (PR 10): [`SessionServer::drain_shard`] takes
//! every in-flight session off a shard as a [`MigratedSession`] — an
//! encoded [`zooid_runtime::checkpoint::SessionCheckpoint`] plus its
//! compiled programs — and [`SessionServer::migrate_session`] re-admits
//! one on any shard after the decoder re-validates every index against
//! the protocol's compiled artifacts (a tampered or foreign checkpoint is
//! a structured [`error`], never a panic). Quarantine is now a *policy
//! family*: [`QuarantinePolicy::Observe`] records violations but keeps
//! stepping, [`QuarantinePolicy::Halt`] (the default) stops a flagged
//! session at its first violation, and
//! [`QuarantinePolicy::RestartFromCheckpoint`] re-admits it from its last
//! certified compliant snapshot until `max_retries` restarts are spent
//! (counted as `sessions_restarted`, each one a
//! [`FlightEvent::Restarted`]). Per-protocol violation thresholds
//! ([`ServerConfig::with_violation_threshold`]) let designated lenient
//! protocols absorb violations Observe-style while everything else stays
//! strict. `tests/crash_recovery.rs` drives drain/migrate conservation,
//! checkpoint tampering, restart-to-exhaustion and connection bans.
//!
//! The harness-vs-server differential suite (`tests/differential.rs`)
//! checks that a session hosted here is indistinguishable — per-endpoint
//! statuses, traces, monitor verdicts — from the same endpoints run by the
//! thread-per-participant [`zooid_runtime::SessionHarness`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod metrics;
pub mod net;
pub mod obs;
pub mod registry;
pub mod server;
pub mod session;
pub mod synth;

pub use error::{Result, ServerError};
pub use metrics::{NetReport, NetServerReport, RejectCounts, ServerReport, ShardReport};
pub use obs::{
    FlightEvent, FlightRecorder, Histogram, HistogramSnapshot, Incident, IncidentStore,
    IncidentSummary, ObsReport, StatsSnapshot,
};
pub use net::{NetClient, NetServer, NetServerConfig, Service};
pub use registry::{ProtocolArtifacts, ProtocolId, ProtocolRegistry, SafetyBudget};
pub use server::{MigratedSession, QuarantinePolicy, ServerConfig, SessionServer};
pub use synth::{ByzantineDriver, ByzantineMutation, ExpectedClass};
pub use session::{SessionId, SessionOutcome, SessionSpec};
