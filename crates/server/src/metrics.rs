//! Per-shard metrics and the aggregated [`ServerReport`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use zooid_runtime::wire::RejectCode;

use crate::obs::{HistogramSnapshot, ObsReport};

/// Live counters of one worker shard (updated lock-free by the worker,
/// snapshotted by [`crate::SessionServer::report`]).
#[derive(Debug, Default)]
pub(crate) struct ShardMetrics {
    pub(crate) sessions_started: AtomicU64,
    pub(crate) sessions_completed: AtomicU64,
    pub(crate) sessions_violated: AtomicU64,
    pub(crate) sessions_quarantined: AtomicU64,
    pub(crate) sessions_restarted: AtomicU64,
    pub(crate) sessions_stalled: AtomicU64,
    pub(crate) messages_routed: AtomicU64,
    pub(crate) actions_executed: AtomicU64,
    pub(crate) quanta: AtomicU64,
    pub(crate) peak_queue_depth: AtomicU64,
    pub(crate) sessions_batched: AtomicU64,
    pub(crate) sessions_slab: AtomicU64,
    pub(crate) sessions_demoted: AtomicU64,
    pub(crate) batch_cohorts: AtomicU64,
    pub(crate) batch_cohort_sessions: AtomicU64,
}

impl ShardMetrics {
    pub(crate) fn record_queue_depth(&self, depth: usize) {
        let depth = depth as u64;
        // A stale read only under-reports momentarily; the single-writer
        // worker makes the fetch_max race-free in practice.
        self.peak_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, shard: usize) -> ShardReport {
        ShardReport {
            shard,
            sessions_started: self.sessions_started.load(Ordering::Relaxed),
            sessions_completed: self.sessions_completed.load(Ordering::Relaxed),
            sessions_violated: self.sessions_violated.load(Ordering::Relaxed),
            sessions_quarantined: self.sessions_quarantined.load(Ordering::Relaxed),
            sessions_restarted: self.sessions_restarted.load(Ordering::Relaxed),
            sessions_stalled: self.sessions_stalled.load(Ordering::Relaxed),
            messages_routed: self.messages_routed.load(Ordering::Relaxed),
            actions_executed: self.actions_executed.load(Ordering::Relaxed),
            quanta: self.quanta.load(Ordering::Relaxed),
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed),
            sessions_batched: self.sessions_batched.load(Ordering::Relaxed),
            sessions_slab: self.sessions_slab.load(Ordering::Relaxed),
            sessions_demoted: self.sessions_demoted.load(Ordering::Relaxed),
            batch_cohorts: self.batch_cohorts.load(Ordering::Relaxed),
            batch_cohort_sessions: self.batch_cohort_sessions.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of one shard's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// Index of the shard.
    pub shard: usize,
    /// Sessions assigned to this shard.
    pub sessions_started: u64,
    /// Sessions that ran to the end (all endpoints done, none stalled).
    pub sessions_completed: u64,
    /// Finished sessions whose monitor observed at least one violation.
    pub sessions_violated: u64,
    /// Sessions the quarantine policy halted at their first rejected
    /// action (a subset of `sessions_violated`).
    pub sessions_quarantined: u64,
    /// Quarantined sessions re-admitted from their last certified
    /// checkpoint ([`crate::QuarantinePolicy::RestartFromCheckpoint`]).
    pub sessions_restarted: u64,
    /// Sessions the scheduler gave up on (every endpoint blocked).
    pub sessions_stalled: u64,
    /// Messages delivered between endpoints of this shard's sessions.
    pub messages_routed: u64,
    /// Visible communications executed (sends and receives).
    pub actions_executed: u64,
    /// Scheduling quanta served.
    pub quanta: u64,
    /// Largest run-queue depth observed.
    pub peak_queue_depth: u64,
    /// Sessions admitted into the columnar batch executor.
    pub sessions_batched: u64,
    /// Sessions that ran on the per-session slab executor from the start
    /// (heterogeneous or not batch-eligible).
    pub sessions_slab: u64,
    /// Sessions demoted from a batch to the slab executor mid-flight.
    pub sessions_demoted: u64,
    /// `(role, pc)` cohorts stepped by this shard's batches.
    pub batch_cohorts: u64,
    /// Total sessions across those cohorts (mean cohort width =
    /// `batch_cohort_sessions / batch_cohorts`).
    pub batch_cohort_sessions: u64,
}

/// Live counters of the networked serving plane's IO event loop (updated
/// by the loop thread, snapshotted by [`crate::NetServer::net_report`]).
#[derive(Debug, Default)]
pub(crate) struct NetMetrics {
    pub(crate) connections_accepted: AtomicU64,
    pub(crate) connections_rejected: AtomicU64,
    pub(crate) connections_closed: AtomicU64,
    pub(crate) sessions_opened: AtomicU64,
    pub(crate) sessions_rejected: AtomicU64,
    pub(crate) sessions_shed: AtomicU64,
    pub(crate) sessions_done: AtomicU64,
    pub(crate) frames_read: AtomicU64,
    pub(crate) frames_written: AtomicU64,
    pub(crate) bad_frames: AtomicU64,
    /// One counter per [`RejectCode`], indexed by `code as u8 - 1`.
    pub(crate) rejects: [AtomicU64; 8],
}

impl NetMetrics {
    /// Bumps the per-code counter for one rejection sent to a client.
    pub(crate) fn record_reject(&self, code: RejectCode) {
        self.rejects[(code as u8 - 1) as usize].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> NetReport {
        NetReport {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_rejected: self.connections_rejected.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_rejected: self.sessions_rejected.load(Ordering::Relaxed),
            sessions_shed: self.sessions_shed.load(Ordering::Relaxed),
            sessions_done: self.sessions_done.load(Ordering::Relaxed),
            frames_read: self.frames_read.load(Ordering::Relaxed),
            frames_written: self.frames_written.load(Ordering::Relaxed),
            bad_frames: self.bad_frames.load(Ordering::Relaxed),
            rejects: RejectCounts {
                unknown_protocol: self.rejects[0].load(Ordering::Relaxed),
                connection_limit: self.rejects[1].load(Ordering::Relaxed),
                session_limit: self.rejects[2].load(Ordering::Relaxed),
                overloaded: self.rejects[3].load(Ordering::Relaxed),
                bad_frame: self.rejects[4].load(Ordering::Relaxed),
                shutting_down: self.rejects[5].load(Ordering::Relaxed),
                quarantined: self.rejects[6].load(Ordering::Relaxed),
                banned: self.rejects[7].load(Ordering::Relaxed),
            },
            io_pass_ns: HistogramSnapshot::default(),
        }
    }
}

/// Rejections sent to clients, broken out per [`RejectCode`] — the
/// aggregate counters say *how many* opens were refused; these say *why*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RejectCounts {
    /// `RejectCode::UnknownProtocol` rejections.
    pub unknown_protocol: u64,
    /// `RejectCode::ConnectionLimit` rejections (at accept time).
    pub connection_limit: u64,
    /// `RejectCode::SessionLimit` rejections (per-connection cap).
    pub session_limit: u64,
    /// `RejectCode::Overloaded` rejections (global in-flight cap).
    pub overloaded: u64,
    /// `RejectCode::BadFrame` rejections (hostile or malformed framing).
    pub bad_frame: u64,
    /// `RejectCode::ShuttingDown` rejections.
    pub shutting_down: u64,
    /// `RejectCode::Quarantined` rejections (connection torn down because a
    /// hosted session was quarantined).
    pub quarantined: u64,
    /// `RejectCode::Banned` rejections (`Open`s refused because the
    /// connection crossed the byzantine-strike threshold).
    pub banned: u64,
}

impl RejectCounts {
    /// Total rejections across all codes.
    pub fn total(&self) -> u64 {
        self.unknown_protocol
            + self.connection_limit
            + self.session_limit
            + self.overloaded
            + self.bad_frame
            + self.shutting_down
            + self.quarantined
            + self.banned
    }
}

/// A snapshot of the networked serving plane's counters: admission control
/// (accepted/rejected connections, shed sessions) and wire health (frames,
/// bad frames).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetReport {
    /// Connections admitted into the event loop.
    pub connections_accepted: u64,
    /// Connections refused at accept time (connection limit).
    pub connections_rejected: u64,
    /// Connections closed (peer hangup, error, or hostile framing).
    pub connections_closed: u64,
    /// Sessions admitted and submitted to the shard scheduler.
    pub sessions_opened: u64,
    /// `Open` requests refused for cause (unknown protocol).
    pub sessions_rejected: u64,
    /// `Open` requests load-shed (per-connection or global in-flight cap).
    pub sessions_shed: u64,
    /// Sessions whose `Done` frame was queued back to the client.
    pub sessions_done: u64,
    /// Well-formed multiplexing frames read.
    pub frames_read: u64,
    /// Frames written back to clients.
    pub frames_written: u64,
    /// Malformed or oversized frames observed (each closes its connection).
    pub bad_frames: u64,
    /// Rejections broken out per [`RejectCode`].
    pub rejects: RejectCounts,
    /// IO event-loop pass duration in nanoseconds (one observation per
    /// accept/read/step/write/sweep pass).
    pub io_pass_ns: HistogramSnapshot,
}

impl fmt::Display for NetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "net report: {} conns accepted ({} rejected, {} closed), \
             {} sessions opened ({} rejected, {} shed), {} done",
            self.connections_accepted,
            self.connections_rejected,
            self.connections_closed,
            self.sessions_opened,
            self.sessions_rejected,
            self.sessions_shed,
            self.sessions_done,
        )?;
        writeln!(
            f,
            "  wire: {} frames in, {} frames out, {} bad",
            self.frames_read, self.frames_written, self.bad_frames,
        )?;
        writeln!(
            f,
            "  rejects: {} unknown-protocol, {} conn-limit, {} session-limit, \
             {} overloaded, {} bad-frame, {} shutting-down, {} quarantined, \
             {} banned",
            self.rejects.unknown_protocol,
            self.rejects.connection_limit,
            self.rejects.session_limit,
            self.rejects.overloaded,
            self.rejects.bad_frame,
            self.rejects.shutting_down,
            self.rejects.quarantined,
            self.rejects.banned,
        )?;
        writeln!(f, "  io pass ns: {}", self.io_pass_ns)
    }
}

/// The networked serving plane's final report: the IO loop's counters next
/// to the shard scheduler's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetServerReport {
    /// IO event-loop counters.
    pub net: NetReport,
    /// The hosted [`crate::SessionServer`]'s per-shard report.
    pub shards: ServerReport,
}

impl fmt::Display for NetServerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.net, self.shards)
    }
}

/// Aggregated server metrics: one [`ShardReport`] per worker shard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// Per-shard snapshots, in shard order.
    pub shards: Vec<ShardReport>,
    /// Aggregated observability figures (latency histograms, incident and
    /// flight-recorder totals), merged across shards.
    pub obs: ObsReport,
}

impl ServerReport {
    /// Total sessions assigned across all shards.
    pub fn sessions_started(&self) -> u64 {
        self.shards.iter().map(|s| s.sessions_started).sum()
    }

    /// Total sessions that ran to the end.
    pub fn sessions_completed(&self) -> u64 {
        self.shards.iter().map(|s| s.sessions_completed).sum()
    }

    /// Total finished sessions with monitor violations.
    pub fn sessions_violated(&self) -> u64 {
        self.shards.iter().map(|s| s.sessions_violated).sum()
    }

    /// Total sessions the scheduler gave up on.
    pub fn sessions_stalled(&self) -> u64 {
        self.shards.iter().map(|s| s.sessions_stalled).sum()
    }

    /// Total sessions the quarantine policy halted at their first rejected
    /// action.
    pub fn sessions_quarantined(&self) -> u64 {
        self.shards.iter().map(|s| s.sessions_quarantined).sum()
    }

    /// Total quarantined sessions re-admitted from their last certified
    /// checkpoint.
    pub fn sessions_restarted(&self) -> u64 {
        self.shards.iter().map(|s| s.sessions_restarted).sum()
    }

    /// Total messages routed between endpoints.
    pub fn messages_routed(&self) -> u64 {
        self.shards.iter().map(|s| s.messages_routed).sum()
    }

    /// Total visible communications executed.
    pub fn actions_executed(&self) -> u64 {
        self.shards.iter().map(|s| s.actions_executed).sum()
    }

    /// Total sessions admitted into the columnar batch executor.
    pub fn sessions_batched(&self) -> u64 {
        self.shards.iter().map(|s| s.sessions_batched).sum()
    }

    /// Total sessions that ran on the slab executor from the start.
    pub fn sessions_slab(&self) -> u64 {
        self.shards.iter().map(|s| s.sessions_slab).sum()
    }

    /// Total sessions demoted from a batch to the slab mid-flight.
    pub fn sessions_demoted(&self) -> u64 {
        self.shards.iter().map(|s| s.sessions_demoted).sum()
    }

    /// Mean width of the `(role, pc)` cohorts stepped by the batch
    /// executors — the observable columnar win: per-cohort work is
    /// amortised over this many sessions. `0.0` before any cohort ran.
    pub fn mean_cohort_width(&self) -> f64 {
        let cohorts: u64 = self.shards.iter().map(|s| s.batch_cohorts).sum();
        if cohorts == 0 {
            return 0.0;
        }
        let sessions: u64 = self.shards.iter().map(|s| s.batch_cohort_sessions).sum();
        sessions as f64 / cohorts as f64
    }
}

impl fmt::Display for ServerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "server report: {} sessions started, {} completed ({} violated, {} quarantined, \
             {} restarted, {} stalled), {} messages routed, {} actions",
            self.sessions_started(),
            self.sessions_completed(),
            self.sessions_violated(),
            self.sessions_quarantined(),
            self.sessions_restarted(),
            self.sessions_stalled(),
            self.messages_routed(),
            self.actions_executed(),
        )?;
        writeln!(
            f,
            "  batching: {} batched / {} slab ({} demoted), mean cohort width {:.1}",
            self.sessions_batched(),
            self.sessions_slab(),
            self.sessions_demoted(),
            self.mean_cohort_width(),
        )?;
        write!(f, "{}", self.obs)?;
        for s in &self.shards {
            writeln!(
                f,
                "  shard {}: {} started, {} completed, {} routed, {} quanta, peak queue {}, \
                 {} batched, {} slab",
                s.shard,
                s.sessions_started,
                s.sessions_completed,
                s.messages_routed,
                s.quanta,
                s.peak_queue_depth,
                s.sessions_batched,
                s.sessions_slab,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_shards_and_display_mentions_them() {
        let report = ServerReport {
            shards: vec![
                ShardReport {
                    shard: 0,
                    sessions_started: 3,
                    sessions_completed: 2,
                    sessions_violated: 1,
                    sessions_quarantined: 1,
                    sessions_restarted: 0,
                    sessions_stalled: 0,
                    messages_routed: 10,
                    actions_executed: 20,
                    quanta: 5,
                    peak_queue_depth: 2,
                    sessions_batched: 2,
                    sessions_slab: 1,
                    sessions_demoted: 1,
                    batch_cohorts: 4,
                    batch_cohort_sessions: 10,
                },
                ShardReport {
                    shard: 1,
                    sessions_started: 4,
                    sessions_completed: 4,
                    sessions_violated: 0,
                    sessions_quarantined: 0,
                    sessions_restarted: 0,
                    sessions_stalled: 0,
                    messages_routed: 6,
                    actions_executed: 12,
                    quanta: 4,
                    peak_queue_depth: 1,
                    sessions_batched: 4,
                    sessions_slab: 0,
                    sessions_demoted: 0,
                    batch_cohorts: 2,
                    batch_cohort_sessions: 8,
                },
            ],
            obs: ObsReport::default(),
        };
        assert_eq!(report.sessions_started(), 7);
        assert_eq!(report.sessions_completed(), 6);
        assert_eq!(report.messages_routed(), 16);
        assert_eq!(report.actions_executed(), 32);
        assert_eq!(report.sessions_batched(), 6);
        assert_eq!(report.sessions_slab(), 1);
        assert_eq!(report.sessions_demoted(), 1);
        assert!((report.mean_cohort_width() - 3.0).abs() < 1e-9);
        let text = report.to_string();
        assert!(text.contains("7 sessions started"), "{text}");
        assert!(text.contains("shard 1"), "{text}");
        assert!(text.contains("6 batched / 1 slab"), "{text}");
    }

    #[test]
    fn mean_cohort_width_is_zero_before_any_cohort() {
        let report = ServerReport::default();
        assert_eq!(report.mean_cohort_width(), 0.0);
    }

    #[test]
    fn degenerate_reports_display_without_dividing_by_zero() {
        // Entirely empty: no shards, no observations, no cohorts.
        let empty = ServerReport::default();
        assert_eq!(empty.sessions_started(), 0);
        assert_eq!(empty.mean_cohort_width(), 0.0);
        assert_eq!(empty.obs.session_wall_ns.p99(), 0);
        let text = empty.to_string();
        assert!(text.contains("0 sessions started"), "{text}");
        assert!(text.contains("mean cohort width 0.0"), "{text}");

        // A shard that ran but never formed a cohort (pure slab traffic):
        // the width ratio must stay defined.
        let slab_only = ServerReport {
            shards: vec![ShardReport {
                shard: 0,
                sessions_started: 5,
                sessions_completed: 5,
                sessions_violated: 0,
                sessions_quarantined: 0,
                sessions_restarted: 0,
                sessions_stalled: 0,
                messages_routed: 15,
                actions_executed: 30,
                quanta: 5,
                peak_queue_depth: 1,
                sessions_batched: 0,
                sessions_slab: 5,
                sessions_demoted: 0,
                batch_cohorts: 0,
                batch_cohort_sessions: 0,
            }],
            obs: ObsReport::default(),
        };
        assert_eq!(slab_only.mean_cohort_width(), 0.0);
        assert!(slab_only.to_string().contains("mean cohort width 0.0"));
    }

    #[test]
    fn net_report_displays_per_code_rejects_and_io_pass_percentiles() {
        let metrics = NetMetrics::default();
        metrics.record_reject(RejectCode::Overloaded);
        metrics.record_reject(RejectCode::Overloaded);
        metrics.record_reject(RejectCode::BadFrame);
        metrics.record_reject(RejectCode::UnknownProtocol);
        metrics.record_reject(RejectCode::ConnectionLimit);
        metrics.record_reject(RejectCode::SessionLimit);
        metrics.record_reject(RejectCode::ShuttingDown);
        metrics.record_reject(RejectCode::Quarantined);
        metrics.record_reject(RejectCode::Banned);
        metrics.record_reject(RejectCode::Banned);
        let report = metrics.snapshot();
        assert_eq!(
            report.rejects,
            RejectCounts {
                unknown_protocol: 1,
                connection_limit: 1,
                session_limit: 1,
                overloaded: 2,
                bad_frame: 1,
                shutting_down: 1,
                quarantined: 1,
                banned: 2,
            }
        );
        assert_eq!(report.rejects.total(), 10);
        assert!(report.to_string().contains("2 banned"));
        let text = report.to_string();
        assert!(text.contains("2 overloaded"), "{text}");
        assert!(text.contains("1 bad-frame"), "{text}");
        assert!(text.contains("io pass ns"), "{text}");
    }
}
