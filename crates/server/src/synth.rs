//! Skeleton endpoint implementations synthesized from projections.
//!
//! Load generation and differential testing need *some* certified
//! implementation for every role of arbitrary (randomized) protocols. The
//! skeletons built here follow the projected local type literally: an
//! internal choice always selects its **first** branch and sends the
//! canonical default value of the payload sort, an external choice
//! implements every alternative, recursion becomes a process loop. The
//! result type-checks against the projection by construction, so
//! [`Protocol::implement_against_projection`] certifies it — giving a fully
//! deterministic session whose per-endpoint traces are schedule-independent
//! (which is what the harness-vs-server differential tests rely on).

use zooid_dsl::{CertifiedProcess, Protocol};
use zooid_mpst::global::GlobalType;
use zooid_mpst::local::LocalType;
use zooid_mpst::{Label, Role, Sort};
use zooid_proc::{Expr, Externals, Proc, RecvAlt};

use crate::error::{Result, ServerError};

/// The canonical default expression of a payload sort (`0`, `false`, `""`,
/// pairs of defaults, ...), or `None` for sorts with no closed constructor
/// in the expression language (sums and sequences).
pub fn default_expr(sort: &Sort) -> Option<Expr> {
    match sort {
        Sort::Unit => Some(Expr::unit()),
        Sort::Nat => Some(Expr::lit(0u64)),
        Sort::Int => Some(Expr::lit(0i64)),
        Sort::Bool => Some(Expr::lit(false)),
        Sort::Str => Some(Expr::lit("")),
        Sort::Prod(a, b) => Some(Expr::pair(default_expr(a)?, default_expr(b)?)),
        Sort::Sum(..) | Sort::Seq(_) => None,
    }
}

/// The skeleton process of a local type: first-branch sends with default
/// payloads, exhaustive receives, loops for recursion.
///
/// Returns `None` if some send position carries a sort without a
/// [`default_expr`].
pub fn skeleton_proc(local: &LocalType) -> Option<Proc> {
    match local {
        LocalType::End => Some(Proc::Finish),
        LocalType::Var(i) => Some(Proc::Jump(*i)),
        LocalType::Rec(body) => Some(Proc::loop_(skeleton_proc(body)?)),
        LocalType::Send { to, branches } => {
            let branch = branches.first()?;
            Some(Proc::send(
                to.clone(),
                branch.label.clone(),
                default_expr(&branch.sort)?,
                skeleton_proc(&branch.cont)?,
            ))
        }
        LocalType::Recv { from, branches } => {
            let alts = branches
                .iter()
                .map(|b| {
                    Some(RecvAlt::new(
                        b.label.clone(),
                        b.sort.clone(),
                        "_x",
                        skeleton_proc(&b.cont)?,
                    ))
                })
                .collect::<Option<Vec<_>>>()?;
            Some(Proc::recv(from.clone(), alts))
        }
    }
}

/// Certifies a skeleton implementation for every participant of a protocol.
///
/// # Errors
///
/// Fails if the protocol is not projectable or some projection needs a
/// payload sort without a default value.
pub fn skeleton_endpoints(protocol: &Protocol) -> Result<Vec<(CertifiedProcess, Externals)>> {
    let externals = Externals::new();
    protocol
        .project_all()?
        .into_iter()
        .map(|(role, local)| {
            let proc = skeleton_proc(&local).ok_or_else(|| ServerError::Unsupported {
                reason: format!("no default payload for some sort in the projection onto `{role}`"),
            })?;
            let cert = protocol.implement_against_projection(&role, proc, &externals)?;
            Ok((cert, externals.clone()))
        })
        .collect()
}

/// The minimal protocol mutations a byzantine driver can embody — **one
/// mutation per driver**, so every hostile-campaign case has a known
/// expected outcome class.
///
/// Each mutation rewrites the protocol's global type at exactly one site
/// (the first message, whose sender becomes the byzantine actor); the
/// mutated actor is then *certified against the mutated decoy* — same name,
/// same participants, so it passes submission validation — while every
/// other role stays honest. The compiled monitor is the only line of
/// defence that can notice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ByzantineMutation {
    /// The actor sends a label the protocol does not allow at that point.
    WrongLabel,
    /// The actor sends the right label with a payload of the wrong sort.
    WrongSort,
    /// The actor sends one extra message after the protocol has terminated.
    AfterTermination,
    /// The actor stops participating after its first send: the session goes
    /// silent instead of misbehaving observably.
    PrematureSilence,
}

/// The outcome class a byzantine mutation is expected to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExpectedClass {
    /// The monitor records a violation and the session is quarantined.
    Violation,
    /// No observable protocol violation: the session ends compliant but
    /// incomplete (silence is indistinguishable from slowness).
    Silence,
}

impl ByzantineMutation {
    /// Every mutation, for campaign matrices.
    pub fn all() -> [ByzantineMutation; 4] {
        [
            ByzantineMutation::WrongLabel,
            ByzantineMutation::WrongSort,
            ByzantineMutation::AfterTermination,
            ByzantineMutation::PrematureSilence,
        ]
    }

    /// The expected outcome class when one actor carries this mutation and
    /// every other role is honest.
    pub fn expected(self) -> ExpectedClass {
        match self {
            ByzantineMutation::WrongLabel
            | ByzantineMutation::WrongSort
            | ByzantineMutation::AfterTermination => ExpectedClass::Violation,
            ByzantineMutation::PrematureSilence => ExpectedClass::Silence,
        }
    }
}

impl std::fmt::Display for ByzantineMutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ByzantineMutation::WrongLabel => "wrong-label",
            ByzantineMutation::WrongSort => "wrong-sort",
            ByzantineMutation::AfterTermination => "after-termination",
            ByzantineMutation::PrematureSilence => "premature-silence",
        };
        f.write_str(s)
    }
}

/// One synthesized byzantine driver: the full endpoint cast for a session
/// in which exactly one role misbehaves in exactly one way.
#[derive(Debug, Clone)]
pub struct ByzantineDriver {
    /// The mutation this driver embodies.
    pub mutation: ByzantineMutation,
    /// The misbehaving participant (the sender of the protocol's first
    /// message).
    pub actor: Role,
    /// Endpoints for every participant: the actor certified against the
    /// mutated decoy, everyone else honest.
    pub endpoints: Vec<(CertifiedProcess, Externals)>,
}

/// The sender and receiver of the first message of a global type.
fn first_message(g: &GlobalType) -> Option<(Role, Role)> {
    match g {
        GlobalType::End | GlobalType::Var(_) => None,
        GlobalType::Rec(body) => first_message(body),
        GlobalType::Msg { from, to, .. } => Some((from.clone(), to.clone())),
    }
}

/// A sort with a default value that differs from `sort`.
fn flipped_sort(sort: &Sort) -> Sort {
    if matches!(sort, Sort::Bool) {
        Sort::Nat
    } else {
        Sort::Bool
    }
}

/// Rewrites the global type at the mutation site. Returns `None` when the
/// mutation does not apply to this protocol's shape (e.g. no reachable
/// `end` for [`ByzantineMutation::AfterTermination`]).
fn mutate_global(
    g: &GlobalType,
    mutation: ByzantineMutation,
    actor: &Role,
    peer: &Role,
) -> Option<GlobalType> {
    match g {
        GlobalType::End => match mutation {
            ByzantineMutation::AfterTermination => Some(GlobalType::msg1(
                actor.clone(),
                peer.clone(),
                "byz_extra",
                Sort::Unit,
                GlobalType::End,
            )),
            _ => None,
        },
        GlobalType::Var(_) => None,
        GlobalType::Rec(body) => Some(GlobalType::rec(mutate_global(body, mutation, actor, peer)?)),
        GlobalType::Msg { from, to, branches } => match mutation {
            ByzantineMutation::WrongLabel => {
                let mut branches = branches.clone();
                let first = branches.first_mut()?;
                first.label = Label::new(format!("byz_{}", first.label));
                Some(GlobalType::msg(
                    from.clone(),
                    to.clone(),
                    branches.into_iter().map(|b| (b.label, b.sort, b.cont)),
                ))
            }
            ByzantineMutation::WrongSort => {
                let mut branches = branches.clone();
                let first = branches.first_mut()?;
                first.sort = flipped_sort(&first.sort);
                Some(GlobalType::msg(
                    from.clone(),
                    to.clone(),
                    branches.into_iter().map(|b| (b.label, b.sort, b.cont)),
                ))
            }
            ByzantineMutation::PrematureSilence => {
                // The actor completes its first send and then goes silent.
                // Every branch continues as `end` so the decoy still merges
                // and projects for every role.
                if branches.iter().all(|b| b.cont == GlobalType::End) {
                    return None; // the protocol is already one message long
                }
                Some(GlobalType::msg(
                    from.clone(),
                    to.clone(),
                    branches
                        .iter()
                        .map(|b| (b.label.clone(), b.sort.clone(), GlobalType::End)),
                ))
            }
            ByzantineMutation::AfterTermination => {
                // Recurse: replace every reachable `end` with one extra
                // actor-sent message. All terminating paths must gain the
                // same epilogue, or the decoy's branches stop merging for
                // roles not involved in the choice.
                let mut branches = branches.clone();
                let mut rewritten = false;
                for b in &mut branches {
                    if let Some(cont) = mutate_global(&b.cont, mutation, actor, peer) {
                        b.cont = cont;
                        rewritten = true;
                    }
                }
                if !rewritten {
                    return None;
                }
                Some(GlobalType::msg(
                    from.clone(),
                    to.clone(),
                    branches.into_iter().map(|b| (b.label, b.sort, b.cont)),
                ))
            }
        },
    }
}

/// Synthesizes a byzantine driver for a protocol: the sender of the first
/// message misbehaves per `mutation`, everyone else runs the honest
/// skeleton.
///
/// Returns `Ok(None)` when the mutation does not apply to the protocol's
/// shape (no terminating path for an after-termination message, a protocol
/// already one message long for premature silence, ...).
///
/// # Errors
///
/// Fails if the mutated decoy does not project or its skeleton cannot be
/// certified — both indicate a generator bug rather than a hostile input.
pub fn byzantine_driver(
    protocol: &Protocol,
    mutation: ByzantineMutation,
) -> Result<Option<ByzantineDriver>> {
    let Some((actor, peer)) = first_message(protocol.global()) else {
        return Ok(None);
    };
    let Some(mutated) = mutate_global(protocol.global(), mutation, &actor, &peer) else {
        return Ok(None);
    };
    // Same name, same participants: the decoy passes submission validation;
    // only the monitor can tell the difference.
    let decoy = Protocol::new(protocol.name(), mutated)?;
    if decoy.roles() != protocol.roles() {
        return Ok(None); // the mutation changed the cast; not minimal
    }
    let externals = Externals::new();
    let mut endpoints = Vec::new();
    for (role, local) in protocol.project_all()? {
        let (certify_against, local) = if role == actor {
            let local = decoy
                .project_all()?
                .into_iter()
                .find(|(r, _)| *r == actor)
                .map(|(_, l)| l)
                .ok_or_else(|| ServerError::Unsupported {
                    reason: format!("decoy lost participant `{actor}`"),
                })?;
            (&decoy, local)
        } else {
            (protocol, local)
        };
        let proc = skeleton_proc(&local).ok_or_else(|| ServerError::Unsupported {
            reason: format!("no default payload for some sort in the projection onto `{role}`"),
        })?;
        let cert = certify_against.implement_against_projection(&role, proc, &externals)?;
        endpoints.push((cert, externals.clone()));
    }
    Ok(Some(ByzantineDriver {
        mutation,
        actor,
        endpoints,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use zooid_mpst::generators;
    use zooid_runtime::SessionHarness;

    #[test]
    fn default_expressions_cover_the_base_sorts() {
        for sort in [Sort::Unit, Sort::Nat, Sort::Int, Sort::Bool, Sort::Str] {
            assert!(default_expr(&sort).is_some(), "{sort:?}");
        }
        assert!(default_expr(&Sort::prod(Sort::Nat, Sort::Bool)).is_some());
        assert!(default_expr(&Sort::sum(Sort::Nat, Sort::Bool)).is_none());
    }

    #[test]
    fn skeletons_certify_and_run_for_the_named_protocols() {
        for (name, g) in [
            ("ring", generators::ring3()),
            ("two_buyer", generators::two_buyer()),
            ("fanout", generators::fanout_n(4)),
        ] {
            let protocol = Protocol::new(name, g).unwrap();
            let endpoints = skeleton_endpoints(&protocol).unwrap();
            assert_eq!(endpoints.len(), protocol.roles().len());
            let mut harness = SessionHarness::new(protocol.clone());
            for (cert, ext) in endpoints {
                harness.add_endpoint(cert, ext).unwrap();
            }
            harness.with_max_steps(64);
            let report = harness.run().unwrap();
            assert!(report.compliant, "{name}: {:?}", report.violations);
        }
    }

    #[test]
    fn byzantine_drivers_land_in_their_expected_class() {
        for (name, g) in [
            ("ring", generators::ring3()),
            ("two_buyer", generators::two_buyer()),
            ("fanout", generators::fanout_n(4)),
        ] {
            let protocol = Protocol::new(name, g).unwrap();
            for mutation in ByzantineMutation::all() {
                let Some(driver) = byzantine_driver(&protocol, mutation).unwrap() else {
                    continue;
                };
                assert_eq!(driver.mutation, mutation);
                let mut harness = SessionHarness::new(protocol.clone());
                for (cert, ext) in driver.endpoints {
                    harness.add_endpoint(cert, ext).unwrap();
                }
                harness.with_max_steps(64);
                harness.with_recv_timeout(std::time::Duration::from_millis(300));
                let report = harness.run().unwrap();
                match mutation.expected() {
                    ExpectedClass::Violation => assert!(
                        !report.compliant,
                        "{name}/{mutation}: expected a monitor violation"
                    ),
                    ExpectedClass::Silence => assert!(
                        report.compliant && !report.complete,
                        "{name}/{mutation}: expected compliant-but-incomplete silence \
                         (compliant={}, complete={})",
                        report.compliant,
                        report.complete
                    ),
                }
            }
        }
    }

    #[test]
    fn byzantine_mutations_that_do_not_apply_return_none() {
        // A single-message protocol has no continuation to silence.
        let one_shot = Protocol::new(
            "one_shot",
            GlobalType::msg1(
                Role::new("a"),
                Role::new("b"),
                "m",
                Sort::Nat,
                GlobalType::End,
            ),
        )
        .unwrap();
        assert!(
            byzantine_driver(&one_shot, ByzantineMutation::PrematureSilence)
                .unwrap()
                .is_none()
        );
        // An infinite loop has no reachable `end` to speak after.
        let pipeline = Protocol::new("pipeline", generators::pipeline()).unwrap();
        assert!(
            byzantine_driver(&pipeline, ByzantineMutation::AfterTermination)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn recursive_protocols_synthesize_loops() {
        let protocol = Protocol::new("pipeline", generators::pipeline()).unwrap();
        let endpoints = skeleton_endpoints(&protocol).unwrap();
        // The pipeline loops forever; a bounded run must hit the step limit.
        let mut harness = SessionHarness::new(protocol);
        for (cert, ext) in endpoints {
            harness.add_endpoint(cert, ext).unwrap();
        }
        harness.with_max_steps(10);
        harness.with_recv_timeout(std::time::Duration::from_millis(500));
        let report = harness.run().unwrap();
        assert!(report.compliant, "{:?}", report.violations);
    }
}
