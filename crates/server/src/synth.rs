//! Skeleton endpoint implementations synthesized from projections.
//!
//! Load generation and differential testing need *some* certified
//! implementation for every role of arbitrary (randomized) protocols. The
//! skeletons built here follow the projected local type literally: an
//! internal choice always selects its **first** branch and sends the
//! canonical default value of the payload sort, an external choice
//! implements every alternative, recursion becomes a process loop. The
//! result type-checks against the projection by construction, so
//! [`Protocol::implement_against_projection`] certifies it — giving a fully
//! deterministic session whose per-endpoint traces are schedule-independent
//! (which is what the harness-vs-server differential tests rely on).

use zooid_dsl::{CertifiedProcess, Protocol};
use zooid_mpst::local::LocalType;
use zooid_mpst::Sort;
use zooid_proc::{Expr, Externals, Proc, RecvAlt};

use crate::error::{Result, ServerError};

/// The canonical default expression of a payload sort (`0`, `false`, `""`,
/// pairs of defaults, ...), or `None` for sorts with no closed constructor
/// in the expression language (sums and sequences).
pub fn default_expr(sort: &Sort) -> Option<Expr> {
    match sort {
        Sort::Unit => Some(Expr::unit()),
        Sort::Nat => Some(Expr::lit(0u64)),
        Sort::Int => Some(Expr::lit(0i64)),
        Sort::Bool => Some(Expr::lit(false)),
        Sort::Str => Some(Expr::lit("")),
        Sort::Prod(a, b) => Some(Expr::pair(default_expr(a)?, default_expr(b)?)),
        Sort::Sum(..) | Sort::Seq(_) => None,
    }
}

/// The skeleton process of a local type: first-branch sends with default
/// payloads, exhaustive receives, loops for recursion.
///
/// Returns `None` if some send position carries a sort without a
/// [`default_expr`].
pub fn skeleton_proc(local: &LocalType) -> Option<Proc> {
    match local {
        LocalType::End => Some(Proc::Finish),
        LocalType::Var(i) => Some(Proc::Jump(*i)),
        LocalType::Rec(body) => Some(Proc::loop_(skeleton_proc(body)?)),
        LocalType::Send { to, branches } => {
            let branch = branches.first()?;
            Some(Proc::send(
                to.clone(),
                branch.label.clone(),
                default_expr(&branch.sort)?,
                skeleton_proc(&branch.cont)?,
            ))
        }
        LocalType::Recv { from, branches } => {
            let alts = branches
                .iter()
                .map(|b| {
                    Some(RecvAlt::new(
                        b.label.clone(),
                        b.sort.clone(),
                        "_x",
                        skeleton_proc(&b.cont)?,
                    ))
                })
                .collect::<Option<Vec<_>>>()?;
            Some(Proc::recv(from.clone(), alts))
        }
    }
}

/// Certifies a skeleton implementation for every participant of a protocol.
///
/// # Errors
///
/// Fails if the protocol is not projectable or some projection needs a
/// payload sort without a default value.
pub fn skeleton_endpoints(protocol: &Protocol) -> Result<Vec<(CertifiedProcess, Externals)>> {
    let externals = Externals::new();
    protocol
        .project_all()?
        .into_iter()
        .map(|(role, local)| {
            let proc = skeleton_proc(&local).ok_or_else(|| ServerError::Unsupported {
                reason: format!("no default payload for some sort in the projection onto `{role}`"),
            })?;
            let cert = protocol.implement_against_projection(&role, proc, &externals)?;
            Ok((cert, externals.clone()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zooid_mpst::generators;
    use zooid_runtime::SessionHarness;

    #[test]
    fn default_expressions_cover_the_base_sorts() {
        for sort in [Sort::Unit, Sort::Nat, Sort::Int, Sort::Bool, Sort::Str] {
            assert!(default_expr(&sort).is_some(), "{sort:?}");
        }
        assert!(default_expr(&Sort::prod(Sort::Nat, Sort::Bool)).is_some());
        assert!(default_expr(&Sort::sum(Sort::Nat, Sort::Bool)).is_none());
    }

    #[test]
    fn skeletons_certify_and_run_for_the_named_protocols() {
        for (name, g) in [
            ("ring", generators::ring3()),
            ("two_buyer", generators::two_buyer()),
            ("fanout", generators::fanout_n(4)),
        ] {
            let protocol = Protocol::new(name, g).unwrap();
            let endpoints = skeleton_endpoints(&protocol).unwrap();
            assert_eq!(endpoints.len(), protocol.roles().len());
            let mut harness = SessionHarness::new(protocol.clone());
            for (cert, ext) in endpoints {
                harness.add_endpoint(cert, ext).unwrap();
            }
            harness.with_max_steps(64);
            let report = harness.run().unwrap();
            assert!(report.compliant, "{name}: {:?}", report.violations);
        }
    }

    #[test]
    fn recursive_protocols_synthesize_loops() {
        let protocol = Protocol::new("pipeline", generators::pipeline()).unwrap();
        let endpoints = skeleton_endpoints(&protocol).unwrap();
        // The pipeline loops forever; a bounded run must hit the step limit.
        let mut harness = SessionHarness::new(protocol);
        for (cert, ext) in endpoints {
            harness.add_endpoint(cert, ext).unwrap();
        }
        harness.with_max_steps(10);
        harness.with_recv_timeout(std::time::Duration::from_millis(500));
        let report = harness.run().unwrap();
        assert!(report.compliant, "{:?}", report.violations);
    }
}
