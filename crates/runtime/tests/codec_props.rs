//! Property-based tests for the wire codec: arbitrary values round-trip, and
//! corrupted frames never decode into a different message silently... they
//! either decode to the original or fail.

use proptest::prelude::*;

use zooid_runtime::codec::{decode_message, encode_message, Message};
use zooid_proc::Value;

/// A strategy for arbitrary payload values (bounded depth).
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        any::<u64>().prop_map(Value::Nat),
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        "[a-zA-Z0-9 ]{0,16}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(Value::inl),
            inner.clone().prop_map(Value::inr),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Value::pair(a, b)),
            proptest::collection::vec(inner, 0..4).prop_map(Value::Seq),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_message_round_trips(label in "[a-zA-Z_][a-zA-Z0-9_]{0,12}", value in value_strategy()) {
        let msg = Message::new(label, value);
        let encoded = encode_message(&msg);
        let decoded = decode_message(&encoded).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn truncations_never_decode_to_the_original(value in value_strategy(), cut_fraction in 0.0f64..1.0) {
        let msg = Message::new("label", value);
        let encoded = encode_message(&msg);
        let cut = ((encoded.len() as f64) * cut_fraction) as usize;
        if cut < encoded.len() {
            match decode_message(&encoded[..cut]) {
                // Truncation may still parse if the dropped suffix was not
                // needed... but then it must not silently equal the original
                // unless nothing was actually dropped.
                Ok(decoded) => prop_assert!(decoded != msg || cut == encoded.len()),
                Err(_) => {}
            }
        }
    }

    #[test]
    fn appending_garbage_is_always_rejected(value in value_strategy(), garbage in 1usize..8) {
        let msg = Message::new("l", value);
        let mut encoded = encode_message(&msg).to_vec();
        encoded.extend(std::iter::repeat(0xAA).take(garbage));
        prop_assert!(decode_message(&encoded).is_err());
    }

    /// The in-memory transport now passes `(Label, Value)` frames directly
    /// and no longer exercises the codec on every message, so this suite is
    /// the codec's sole guardian: `decode ∘ encode = id` must keep holding
    /// for every value shape (the TCP path depends on it).
    #[test]
    fn round_trip_is_the_identity_on_every_shape_combination(
        label in "[a-zA-Z_][a-zA-Z0-9_]{0,12}",
        a in value_strategy(),
        b in value_strategy(),
    ) {
        // Force every composite constructor around arbitrary leaves, so no
        // tag is ever only reachable through the generator's whims.
        for value in [
            Value::pair(a.clone(), b.clone()),
            Value::inl(a.clone()),
            Value::inr(b.clone()),
            Value::Seq(vec![a.clone(), b.clone(), a.clone()]),
            Value::pair(Value::inr(Value::Seq(vec![b])), Value::inl(a)),
        ] {
            let msg = Message::new(label.as_str(), value);
            prop_assert_eq!(decode_message(&encode_message(&msg)).unwrap(), msg);
        }
    }
}
