//! Differential tests: the compiled endpoint executor
//! ([`CompiledEndpointTask`]) against the tree-walking oracle
//! ([`EndpointTask`]) — the exhaustive-oracle pattern the ROADMAP mandates
//! for every engine replacement, applied to the data plane.
//!
//! Both executors run the same deterministic endpoints (first-branch sends
//! with default payloads, synthesized from projections) over in-memory
//! networks under a *shared cooperative scheduler*, so for every case study,
//! every randomized projectable protocol and every polling schedule we can
//! require exact agreement on:
//!
//! * per-endpoint statuses (`Finished` / `StepLimitReached` / `Stalled` /
//!   `Failed` with the same error string),
//! * per-endpoint value-level traces,
//! * the monitor's verdicts (compliance, completion, the accepted global
//!   trace) — with the compiled run feeding the monitor pre-interned
//!   actions and a `TraceMonitor` shadowing it action by action,
//! * stall and step-limit behaviour, including `WouldBlock` polling
//!   interleavings (single-step vs drain-until-block schedules, rotated
//!   start orders).

use std::collections::BTreeMap;
use std::sync::Arc;

use zooid_cfsm::System;
use zooid_mpst::global::GlobalType;
use zooid_mpst::local::LocalType;
use zooid_mpst::projection::project_all;
use zooid_mpst::{generators, Action, Role, Sort};
use zooid_proc::{Expr, Externals, Proc, RecvAlt, Value, ValueAction};
use zooid_runtime::cexec::{CompiledEndpointTask, EndpointProgram};
use zooid_runtime::exec::{EndpointStatus, EndpointTask, ExecOptions, StepOutcome};
use zooid_runtime::monitor::{CompiledMonitor, TraceMonitor};
use zooid_runtime::transport::InMemoryNetwork;

// ---------------------------------------------------------------------
// Skeleton synthesis (first-branch sends, default payloads) — the same
// construction the server's load generator uses, kept local because this
// crate sits below `zooid-server`.
// ---------------------------------------------------------------------

fn default_expr(sort: &Sort) -> Option<Expr> {
    match sort {
        Sort::Unit => Some(Expr::unit()),
        Sort::Nat => Some(Expr::lit(0u64)),
        Sort::Int => Some(Expr::lit(0i64)),
        Sort::Bool => Some(Expr::lit(false)),
        Sort::Str => Some(Expr::lit("")),
        Sort::Prod(a, b) => Some(Expr::pair(default_expr(a)?, default_expr(b)?)),
        Sort::Sum(..) | Sort::Seq(_) => None,
    }
}

fn skeleton_proc(local: &LocalType) -> Option<Proc> {
    match local {
        LocalType::End => Some(Proc::Finish),
        LocalType::Var(i) => Some(Proc::Jump(*i)),
        LocalType::Rec(body) => Some(Proc::loop_(skeleton_proc(body)?)),
        LocalType::Send { to, branches } => {
            let branch = branches.first()?;
            Some(Proc::send(
                to.clone(),
                branch.label.clone(),
                default_expr(&branch.sort)?,
                skeleton_proc(&branch.cont)?,
            ))
        }
        LocalType::Recv { from, branches } => {
            let alts = branches
                .iter()
                .map(|b| {
                    Some(RecvAlt::new(
                        b.label.clone(),
                        b.sort.clone(),
                        "_x",
                        skeleton_proc(&b.cont)?,
                    ))
                })
                .collect::<Option<Vec<_>>>()?;
            Some(Proc::recv(from.clone(), alts))
        }
    }
}

fn skeleton_endpoints(g: &GlobalType) -> Option<Vec<(Role, Proc)>> {
    project_all(g)
        .ok()?
        .into_iter()
        .map(|(role, local)| Some((role, skeleton_proc(&local)?)))
        .collect()
}

// ---------------------------------------------------------------------
// The shared cooperative driver
// ---------------------------------------------------------------------

/// How the scheduler polls the tasks of a round.
#[derive(Clone, Copy, Debug)]
enum Mode {
    /// One `step` per task per round: maximises `WouldBlock` yields.
    StepOne,
    /// Step each task until it blocks or finishes before moving on.
    Drain,
}

#[derive(Clone, Copy, Debug)]
struct Schedule {
    mode: Mode,
    /// Rotation of the task visit order per round.
    offset: usize,
}

const SCHEDULES: [Schedule; 4] = [
    Schedule { mode: Mode::Drain, offset: 0 },
    Schedule { mode: Mode::Drain, offset: 1 },
    Schedule { mode: Mode::StepOne, offset: 0 },
    Schedule { mode: Mode::StepOne, offset: 2 },
];

#[derive(Debug, PartialEq)]
struct RunResult {
    statuses: BTreeMap<Role, EndpointStatus>,
    traces: BTreeMap<Role, Vec<ValueAction>>,
    compliant: bool,
    complete: bool,
    global_trace: Vec<Action>,
}

enum AnyTask {
    Tree(EndpointTask),
    Compiled(CompiledEndpointTask),
}

impl AnyTask {
    fn is_done(&self) -> bool {
        match self {
            AnyTask::Tree(t) => t.is_done(),
            AnyTask::Compiled(t) => t.is_done(),
        }
    }
    fn mark_stalled(&mut self) {
        match self {
            AnyTask::Tree(t) => t.mark_stalled(),
            AnyTask::Compiled(t) => t.mark_stalled(),
        }
    }
}

/// Runs every endpoint of `procs` cooperatively on one thread and returns
/// the observable outcome. `compiled` selects the engine; the monitor setup
/// is identical for both, and on the compiled engine a `TraceMonitor`
/// shadows the `CompiledMonitor` on every single observation.
fn run(
    g: &GlobalType,
    procs: &[(Role, Proc)],
    options: &ExecOptions,
    schedule: Schedule,
    compiled: bool,
) -> RunResult {
    let mut network = InMemoryNetwork::new(procs.iter().map(|(r, _)| r.clone()));
    let system = Arc::new(System::from_global(g).expect("projectable").compile());
    let mut monitor = CompiledMonitor::new(Arc::clone(&system));
    let mut shadow = TraceMonitor::new(g).expect("well-formed");

    let mut tasks: Vec<(Role, AnyTask, _)> = procs
        .iter()
        .map(|(role, proc)| {
            let transport = network.take_endpoint(role).expect("unique roles");
            let task = if compiled {
                let program = Arc::new(EndpointProgram::with_system(
                    Arc::new(
                        zooid_proc::CompiledProc::compile(proc, role, &Externals::new())
                            .expect("skeletons compile"),
                    ),
                    &system,
                ));
                AnyTask::Compiled(CompiledEndpointTask::new(
                    program,
                    Externals::new(),
                    options.clone(),
                ))
            } else {
                AnyTask::Tree(EndpointTask::new(
                    proc.clone(),
                    role.clone(),
                    Externals::new(),
                    options.clone(),
                ))
            };
            (role.clone(), task, transport)
        })
        .collect();

    let n = tasks.len();
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        assert!(rounds < 100_000, "cooperative schedule must terminate");
        let mut progressed = false;
        for k in 0..n {
            let idx = (k + schedule.offset) % n;
            let (_, task, transport) = &mut tasks[idx];
            loop {
                let outcome = match task {
                    AnyTask::Tree(t) => t.step(transport, &mut |va| {
                        let action = zooid_proc::erase(va);
                        let a = monitor.observe(&action);
                        let b = shadow.observe(&action);
                        assert_eq!(a, b, "monitors disagree on {action}");
                    }),
                    AnyTask::Compiled(t) => t.step_mem(transport, &mut |va, interned| {
                        let action = zooid_proc::erase(va);
                        let a = match interned {
                            Some(interned) => {
                                monitor.observe_interned(interned, || action.clone())
                            }
                            None => monitor.observe(&action),
                        };
                        let b = shadow.observe(&action);
                        assert_eq!(a, b, "monitors disagree on {action}");
                    }),
                };
                match (outcome, schedule.mode) {
                    (StepOutcome::Progress, Mode::Drain) => progressed = true,
                    (StepOutcome::Progress, Mode::StepOne) => {
                        progressed = true;
                        break;
                    }
                    _ => break,
                }
            }
        }
        if tasks.iter().all(|(_, t, _)| t.is_done()) {
            break;
        }
        if !progressed {
            // Self-contained session, every endpoint blocked: nothing can
            // ever arrive again — the scheduler's stall detection.
            for (_, task, _) in &mut tasks {
                task.mark_stalled();
            }
            break;
        }
    }

    let mut statuses = BTreeMap::new();
    let mut traces = BTreeMap::new();
    for (role, task, transport) in tasks {
        let report = match task {
            AnyTask::Tree(t) => t.into_report(),
            AnyTask::Compiled(t) => t.into_report(),
        };
        statuses.insert(role.clone(), report.status);
        traces.insert(role, report.actions);
        drop(transport);
    }
    assert_eq!(monitor.is_compliant(), shadow.is_compliant());
    assert_eq!(monitor.is_complete(), shadow.is_complete());
    assert_eq!(monitor.trace(), shadow.trace());
    RunResult {
        statuses,
        traces,
        compliant: monitor.is_compliant(),
        complete: monitor.is_complete(),
        global_trace: monitor.trace().actions().to_vec(),
    }
}

/// Runs tree and compiled under one schedule and requires exact agreement.
fn assert_engines_agree(
    g: &GlobalType,
    procs: &[(Role, Proc)],
    options: &ExecOptions,
    context: &str,
) {
    for schedule in SCHEDULES {
        let tree = run(g, procs, options, schedule, false);
        let compiled = run(g, procs, options, schedule, true);
        assert_eq!(tree, compiled, "{context}: engines diverge under {schedule:?}");
    }
    // Per-endpoint traces are schedule-independent for deterministic
    // endpoints: cross-check one schedule against another on the compiled
    // engine.
    let a = run(g, procs, options, SCHEDULES[0], true);
    let b = run(g, procs, options, SCHEDULES[3], true);
    assert_eq!(a.traces, b.traces, "{context}: traces depend on the schedule");
    assert_eq!(a.statuses, b.statuses, "{context}");
}

// ---------------------------------------------------------------------
// The suites
// ---------------------------------------------------------------------

#[test]
fn engines_agree_on_the_case_studies() {
    let cases: Vec<(&str, GlobalType, ExecOptions)> = vec![
        ("ring3", generators::ring3(), ExecOptions::default()),
        ("ring8", generators::ring_n(8), ExecOptions::default()),
        ("two_buyer", generators::two_buyer(), ExecOptions::default()),
        ("fanout5", generators::fanout_n(5), ExecOptions::default()),
        ("branching3", generators::branching(3), ExecOptions::default()),
        // The looping families run to their step limit.
        ("pipeline", generators::pipeline(), ExecOptions::with_max_steps(12)),
        ("chain5", generators::chain_n(5), ExecOptions::with_max_steps(9)),
        ("ping_pong", generators::ping_pong(), ExecOptions::with_max_steps(7)),
    ];
    for (name, g, options) in cases {
        let procs = skeleton_endpoints(&g).expect("case studies synthesize");
        assert_engines_agree(&g, &procs, &options, name);
    }
}

#[test]
fn engines_agree_on_randomized_projectable_protocols() {
    let params = generators::RandomProtocol::default();
    let mut covered = 0;
    for seed in 0..400u64 {
        if covered >= 30 {
            break;
        }
        let g = generators::random_global(seed, &params);
        let Some(procs) = skeleton_endpoints(&g) else {
            continue;
        };
        covered += 1;
        assert_engines_agree(&g, &procs, &ExecOptions::with_max_steps(24), &format!("seed {seed}"));
    }
    assert!(covered >= 10, "corpus too small: {covered}");
}

#[test]
fn engines_agree_on_stalls() {
    // Bob never forwards: Alice finishes her send, Carol stalls waiting.
    let g = generators::ring3();
    let mut procs = skeleton_endpoints(&g).expect("ring synthesizes");
    for (role, proc) in &mut procs {
        if role.name() == "Bob" {
            // Receive from Alice but never forward to Carol.
            *proc = Proc::recv1(Role::new("Alice"), "l", Sort::Nat, "x", Proc::Finish);
        }
    }
    for schedule in SCHEDULES {
        let tree = run(&g, &procs, &ExecOptions::default(), schedule, false);
        let compiled = run(&g, &procs, &ExecOptions::default(), schedule, true);
        assert_eq!(tree, compiled);
        assert_eq!(compiled.statuses[&Role::new("Carol")], EndpointStatus::Stalled);
        assert!(compiled.compliant, "an unfinished prefix is still compliant");
        assert!(!compiled.complete);
    }
}

#[test]
fn engines_agree_on_failures() {
    // A saboteur sends a label its peer does not handle...
    let g = GlobalType::msg1(
        Role::new("p"),
        Role::new("q"),
        "good",
        Sort::Nat,
        GlobalType::End,
    );
    let saboteur = vec![
        (
            Role::new("p"),
            Proc::send(Role::new("q"), "evil", Expr::lit(0u64), Proc::Finish),
        ),
        (
            Role::new("q"),
            Proc::recv1(Role::new("p"), "good", Sort::Nat, "x", Proc::Finish),
        ),
    ];
    // ... and one sends the right label with a wrong payload sort.
    let bad_payload = vec![
        (
            Role::new("p"),
            Proc::send(Role::new("q"), "good", Expr::lit(true), Proc::Finish),
        ),
        (
            Role::new("q"),
            Proc::recv1(Role::new("p"), "good", Sort::Nat, "x", Proc::Finish),
        ),
    ];
    for (name, procs) in [("wrong label", saboteur), ("wrong sort", bad_payload)] {
        for schedule in SCHEDULES {
            let tree = run(&g, &procs, &ExecOptions::default(), schedule, false);
            let compiled = run(&g, &procs, &ExecOptions::default(), schedule, true);
            // Identical failures, error strings included.
            assert_eq!(tree, compiled, "{name}");
            assert!(matches!(
                compiled.statuses[&Role::new("q")],
                EndpointStatus::Failed { .. }
            ));
        }
    }
}

#[test]
fn engines_agree_with_recording_off() {
    // With `record_actions` off both engines report empty traces but
    // identical statuses and monitor verdicts.
    let g = generators::ring3();
    let procs = skeleton_endpoints(&g).expect("ring synthesizes");
    let options = ExecOptions::default().record_actions(false);
    let tree = run(&g, &procs, &options, SCHEDULES[0], false);
    let compiled = run(&g, &procs, &options, SCHEDULES[0], true);
    assert_eq!(tree, compiled);
    assert!(compiled.traces.values().all(Vec::is_empty));
    assert!(compiled.compliant && compiled.complete);
    assert_eq!(compiled.global_trace.len(), 6);
}

#[test]
fn value_flow_matches_through_slots_and_substitution() {
    // Values computed from received payloads must match exactly: Alice sends
    // 1, each hop adds 10, Alice receives 21.
    let g = generators::ring3();
    let forward = |from: &str, to: &str| {
        Proc::recv1(
            Role::new(from),
            "l",
            Sort::Nat,
            "x",
            Proc::send(
                Role::new(to),
                "l",
                Expr::add(Expr::var("x"), Expr::lit(10u64)),
                Proc::Finish,
            ),
        )
    };
    let procs = vec![
        (
            Role::new("Alice"),
            Proc::send(
                Role::new("Bob"),
                "l",
                Expr::lit(1u64),
                Proc::recv1(Role::new("Carol"), "l", Sort::Nat, "y", Proc::Finish),
            ),
        ),
        (Role::new("Bob"), forward("Alice", "Carol")),
        (Role::new("Carol"), forward("Bob", "Alice")),
    ];
    for schedule in SCHEDULES {
        let tree = run(&g, &procs, &ExecOptions::default(), schedule, false);
        let compiled = run(&g, &procs, &ExecOptions::default(), schedule, true);
        assert_eq!(tree, compiled);
        let last = compiled.traces[&Role::new("Alice")].last().unwrap().clone();
        assert_eq!(last.value, Value::Nat(21));
    }
}
