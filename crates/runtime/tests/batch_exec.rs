//! Differential tests: the columnar batch executor
//! ([`SessionBatch`]) against the per-session compiled executor
//! ([`CompiledEndpointTask`]) and the tree-walking oracle
//! ([`EndpointTask`]) — the exhaustive-oracle pattern the ROADMAP mandates
//! for every engine replacement, applied to the batched data plane.
//!
//! A batch steps whole populations of identical sessions in `(role, pc)`
//! cohorts over columnar state; the per-session engines run one session at
//! a time. Because deterministic endpoints have schedule-independent
//! per-endpoint traces and verdicts, every co-batched copy must be
//! observably identical to the stand-alone run:
//!
//! * per-endpoint statuses (`Finished` / `StepLimitReached` / `Stalled` /
//!   `Failed` with the same error string),
//! * per-endpoint value-level traces,
//! * the monitor's verdicts (compliance, completion) — including sessions
//!   that **demote** mid-flight (violations, stalls) and finish on the
//!   per-session executor with their traces, monitor cursor and in-flight
//!   frames carried over.

use std::collections::BTreeMap;
use std::sync::Arc;

use zooid_cfsm::System;
use zooid_mpst::global::GlobalType;
use zooid_mpst::local::LocalType;
use zooid_mpst::projection::project_all;
use zooid_mpst::{generators, Role, Sort};
use zooid_proc::{erase, CompiledProc, Expr, Externals, Proc, RecvAlt, Value, ValueAction};
use zooid_runtime::cbatch::{BatchLayout, BatchOutcome, DemotedSession, SessionBatch};
use zooid_runtime::cexec::{CompiledEndpointTask, EndpointProgram};
use zooid_runtime::exec::{EndpointStatus, EndpointTask, ExecOptions, StepOutcome};
use zooid_runtime::monitor::CompiledMonitor;
use zooid_runtime::transport::{InMemoryNetwork, Transport};

// ---------------------------------------------------------------------
// Skeleton synthesis (first-branch sends, default payloads) — the same
// construction the server's load generator uses, kept local because this
// crate sits below `zooid-server`.
// ---------------------------------------------------------------------

fn default_expr(sort: &Sort) -> Option<Expr> {
    match sort {
        Sort::Unit => Some(Expr::unit()),
        Sort::Nat => Some(Expr::lit(0u64)),
        Sort::Int => Some(Expr::lit(0i64)),
        Sort::Bool => Some(Expr::lit(false)),
        Sort::Str => Some(Expr::lit("")),
        Sort::Prod(a, b) => Some(Expr::pair(default_expr(a)?, default_expr(b)?)),
        Sort::Sum(..) | Sort::Seq(_) => None,
    }
}

fn skeleton_proc(local: &LocalType) -> Option<Proc> {
    match local {
        LocalType::End => Some(Proc::Finish),
        LocalType::Var(i) => Some(Proc::Jump(*i)),
        LocalType::Rec(body) => Some(Proc::loop_(skeleton_proc(body)?)),
        LocalType::Send { to, branches } => {
            let branch = branches.first()?;
            Some(Proc::send(
                to.clone(),
                branch.label.clone(),
                default_expr(&branch.sort)?,
                skeleton_proc(&branch.cont)?,
            ))
        }
        LocalType::Recv { from, branches } => {
            let alts = branches
                .iter()
                .map(|b| {
                    Some(RecvAlt::new(
                        b.label.clone(),
                        b.sort.clone(),
                        "_x",
                        skeleton_proc(&b.cont)?,
                    ))
                })
                .collect::<Option<Vec<_>>>()?;
            Some(Proc::recv(from.clone(), alts))
        }
    }
}

fn skeleton_endpoints(g: &GlobalType) -> Option<Vec<(Role, Proc)>> {
    project_all(g)
        .ok()?
        .into_iter()
        .map(|(role, local)| Some((role, skeleton_proc(&local)?)))
        .collect()
}

// ---------------------------------------------------------------------
// What every engine must agree on. The *order* of the monitor's global
// trace is schedule-dependent (the batch interleaves sessions its own
// way), so the comparison is per-endpoint traces plus verdicts.
// ---------------------------------------------------------------------

#[derive(Debug, PartialEq)]
struct Observed {
    statuses: BTreeMap<Role, EndpointStatus>,
    traces: BTreeMap<Role, Vec<ValueAction>>,
    compliant: bool,
    complete: bool,
}

/// Builds the shared batch layout for one proc per role, compiled against
/// the protocol's transition tables. `None` when not batch-eligible.
fn make_layout(
    g: &GlobalType,
    procs: &[(Role, Proc)],
    externals: &Externals,
) -> Option<Arc<BatchLayout>> {
    let system = Arc::new(System::from_global(g).expect("projectable").compile());
    let mut sorted = procs.to_vec();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let roles: Arc<[Role]> = sorted
        .iter()
        .map(|(r, _)| r.clone())
        .collect::<Vec<_>>()
        .into();
    let programs: Vec<Arc<EndpointProgram>> = sorted
        .iter()
        .map(|(role, proc)| {
            Arc::new(EndpointProgram::with_system(
                Arc::new(
                    CompiledProc::compile(proc, role, externals).expect("skeletons compile"),
                ),
                &system,
            ))
        })
        .collect();
    BatchLayout::new(roles, programs, system)
}

/// Runs one session stand-alone on the per-session compiled executor (or
/// the tree oracle), cooperatively on one thread, and returns the
/// observable outcome.
fn run_reference(
    g: &GlobalType,
    procs: &[(Role, Proc)],
    options: &ExecOptions,
    compiled: bool,
) -> Observed {
    let mut network = InMemoryNetwork::new(procs.iter().map(|(r, _)| r.clone()));
    let system = Arc::new(System::from_global(g).expect("projectable").compile());
    let mut monitor = CompiledMonitor::new(Arc::clone(&system));
    monitor.set_record_trace(options.record_actions);

    enum AnyTask {
        Tree(EndpointTask),
        Compiled(CompiledEndpointTask),
    }
    let mut tasks: Vec<(Role, AnyTask, _)> = procs
        .iter()
        .map(|(role, proc)| {
            let transport = network.take_endpoint(role).expect("unique roles");
            let task = if compiled {
                let program = Arc::new(EndpointProgram::with_system(
                    Arc::new(
                        CompiledProc::compile(proc, role, &Externals::new())
                            .expect("skeletons compile"),
                    ),
                    &system,
                ));
                AnyTask::Compiled(CompiledEndpointTask::new(
                    program,
                    Externals::new(),
                    options.clone(),
                ))
            } else {
                AnyTask::Tree(EndpointTask::new(
                    proc.clone(),
                    role.clone(),
                    Externals::new(),
                    options.clone(),
                ))
            };
            (role.clone(), task, transport)
        })
        .collect();

    let mut rounds = 0usize;
    loop {
        rounds += 1;
        assert!(rounds < 100_000, "cooperative schedule must terminate");
        let mut progressed = false;
        for (_, task, transport) in tasks.iter_mut() {
            loop {
                let outcome = match task {
                    AnyTask::Tree(t) => t.step(transport, &mut |va| {
                        monitor.observe(&erase(va));
                    }),
                    AnyTask::Compiled(t) => t.step_mem(transport, &mut |va, interned| {
                        match interned {
                            Some(interned) => {
                                monitor.observe_interned(interned, || erase(va));
                            }
                            None => {
                                monitor.observe(&erase(va));
                            }
                        }
                    }),
                };
                match outcome {
                    StepOutcome::Progress => progressed = true,
                    _ => break,
                }
            }
        }
        let done = tasks.iter().all(|(_, t, _)| match t {
            AnyTask::Tree(t) => t.is_done(),
            AnyTask::Compiled(t) => t.is_done(),
        });
        if done {
            break;
        }
        if !progressed {
            for (_, task, _) in tasks.iter_mut() {
                match task {
                    AnyTask::Tree(t) => t.mark_stalled(),
                    AnyTask::Compiled(t) => t.mark_stalled(),
                }
            }
            break;
        }
    }

    let mut statuses = BTreeMap::new();
    let mut traces = BTreeMap::new();
    for (role, task, transport) in tasks {
        let report = match task {
            AnyTask::Tree(t) => t.into_report(),
            AnyTask::Compiled(t) => t.into_report(),
        };
        statuses.insert(role.clone(), report.status);
        traces.insert(role, report.actions);
        drop(transport);
    }
    Observed {
        statuses,
        traces,
        compliant: monitor.is_compliant(),
        complete: monitor.is_complete(),
    }
}

fn observed_outcome(outcome: BatchOutcome) -> Observed {
    Observed {
        statuses: outcome
            .endpoints
            .iter()
            .map(|r| (r.role.clone(), r.status.clone()))
            .collect(),
        traces: outcome
            .endpoints
            .into_iter()
            .map(|r| (r.role, r.actions))
            .collect(),
        compliant: outcome.compliant,
        complete: outcome.complete,
    }
}

/// Resumes a demoted session on the per-session compiled executor — the
/// exact handoff the server performs — and runs it to its conclusion.
fn finish_demoted(demoted: DemotedSession, layout: &Arc<BatchLayout>) -> Observed {
    let DemotedSession {
        options,
        endpoints,
        mut monitor,
        frames,
        ..
    } = demoted;
    let mut network = InMemoryNetwork::from_sorted(Arc::clone(layout.roles()));
    let roles: Vec<Role> = endpoints.iter().map(|ep| ep.role.clone()).collect();
    let mut tasks: Vec<(Role, CompiledEndpointTask, _)> = endpoints
        .into_iter()
        .map(|ep| {
            let transport = network.take_endpoint(&ep.role).expect("sorted roles");
            let role = ep.role.clone();
            let task = CompiledEndpointTask::resume(
                ep.program,
                Externals::new(),
                options.clone(),
                ep.pc,
                ep.slots,
                ep.actions,
                ep.steps,
                ep.status,
            );
            (role, task, transport)
        })
        .collect();
    // Re-inject the frames that were in flight in the batch arena; sending
    // through the original sender's transport preserves per-channel FIFO.
    for (from, to, label, value) in frames {
        let (_, _, transport) = &mut tasks[from as usize];
        transport
            .send(&roles[to as usize], &label, &value)
            .expect("co-batched roles are network peers");
    }

    let mut rounds = 0usize;
    loop {
        rounds += 1;
        assert!(rounds < 100_000, "resumed session must terminate");
        let mut progressed = false;
        for (_, task, transport) in tasks.iter_mut() {
            loop {
                match task.step_mem(transport, &mut |va, interned| match interned {
                    Some(interned) => {
                        monitor.observe_interned(interned, || erase(va));
                    }
                    None => {
                        monitor.observe(&erase(va));
                    }
                }) {
                    StepOutcome::Progress => progressed = true,
                    _ => break,
                }
            }
        }
        if tasks.iter().all(|(_, t, _)| t.is_done()) {
            break;
        }
        if !progressed {
            for (_, task, _) in tasks.iter_mut() {
                task.mark_stalled();
            }
            break;
        }
    }

    let mut statuses = BTreeMap::new();
    let mut traces = BTreeMap::new();
    for (role, task, transport) in tasks {
        let report = task.into_report();
        statuses.insert(role.clone(), report.status);
        traces.insert(role, report.actions);
        drop(transport);
    }
    Observed {
        statuses,
        traces,
        compliant: monitor.is_compliant(),
        complete: monitor.is_complete(),
    }
}

/// Runs `copies` identical sessions through one batch to their conclusion
/// (demoted stragglers are finished on the per-session executor, as on the
/// server) and returns each session's observation, in admission order.
fn run_batch(layout: &Arc<BatchLayout>, options: &ExecOptions, copies: usize) -> Vec<Observed> {
    let mut batch = SessionBatch::new(Arc::clone(layout), options.clone(), copies);
    for token in 0..copies {
        assert!(batch.admit(token as u64), "batch sized for the population");
    }
    let out = batch.run_quantum(usize::MAX);
    assert!(
        batch.is_empty(),
        "an unbounded quantum concludes or demotes every session"
    );
    let mut results: Vec<(u64, Observed)> = Vec::with_capacity(copies);
    for outcome in out.finished {
        results.push((outcome.token, observed_outcome(outcome)));
    }
    for demoted in out.demoted {
        let token = demoted.token;
        results.push((token, finish_demoted(demoted, layout)));
    }
    results.sort_by_key(|(token, _)| *token);
    assert_eq!(results.len(), copies, "every admitted session reports");
    results.into_iter().map(|(_, observed)| observed).collect()
}

/// Requires tree, per-session compiled and every co-batched copy (at each
/// width) to agree exactly.
fn assert_batch_agrees(
    g: &GlobalType,
    procs: &[(Role, Proc)],
    options: &ExecOptions,
    widths: &[usize],
    context: &str,
) {
    let reference = run_reference(g, procs, options, true);
    let tree = run_reference(g, procs, options, false);
    assert_eq!(reference, tree, "{context}: slab-compiled vs tree diverge");
    let layout =
        make_layout(g, procs, &Externals::new()).expect("skeleton layouts are batch-eligible");
    for &width in widths {
        for (i, observed) in run_batch(&layout, options, width).into_iter().enumerate() {
            assert_eq!(
                observed, reference,
                "{context}: batched copy {i} of {width} diverges"
            );
        }
    }
}

// ---------------------------------------------------------------------
// The suites
// ---------------------------------------------------------------------

#[test]
fn batch_agrees_with_slab_and_tree_on_the_case_studies() {
    let cases: Vec<(&str, GlobalType, ExecOptions)> = vec![
        ("ring3", generators::ring3(), ExecOptions::default()),
        ("ring8", generators::ring_n(8), ExecOptions::default()),
        ("two_buyer", generators::two_buyer(), ExecOptions::default()),
        ("fanout5", generators::fanout_n(5), ExecOptions::default()),
        ("branching3", generators::branching(3), ExecOptions::default()),
        // The looping families run to their step limit; the endpoint that
        // then blocks forever exercises the no-progress demotion path.
        ("pipeline", generators::pipeline(), ExecOptions::with_max_steps(12)),
        ("chain5", generators::chain_n(5), ExecOptions::with_max_steps(9)),
        ("ping_pong", generators::ping_pong(), ExecOptions::with_max_steps(7)),
    ];
    for (name, g, options) in cases {
        let procs = skeleton_endpoints(&g).expect("case studies synthesize");
        assert_batch_agrees(&g, &procs, &options, &[1, 5, 64], name);
    }
}

#[test]
fn batch_agrees_on_randomized_projectable_protocols() {
    let params = generators::RandomProtocol::default();
    let options = ExecOptions::with_max_steps(24);
    let mut covered = 0;
    for seed in 0..400u64 {
        if covered >= 20 {
            break;
        }
        let g = generators::random_global(seed, &params);
        let Some(procs) = skeleton_endpoints(&g) else {
            continue;
        };
        if make_layout(&g, &procs, &Externals::new()).is_none() {
            continue;
        }
        covered += 1;
        assert_batch_agrees(&g, &procs, &options, &[4], &format!("seed {seed}"));
    }
    assert!(covered >= 10, "corpus too small: {covered}");
}

#[test]
fn batch_agrees_with_recording_off() {
    let g = generators::ring3();
    let procs = skeleton_endpoints(&g).expect("ring synthesizes");
    let options = ExecOptions::default().record_actions(false);
    let reference = run_reference(&g, &procs, &options, true);
    let layout = make_layout(&g, &procs, &Externals::new()).expect("eligible");
    for observed in run_batch(&layout, &options, 16) {
        assert_eq!(observed, reference);
        assert!(observed.traces.values().all(Vec::is_empty));
        assert!(observed.compliant && observed.complete);
    }
}

#[test]
fn external_actions_make_a_layout_ineligible() {
    // p reads a nat from the environment before sending it: correct on the
    // per-session engines, but external closures cannot run columnar.
    let g = GlobalType::msg1(
        Role::new("p"),
        Role::new("q"),
        "good",
        Sort::Nat,
        GlobalType::End,
    );
    let mut externals = Externals::new();
    externals.register_read("env", Sort::Nat, || Value::Nat(7));
    let with_read = vec![
        (
            Role::new("p"),
            Proc::read(
                "env",
                "x",
                Proc::send(Role::new("q"), "good", Expr::var("x"), Proc::Finish),
            ),
        ),
        (
            Role::new("q"),
            Proc::recv1(Role::new("p"), "good", Sort::Nat, "x", Proc::Finish),
        ),
    ];
    assert!(make_layout(&g, &with_read, &externals).is_none());
    // The same protocol without the external is eligible.
    let plain = skeleton_endpoints(&g).expect("synthesizes");
    assert!(make_layout(&g, &plain, &Externals::new()).is_some());
}

#[test]
fn mid_flight_demotion_carries_traces_cursor_and_frames() {
    // Roles named so the *sender* sorts after the receiver: the batch pass
    // steps `a` (blocked) before `z` (sends), leaving the frame in flight
    // in the arena when the quantum ends — the handoff must re-inject it.
    let z = Role::new("z");
    let a = Role::new("a");
    let g = GlobalType::msg1(
        z.clone(),
        a.clone(),
        "one",
        Sort::Nat,
        GlobalType::msg1(z.clone(), a.clone(), "two", Sort::Nat, GlobalType::End),
    );
    let procs = vec![
        (
            z.clone(),
            Proc::send(
                a.clone(),
                "one",
                Expr::lit(1u64),
                Proc::send(a.clone(), "two", Expr::lit(2u64), Proc::Finish),
            ),
        ),
        (
            a.clone(),
            Proc::recv1(
                z.clone(),
                "one",
                Sort::Nat,
                "x",
                Proc::recv1(z.clone(), "two", Sort::Nat, "y", Proc::Finish),
            ),
        ),
    ];
    let options = ExecOptions::default();
    let reference = run_reference(&g, &procs, &options, true);
    let layout = make_layout(&g, &procs, &Externals::new()).expect("eligible");

    let mut batch = SessionBatch::new(Arc::clone(&layout), options.clone(), 4);
    for token in 0..4u64 {
        assert!(batch.admit(token));
    }
    // One pass: `z` performed its first send, `a` saw an empty queue.
    let out = batch.run_quantum(1);
    assert!(out.finished.is_empty() && out.demoted.is_empty());
    assert_eq!(batch.live_count(), 4);

    // Pull half the population out mid-flight and finish it on the
    // per-session executor; the rest concludes inside the batch.
    let mut results: Vec<(u64, Observed)> = Vec::new();
    for token in 0..2u64 {
        let demoted = batch.demote_now(token).expect("live session");
        assert_eq!(demoted.token, token);
        assert!(
            !demoted.frames.is_empty(),
            "the first send was still in flight"
        );
        assert!(
            demoted.endpoints.iter().any(|ep| ep.steps > 0),
            "the sender's progress is carried over"
        );
        results.push((token, finish_demoted(demoted, &layout)));
    }
    let rest = batch.run_quantum(usize::MAX);
    assert!(batch.is_empty());
    assert!(rest.demoted.is_empty());
    for outcome in rest.finished {
        results.push((outcome.token, observed_outcome(outcome)));
    }
    assert_eq!(results.len(), 4);
    for (token, observed) in results {
        assert_eq!(observed, reference, "session {token}");
    }
}

#[test]
fn violating_sessions_demote_after_the_offending_action_and_agree() {
    // Both labels exist in the protocol (so the sites intern and the layout
    // is eligible), but `p` performs them in the wrong order: the monitor
    // rejects the first send, the batch completes that action and then
    // demotes the session, and the slab finishes it — with verdicts and
    // traces identical to running the saboteur per-session from the start.
    let p = Role::new("p");
    let q = Role::new("q");
    let g = GlobalType::msg1(
        p.clone(),
        q.clone(),
        "first",
        Sort::Nat,
        GlobalType::msg1(p.clone(), q.clone(), "second", Sort::Nat, GlobalType::End),
    );
    let procs = vec![
        (
            p.clone(),
            Proc::send(
                q.clone(),
                "second",
                Expr::lit(2u64),
                Proc::send(q.clone(), "first", Expr::lit(1u64), Proc::Finish),
            ),
        ),
        (
            q.clone(),
            Proc::recv1(
                p.clone(),
                "second",
                Sort::Nat,
                "x",
                Proc::recv1(p.clone(), "first", Sort::Nat, "y", Proc::Finish),
            ),
        ),
    ];
    let options = ExecOptions::default();
    let reference = run_reference(&g, &procs, &options, true);
    let tree = run_reference(&g, &procs, &options, false);
    assert_eq!(reference, tree);
    assert!(!reference.compliant, "the saboteur violates the protocol");

    let layout = make_layout(&g, &procs, &Externals::new()).expect("eligible");
    let mut batch = SessionBatch::new(Arc::clone(&layout), options.clone(), 8);
    for token in 0..8u64 {
        assert!(batch.admit(token));
    }
    let out = batch.run_quantum(usize::MAX);
    assert!(batch.is_empty());
    assert_eq!(out.demoted.len(), 8, "every violating session demotes");
    assert!(out.finished.is_empty());
    for demoted in out.demoted {
        let observed = finish_demoted(demoted, &layout);
        assert_eq!(observed, reference);
    }
}

#[test]
fn value_flow_matches_through_columns() {
    // Values computed from received payloads must match exactly through the
    // strided column evaluation: Alice sends 1, each hop adds 10, Alice
    // receives 21.
    let g = generators::ring3();
    let forward = |from: &str, to: &str| {
        Proc::recv1(
            Role::new(from),
            "l",
            Sort::Nat,
            "x",
            Proc::send(
                Role::new(to),
                "l",
                Expr::add(Expr::var("x"), Expr::lit(10u64)),
                Proc::Finish,
            ),
        )
    };
    let procs = vec![
        (
            Role::new("Alice"),
            Proc::send(
                Role::new("Bob"),
                "l",
                Expr::lit(1u64),
                Proc::recv1(Role::new("Carol"), "l", Sort::Nat, "y", Proc::Finish),
            ),
        ),
        (Role::new("Bob"), forward("Alice", "Carol")),
        (Role::new("Carol"), forward("Bob", "Alice")),
    ];
    let options = ExecOptions::default();
    let reference = run_reference(&g, &procs, &options, true);
    let layout = make_layout(&g, &procs, &Externals::new()).expect("eligible");
    for observed in run_batch(&layout, &options, 32) {
        assert_eq!(observed, reference);
        let last = observed.traces[&Role::new("Alice")].last().unwrap().clone();
        assert_eq!(last.value, Value::Nat(21));
    }
}
