//! Transport-level differential tests: the same session populations driven
//! over the in-memory network and over real loopback TCP sockets must agree
//! exactly — per-endpoint statuses, value-level traces, and the monitor's
//! verdicts (compliance, completion, the accepted global trace).
//!
//! This is the exhaustive-oracle pattern applied to the wire: the in-memory
//! transport (no codec, no sockets) is the oracle, and the TCP path (frame
//! cap, incremental reassembly, non-blocking `try_recv`) must be
//! behaviourally invisible. The cooperative single-thread scheduler only
//! works over TCP because `TcpTransport::try_recv` is genuinely
//! non-blocking — under the old blocking trait default every `WouldBlock`
//! poll would have parked the whole schedule.
//!
//! The second half is the hostile-framing suite: oversized length prefixes,
//! truncated frames, garbage payloads and mid-frame disconnects must each
//! produce a *structured* error within the configured deadline — no panic,
//! no hang, no unbounded allocation — and `recv`/`try_recv` must classify
//! every probe identically.

use std::collections::BTreeMap;
use std::io::Write;
use std::net::{IpAddr, Ipv4Addr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use zooid_cfsm::System;
use zooid_mpst::global::GlobalType;
use zooid_mpst::local::LocalType;
use zooid_mpst::projection::project_all;
use zooid_mpst::{generators, Role, Sort};
use zooid_proc::{Expr, Externals, Proc, RecvAlt, Value, ValueAction};
use zooid_runtime::error::RuntimeError;
use zooid_runtime::exec::{EndpointStatus, EndpointTask, ExecOptions, StepOutcome};
use zooid_runtime::monitor::{CompiledMonitor, TraceMonitor};
use zooid_runtime::tcp::TcpTransport;
use zooid_runtime::transport::{InMemoryNetwork, Transport};
use zooid_mpst::Label;

// ---------------------------------------------------------------------
// Skeleton synthesis (first-branch sends, default payloads) — local copy,
// as in `compiled_exec.rs`: this crate sits below `zooid-server`.
// ---------------------------------------------------------------------

fn default_expr(sort: &Sort) -> Option<Expr> {
    match sort {
        Sort::Unit => Some(Expr::unit()),
        Sort::Nat => Some(Expr::lit(0u64)),
        Sort::Int => Some(Expr::lit(0i64)),
        Sort::Bool => Some(Expr::lit(false)),
        Sort::Str => Some(Expr::lit("")),
        Sort::Prod(a, b) => Some(Expr::pair(default_expr(a)?, default_expr(b)?)),
        Sort::Sum(..) | Sort::Seq(_) => None,
    }
}

fn skeleton_proc(local: &LocalType) -> Option<Proc> {
    match local {
        LocalType::End => Some(Proc::Finish),
        LocalType::Var(i) => Some(Proc::Jump(*i)),
        LocalType::Rec(body) => Some(Proc::loop_(skeleton_proc(body)?)),
        LocalType::Send { to, branches } => {
            let branch = branches.first()?;
            Some(Proc::send(
                to.clone(),
                branch.label.clone(),
                default_expr(&branch.sort)?,
                skeleton_proc(&branch.cont)?,
            ))
        }
        LocalType::Recv { from, branches } => {
            let alts = branches
                .iter()
                .map(|b| {
                    Some(RecvAlt::new(
                        b.label.clone(),
                        b.sort.clone(),
                        "_x",
                        skeleton_proc(&b.cont)?,
                    ))
                })
                .collect::<Option<Vec<_>>>()?;
            Some(Proc::recv(from.clone(), alts))
        }
    }
}

fn skeleton_endpoints(g: &GlobalType) -> Option<Vec<(Role, Proc)>> {
    project_all(g)
        .ok()?
        .into_iter()
        .map(|(role, local)| Some((role, skeleton_proc(&local)?)))
        .collect()
}

// ---------------------------------------------------------------------
// Full-mesh loopback TCP wiring
// ---------------------------------------------------------------------

/// Connects every unordered pair of roles over a dedicated loopback socket
/// pair and builds one [`TcpTransport`] per role, exactly mirroring the
/// in-memory network's full mesh.
fn tcp_mesh(roles: &[Role]) -> BTreeMap<Role, TcpTransport> {
    let mut per_role: BTreeMap<Role, BTreeMap<Role, TcpStream>> =
        roles.iter().map(|r| (r.clone(), BTreeMap::new())).collect();
    for i in 0..roles.len() {
        for j in (i + 1)..roles.len() {
            let listener = TcpListener::bind((IpAddr::V4(Ipv4Addr::LOCALHOST), 0)).unwrap();
            let addr = listener.local_addr().unwrap();
            // Loopback connect to a listening socket completes via the
            // backlog even before accept runs, so one thread suffices.
            let client = TcpStream::connect(addr).unwrap();
            let (server, _) = listener.accept().unwrap();
            per_role.get_mut(&roles[i]).unwrap().insert(roles[j].clone(), server);
            per_role.get_mut(&roles[j]).unwrap().insert(roles[i].clone(), client);
        }
    }
    per_role
        .into_iter()
        .map(|(role, streams)| {
            let mut transport = TcpTransport::from_streams(role.clone(), streams);
            transport.set_recv_timeout(Duration::from_secs(10));
            (role, transport)
        })
        .collect()
}

// ---------------------------------------------------------------------
// The shared cooperative driver, generic over the transport
// ---------------------------------------------------------------------

/// The observables the two transports must agree on. The raw global trace
/// is *not* compared: with asynchronous delivery, independent actions may
/// interleave differently over TCP than in memory (both orders are valid
/// traces of the same protocol — the monitors accept either), but the
/// per-endpoint statuses, per-endpoint value traces, number of globally
/// accepted actions and the verdicts must be identical.
#[derive(Debug, PartialEq)]
struct RunResult {
    statuses: BTreeMap<Role, EndpointStatus>,
    traces: BTreeMap<Role, Vec<ValueAction>>,
    compliant: bool,
    complete: bool,
    global_actions: usize,
}

/// How long a no-progress streak must last before the scheduler declares a
/// stall. Zero for the in-memory transport (delivery is synchronous: no
/// progress now means no progress ever); positive over TCP, where a frame
/// can be in flight between a send and the peer's socket becoming readable.
fn run<T: Transport>(
    g: &GlobalType,
    procs: &[(Role, Proc)],
    options: &ExecOptions,
    mut endpoints: Vec<(Role, T)>,
    stall_grace: Duration,
) -> RunResult {
    let system = Arc::new(System::from_global(g).expect("projectable").compile());
    let mut monitor = CompiledMonitor::new(Arc::clone(&system));
    let mut shadow = TraceMonitor::new(g).expect("well-formed");

    let proc_of: BTreeMap<&Role, &Proc> = procs.iter().map(|(r, p)| (r, p)).collect();
    let mut tasks: Vec<(Role, EndpointTask, T)> = endpoints
        .drain(..)
        .map(|(role, transport)| {
            let task = EndpointTask::new(
                (*proc_of[&role]).clone(),
                role.clone(),
                Externals::new(),
                options.clone(),
            );
            (role, task, transport)
        })
        .collect();

    let n = tasks.len();
    let mut last_progress = Instant::now();
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        assert!(rounds < 10_000_000, "cooperative schedule must terminate");
        let mut progressed = false;
        for idx in 0..n {
            let (_, task, transport) = &mut tasks[idx];
            // Drain-until-block: step each endpoint as far as it goes.
            loop {
                let outcome = task.step(transport, &mut |va| {
                    let action = zooid_proc::erase(va);
                    let a = monitor.observe(&action);
                    let b = shadow.observe(&action);
                    assert_eq!(a, b, "monitors disagree on {action}");
                });
                match outcome {
                    StepOutcome::Progress => progressed = true,
                    _ => break,
                }
            }
        }
        if tasks.iter().all(|(_, t, _)| t.is_done()) {
            break;
        }
        if progressed {
            last_progress = Instant::now();
        } else if last_progress.elapsed() >= stall_grace {
            // Self-contained session with every endpoint blocked past the
            // transport's delivery latency: nothing can ever arrive again.
            for (_, task, _) in &mut tasks {
                task.mark_stalled();
            }
            break;
        } else {
            // Frames may still be in flight: let the kernel deliver.
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    let mut statuses = BTreeMap::new();
    let mut traces = BTreeMap::new();
    for (role, task, transport) in tasks {
        let report = task.into_report();
        statuses.insert(role.clone(), report.status);
        traces.insert(role, report.actions);
        drop(transport);
    }
    assert_eq!(monitor.is_compliant(), shadow.is_compliant());
    assert_eq!(monitor.is_complete(), shadow.is_complete());
    assert_eq!(monitor.trace(), shadow.trace());
    RunResult {
        statuses,
        traces,
        compliant: monitor.is_compliant(),
        complete: monitor.is_complete(),
        global_actions: monitor.trace().len(),
    }
}

fn run_memory(g: &GlobalType, procs: &[(Role, Proc)], options: &ExecOptions) -> RunResult {
    let mut network = InMemoryNetwork::new(procs.iter().map(|(r, _)| r.clone()));
    let mut endpoints: Vec<_> = procs
        .iter()
        .map(|(r, _)| (r.clone(), network.take_endpoint(r).expect("unique roles")))
        .collect();
    // Visit order must match the TCP run's (sorted, from the BTreeMap
    // mesh) so the cooperative schedules are identical.
    endpoints.sort_by(|(a, _), (b, _)| a.cmp(b));
    run(g, procs, options, endpoints, Duration::ZERO)
}

fn run_tcp(g: &GlobalType, procs: &[(Role, Proc)], options: &ExecOptions) -> RunResult {
    let roles: Vec<Role> = procs.iter().map(|(r, _)| r.clone()).collect();
    let mesh = tcp_mesh(&roles);
    let endpoints = mesh.into_iter().collect();
    run(g, procs, options, endpoints, Duration::from_millis(500))
}

fn assert_transports_agree(
    g: &GlobalType,
    procs: &[(Role, Proc)],
    options: &ExecOptions,
    context: &str,
) {
    let memory = run_memory(g, procs, options);
    let tcp = run_tcp(g, procs, options);
    assert_eq!(memory, tcp, "{context}: TCP diverged from the in-memory oracle");
}

// ---------------------------------------------------------------------
// Differential suite
// ---------------------------------------------------------------------

#[test]
fn tcp_and_memory_agree_on_the_case_studies() {
    let cases: Vec<(&str, GlobalType, ExecOptions)> = vec![
        ("ring3", generators::ring3(), ExecOptions::default()),
        ("two_buyer", generators::two_buyer(), ExecOptions::default()),
        ("fanout4", generators::fanout_n(4), ExecOptions::default()),
        ("branching2", generators::branching(2), ExecOptions::default()),
        // The looping families run to their step limit.
        ("pipeline", generators::pipeline(), ExecOptions::with_max_steps(12)),
        ("ping_pong", generators::ping_pong(), ExecOptions::with_max_steps(7)),
    ];
    for (name, g, options) in cases {
        let procs = skeleton_endpoints(&g).expect("case studies synthesize");
        assert_transports_agree(&g, &procs, &options, name);
    }
}

#[test]
fn tcp_and_memory_agree_on_randomized_protocols() {
    let params = generators::RandomProtocol::default();
    let mut covered = 0;
    for seed in 0..200u64 {
        if covered >= 8 {
            break;
        }
        let g = generators::random_global(seed, &params);
        let Some(procs) = skeleton_endpoints(&g) else {
            continue;
        };
        covered += 1;
        assert_transports_agree(
            &g,
            &procs,
            &ExecOptions::with_max_steps(24),
            &format!("seed {seed}"),
        );
    }
    assert!(covered >= 4, "corpus too small: {covered}");
}

#[test]
fn tcp_and_memory_agree_on_stalls() {
    // Bob never forwards: Alice finishes her send, Carol stalls waiting.
    let g = generators::ring3();
    let mut procs = skeleton_endpoints(&g).expect("ring synthesizes");
    for (role, proc) in &mut procs {
        if role.name() == "Bob" {
            *proc = Proc::recv1(Role::new("Alice"), "l", Sort::Nat, "x", Proc::Finish);
        }
    }
    let memory = run_memory(&g, &procs, &ExecOptions::default());
    let tcp = run_tcp(&g, &procs, &ExecOptions::default());
    assert_eq!(memory, tcp);
    assert_eq!(tcp.statuses[&Role::new("Carol")], EndpointStatus::Stalled);
    assert!(tcp.compliant, "an unfinished prefix is still compliant");
    assert!(!tcp.complete);
}

#[test]
fn an_empty_fault_plan_is_behaviourally_invisible() {
    // The fault-injection wrapper with no specs must be a passthrough on
    // both backends: identical statuses, traces and verdicts to the bare
    // transports, for looping protocols as well as terminating ones.
    use zooid_runtime::faults::{FaultPlan, FaultyTransport};
    let cases: Vec<(&str, GlobalType, ExecOptions)> = vec![
        ("ring3", generators::ring3(), ExecOptions::default()),
        ("two_buyer", generators::two_buyer(), ExecOptions::default()),
        ("pipeline", generators::pipeline(), ExecOptions::with_max_steps(12)),
    ];
    for (name, g, options) in cases {
        let procs = skeleton_endpoints(&g).expect("case studies synthesize");
        let plan = FaultPlan::new(0xFA17);

        let bare = run_memory(&g, &procs, &options);
        let mut network = InMemoryNetwork::new(procs.iter().map(|(r, _)| r.clone()));
        let mut endpoints: Vec<_> = procs
            .iter()
            .map(|(r, _)| {
                let inner = network.take_endpoint(r).expect("unique roles");
                (r.clone(), FaultyTransport::new(inner, &plan))
            })
            .collect();
        endpoints.sort_by(|(a, _), (b, _)| a.cmp(b));
        let wrapped = run(&g, &procs, &options, endpoints, Duration::ZERO);
        assert_eq!(bare, wrapped, "{name}: empty plan changed the in-memory run");

        let bare_tcp = run_tcp(&g, &procs, &options);
        let roles: Vec<Role> = procs.iter().map(|(r, _)| r.clone()).collect();
        let endpoints: Vec<_> = tcp_mesh(&roles)
            .into_iter()
            .map(|(r, t)| (r, FaultyTransport::new(t, &plan)))
            .collect();
        let wrapped_tcp = run(&g, &procs, &options, endpoints, Duration::from_millis(500));
        assert_eq!(bare_tcp, wrapped_tcp, "{name}: empty plan changed the TCP run");
    }
}

// ---------------------------------------------------------------------
// Hostile framing: structured errors, bounded time, recv/try_recv lockstep
// ---------------------------------------------------------------------

/// Classifies an error for lockstep comparison between `recv` and
/// `try_recv` without demanding identical free-text messages.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum ErrorClass {
    FrameTooLarge,
    Codec,
    Disconnected,
    Timeout,
    Io,
    Other,
}

fn classify(e: &RuntimeError) -> ErrorClass {
    match e {
        RuntimeError::FrameTooLarge { .. } => ErrorClass::FrameTooLarge,
        RuntimeError::Codec { .. } => ErrorClass::Codec,
        RuntimeError::Disconnected { .. } => ErrorClass::Disconnected,
        RuntimeError::Timeout { .. } => ErrorClass::Timeout,
        RuntimeError::Io(_) => ErrorClass::Io,
        _ => ErrorClass::Other,
    }
}

/// A hostile peer: writes `bytes`, then optionally slams the connection.
struct Probe {
    name: &'static str,
    bytes: Vec<u8>,
    close_after: bool,
    expected: ErrorClass,
}

fn probes() -> Vec<Probe> {
    let msg = zooid_runtime::codec::encode_message(&zooid_runtime::codec::Message::new(
        "l",
        Value::Str("payload".into()),
    ));
    let mut valid = (msg.len() as u32).to_be_bytes().to_vec();
    valid.extend_from_slice(&msg);

    // Oversized: the header announces 4 GiB - 1; no body follows (none is
    // needed — the header alone must trip the cap).
    let oversized = u32::MAX.to_be_bytes().to_vec();

    // Truncated: a valid header, half the body, then the peer closes.
    let truncated = valid[..4 + (msg.len() / 2)].to_vec();

    // Garbage: a plausible small length followed by bytes that decode to
    // nothing (unknown tags / truncated fields inside a complete frame).
    let garbage_body = [0xFFu8; 16];
    let mut garbage = (garbage_body.len() as u32).to_be_bytes().to_vec();
    garbage.extend_from_slice(&garbage_body);

    // Mid-frame disconnect: only the header and one body byte arrive.
    let midframe = valid[..5].to_vec();

    vec![
        Probe {
            name: "oversized length prefix",
            bytes: oversized,
            close_after: false,
            expected: ErrorClass::FrameTooLarge,
        },
        Probe {
            name: "truncated frame then close",
            bytes: truncated,
            close_after: true,
            expected: ErrorClass::Codec,
        },
        Probe {
            name: "garbage payload",
            bytes: garbage,
            close_after: false,
            expected: ErrorClass::Codec,
        },
        Probe {
            name: "mid-frame disconnect",
            bytes: midframe,
            close_after: true,
            expected: ErrorClass::Codec,
        },
    ]
}

/// Builds a victim transport wired to a raw hostile socket.
fn victim_and_attacker() -> (TcpTransport, TcpStream) {
    let listener = TcpListener::bind((IpAddr::V4(Ipv4Addr::LOCALHOST), 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let attacker = TcpStream::connect(addr).unwrap();
    let (victim_stream, _) = listener.accept().unwrap();
    let mut streams = BTreeMap::new();
    streams.insert(Role::new("attacker"), victim_stream);
    let mut victim = TcpTransport::from_streams(Role::new("victim"), streams);
    victim.set_recv_timeout(Duration::from_millis(500));
    (victim, attacker)
}

fn drive_probe(probe: &Probe, use_try_recv: bool) -> ErrorClass {
    let (mut victim, mut attacker) = victim_and_attacker();
    attacker.write_all(&probe.bytes).unwrap();
    attacker.flush().unwrap();
    // For close_after probes the attacker's socket is slammed shut here;
    // otherwise the binding stays alive across the receive below, so the
    // victim must fail from the bytes alone (or hit its deadline for
    // probes whose frame never completes).
    if probe.close_after {
        drop(attacker);
    }

    let started = Instant::now();
    let hard_deadline = Duration::from_secs(10);
    let from = Role::new("attacker");
    let class = if use_try_recv {
        loop {
            match victim.try_recv(&from) {
                Ok(Some(m)) => panic!("{}: hostile bytes decoded to {m:?}", probe.name),
                Ok(None) => {
                    // try_recv never blocks: a probe that leaves the frame
                    // forever incomplete with the socket open parks here —
                    // mirror recv's deadline by bounding the poll loop.
                    if started.elapsed() >= Duration::from_millis(500) {
                        break ErrorClass::Timeout;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => break classify(&e),
            }
        }
    } else {
        match victim.recv(&from) {
            Ok(m) => panic!("{}: hostile bytes decoded to {m:?}", probe.name),
            Err(e) => classify(&e),
        }
    };
    assert!(
        started.elapsed() < hard_deadline,
        "{}: took {:?} — the structured-error path must be bounded",
        probe.name,
        started.elapsed()
    );
    class
}

#[test]
fn hostile_frames_yield_structured_errors_in_recv_and_try_recv_lockstep() {
    for probe in probes() {
        let via_recv = drive_probe(&probe, false);
        let via_try = drive_probe(&probe, true);
        assert_eq!(
            via_recv, probe.expected,
            "{}: recv misclassified the probe",
            probe.name
        );
        assert_eq!(
            via_recv, via_try,
            "{}: recv and try_recv disagree",
            probe.name
        );
    }
}

#[test]
fn oversized_header_fails_fast_without_allocating() {
    let (mut victim, mut attacker) = victim_and_attacker();
    // 4 GiB announced; only 4 bytes sent. recv must fail from the header
    // alone, well inside the 500ms receive deadline.
    attacker.write_all(&u32::MAX.to_be_bytes()).unwrap();
    let started = Instant::now();
    match victim.recv(&Role::new("attacker")) {
        Err(RuntimeError::FrameTooLarge { len, max }) => {
            assert_eq!(len, u32::MAX as usize);
            assert_eq!(max, zooid_runtime::wire::DEFAULT_MAX_FRAME_BYTES);
        }
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
    assert!(started.elapsed() < Duration::from_millis(400), "failed too slowly");
    // The error is sticky: the stream cannot be resynchronised.
    assert!(matches!(
        victim.try_recv(&Role::new("attacker")),
        Err(RuntimeError::FrameTooLarge { .. })
    ));
}

#[test]
fn a_compliant_session_survives_next_to_a_hostile_connection() {
    // Hardening must not break the happy path: a victim holding both a
    // hostile peer and a well-behaved one still serves the latter.
    let listener = TcpListener::bind((IpAddr::V4(Ipv4Addr::LOCALHOST), 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let attacker = TcpStream::connect(addr).unwrap();
    let (to_attacker, _) = listener.accept().unwrap();
    let friend_raw = TcpStream::connect(addr).unwrap();
    let (to_friend, _) = listener.accept().unwrap();

    let mut streams = BTreeMap::new();
    streams.insert(Role::new("attacker"), to_attacker);
    streams.insert(Role::new("friend"), to_friend);
    let mut victim = TcpTransport::from_streams(Role::new("victim"), streams);
    victim.set_recv_timeout(Duration::from_secs(5));

    let mut friend_streams = BTreeMap::new();
    friend_streams.insert(Role::new("victim"), friend_raw);
    let mut friend = TcpTransport::from_streams(Role::new("friend"), friend_streams);

    let mut attacker = attacker;
    attacker.write_all(&u32::MAX.to_be_bytes()).unwrap();
    assert!(matches!(
        victim.recv(&Role::new("attacker")),
        Err(RuntimeError::FrameTooLarge { .. })
    ));

    friend
        .send(&Role::new("victim"), &Label::new("hi"), &Value::Nat(7))
        .unwrap();
    assert_eq!(
        victim.recv(&Role::new("friend")).unwrap(),
        (Label::new("hi"), Value::Nat(7))
    );
}
