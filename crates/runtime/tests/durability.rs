//! Durability suite: checkpoint/restore, the columnar write-ahead trace
//! log, and re-certified crash recovery.
//!
//! The covenant under test is *kill-anywhere equivalence*: interrupting a
//! session after **any** quantum, serializing it through the checkpoint
//! codec, restoring it under re-validation and running it on must be
//! observably identical — per-endpoint statuses, value traces, monitor
//! verdicts — to never having interrupted it at all. Around that
//! differential core sit the trust-boundary tests (truncated, bit-flipped
//! and cross-protocol checkpoints are refused with structured errors, not
//! panics), the WAL's torn-tail/corruption distinction, recovery-as-replay
//! (a log is re-certified through a fresh monitor, so a forged log is
//! refused), and the batch arena's deterministic fault injection.

use std::collections::BTreeMap;
use std::sync::Arc;

use zooid_cfsm::System;
use zooid_mpst::global::GlobalType;
use zooid_mpst::local::LocalType;
use zooid_mpst::projection::project_all;
use zooid_mpst::{generators, Role, Sort};
use zooid_proc::{erase, CompiledProc, Expr, Externals, Proc, RecvAlt, Value, ValueAction};
use zooid_runtime::cbatch::{BatchLayout, DemotedSession, SessionBatch};
use zooid_runtime::cexec::{CompiledEndpointTask, EndpointProgram};
use zooid_runtime::checkpoint::{initial_demoted, SessionCheckpoint};
use zooid_runtime::exec::{EndpointStatus, ExecOptions, StepOutcome};
use zooid_runtime::monitor::CompiledMonitor;
use zooid_runtime::transport::{InMemoryNetwork, Transport};
use zooid_runtime::wal::{
    decode_quantum_naive, encode_quantum, encode_quantum_naive, frame_quantum, recover, scan,
    scan_bytes, WalIndexer, WalRecord, WalWriter,
};
use zooid_runtime::{FaultKind, FaultPlan, FaultSite, FaultSpec, RuntimeError};

// ---------------------------------------------------------------------
// Skeleton synthesis (first-branch sends, default payloads) — the same
// construction the batch differential suite uses.
// ---------------------------------------------------------------------

fn default_expr(sort: &Sort) -> Option<Expr> {
    match sort {
        Sort::Unit => Some(Expr::unit()),
        Sort::Nat => Some(Expr::lit(0u64)),
        Sort::Int => Some(Expr::lit(0i64)),
        Sort::Bool => Some(Expr::lit(false)),
        Sort::Str => Some(Expr::lit("")),
        Sort::Prod(a, b) => Some(Expr::pair(default_expr(a)?, default_expr(b)?)),
        Sort::Sum(..) | Sort::Seq(_) => None,
    }
}

fn skeleton_proc(local: &LocalType) -> Option<Proc> {
    match local {
        LocalType::End => Some(Proc::Finish),
        LocalType::Var(i) => Some(Proc::Jump(*i)),
        LocalType::Rec(body) => Some(Proc::loop_(skeleton_proc(body)?)),
        LocalType::Send { to, branches } => {
            let branch = branches.first()?;
            Some(Proc::send(
                to.clone(),
                branch.label.clone(),
                default_expr(&branch.sort)?,
                skeleton_proc(&branch.cont)?,
            ))
        }
        LocalType::Recv { from, branches } => {
            let alts = branches
                .iter()
                .map(|b| {
                    Some(RecvAlt::new(
                        b.label.clone(),
                        b.sort.clone(),
                        "_x",
                        skeleton_proc(&b.cont)?,
                    ))
                })
                .collect::<Option<Vec<_>>>()?;
            Some(Proc::recv(from.clone(), alts))
        }
    }
}

fn skeleton_endpoints(g: &GlobalType) -> Option<Vec<(Role, Proc)>> {
    project_all(g)
        .ok()?
        .into_iter()
        .map(|(role, local)| Some((role, skeleton_proc(&local)?)))
        .collect()
}

fn make_layout(g: &GlobalType, procs: &[(Role, Proc)]) -> Arc<BatchLayout> {
    let system = Arc::new(System::from_global(g).expect("projectable").compile());
    let mut sorted = procs.to_vec();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let roles: Arc<[Role]> = sorted
        .iter()
        .map(|(r, _)| r.clone())
        .collect::<Vec<_>>()
        .into();
    let programs: Vec<Arc<EndpointProgram>> = sorted
        .iter()
        .map(|(role, proc)| {
            Arc::new(EndpointProgram::with_system(
                Arc::new(
                    CompiledProc::compile(proc, role, &Externals::new())
                        .expect("skeletons compile"),
                ),
                &system,
            ))
        })
        .collect();
    BatchLayout::new(roles, programs, system).expect("skeleton layouts are batch-eligible")
}

// ---------------------------------------------------------------------
// The observable a checkpointed-and-restored run must preserve.
// ---------------------------------------------------------------------

#[derive(Debug, PartialEq)]
struct Observed {
    statuses: BTreeMap<Role, EndpointStatus>,
    traces: BTreeMap<Role, Vec<ValueAction>>,
    compliant: bool,
    complete: bool,
}

/// Runs one session stand-alone on the per-session compiled executor,
/// cooperatively on one thread, and returns the observable outcome plus
/// every value action in global observation order (the WAL's input).
fn run_reference(
    g: &GlobalType,
    procs: &[(Role, Proc)],
    options: &ExecOptions,
) -> (Observed, Vec<ValueAction>) {
    let mut network = InMemoryNetwork::new(procs.iter().map(|(r, _)| r.clone()));
    let system = Arc::new(System::from_global(g).expect("projectable").compile());
    let mut monitor = CompiledMonitor::new(Arc::clone(&system));
    monitor.set_record_trace(options.record_actions);
    let mut log: Vec<ValueAction> = Vec::new();

    let mut tasks: Vec<(Role, CompiledEndpointTask, _)> = procs
        .iter()
        .map(|(role, proc)| {
            let transport = network.take_endpoint(role).expect("unique roles");
            let program = Arc::new(EndpointProgram::with_system(
                Arc::new(
                    CompiledProc::compile(proc, role, &Externals::new())
                        .expect("skeletons compile"),
                ),
                &system,
            ));
            let task = CompiledEndpointTask::new(program, Externals::new(), options.clone());
            (role.clone(), task, transport)
        })
        .collect();

    let mut rounds = 0usize;
    loop {
        rounds += 1;
        assert!(rounds < 100_000, "cooperative schedule must terminate");
        let mut progressed = false;
        for (_, task, transport) in tasks.iter_mut() {
            loop {
                match task.step_mem(transport, &mut |va, interned| {
                    log.push(va.clone());
                    match interned {
                        Some(interned) => {
                            monitor.observe_interned(interned, || erase(va));
                        }
                        None => {
                            monitor.observe(&erase(va));
                        }
                    }
                }) {
                    StepOutcome::Progress => progressed = true,
                    _ => break,
                }
            }
        }
        if tasks.iter().all(|(_, t, _)| t.is_done()) {
            break;
        }
        if !progressed {
            for (_, task, _) in tasks.iter_mut() {
                task.mark_stalled();
            }
            break;
        }
    }

    let mut statuses = BTreeMap::new();
    let mut traces = BTreeMap::new();
    for (role, task, transport) in tasks {
        let report = task.into_report();
        statuses.insert(role.clone(), report.status);
        traces.insert(role, report.actions);
        drop(transport);
    }
    (
        Observed {
            statuses,
            traces,
            compliant: monitor.is_compliant(),
            complete: monitor.is_complete(),
        },
        log,
    )
}

/// Resumes a demoted session on the per-session compiled executor and runs
/// it to its conclusion — the restore half of the differential.
fn finish_demoted(demoted: DemotedSession, layout: &Arc<BatchLayout>) -> Observed {
    let DemotedSession {
        options,
        endpoints,
        mut monitor,
        frames,
        ..
    } = demoted;
    let mut network = InMemoryNetwork::from_sorted(Arc::clone(layout.roles()));
    let roles: Vec<Role> = endpoints.iter().map(|ep| ep.role.clone()).collect();
    let mut tasks: Vec<(Role, CompiledEndpointTask, _)> = endpoints
        .into_iter()
        .map(|ep| {
            let transport = network.take_endpoint(&ep.role).expect("sorted roles");
            let role = ep.role.clone();
            let task = CompiledEndpointTask::resume(
                ep.program,
                Externals::new(),
                options.clone(),
                ep.pc,
                ep.slots,
                ep.actions,
                ep.steps,
                ep.status,
            );
            (role, task, transport)
        })
        .collect();
    for (from, to, label, value) in frames {
        let (_, _, transport) = &mut tasks[from as usize];
        transport
            .send(&roles[to as usize], &label, &value)
            .expect("checkpointed roles are network peers");
    }

    let mut rounds = 0usize;
    loop {
        rounds += 1;
        assert!(rounds < 100_000, "restored session must terminate");
        let mut progressed = false;
        for (_, task, transport) in tasks.iter_mut() {
            loop {
                match task.step_mem(transport, &mut |va, interned| match interned {
                    Some(interned) => {
                        monitor.observe_interned(interned, || erase(va));
                    }
                    None => {
                        monitor.observe(&erase(va));
                    }
                }) {
                    StepOutcome::Progress => progressed = true,
                    _ => break,
                }
            }
        }
        if tasks.iter().all(|(_, t, _)| t.is_done()) {
            break;
        }
        if !progressed {
            for (_, task, _) in tasks.iter_mut() {
                task.mark_stalled();
            }
            break;
        }
    }

    let mut statuses = BTreeMap::new();
    let mut traces = BTreeMap::new();
    for (role, task, transport) in tasks {
        let report = task.into_report();
        statuses.insert(role.clone(), report.status);
        traces.insert(role, report.actions);
        drop(transport);
    }
    Observed {
        statuses,
        traces,
        compliant: monitor.is_compliant(),
        complete: monitor.is_complete(),
    }
}

/// Serializes a demoted session through the checkpoint codec and restores
/// it under re-validation — the full durability round trip.
fn roundtrip(demoted: &DemotedSession, layout: &Arc<BatchLayout>) -> DemotedSession {
    let checkpoint = SessionCheckpoint::from_demoted(demoted);
    let bytes = checkpoint.encode();
    let decoded = SessionCheckpoint::decode(&bytes).expect("own encoding decodes");
    assert_eq!(decoded, checkpoint, "decode(encode(c)) == c");
    decoded
        .into_demoted(layout.programs(), layout.system())
        .expect("own checkpoint re-validates")
}

fn case_studies() -> Vec<(&'static str, GlobalType, ExecOptions)> {
    vec![
        ("ring3", generators::ring3(), ExecOptions::default()),
        ("ring8", generators::ring_n(8), ExecOptions::default()),
        ("two_buyer", generators::two_buyer(), ExecOptions::default()),
        ("fanout5", generators::fanout_n(5), ExecOptions::default()),
        ("branching3", generators::branching(3), ExecOptions::default()),
        (
            "pipeline",
            generators::pipeline(),
            ExecOptions::with_max_steps(12),
        ),
        (
            "chain5",
            generators::chain_n(5),
            ExecOptions::with_max_steps(9),
        ),
        (
            "ping_pong",
            generators::ping_pong(),
            ExecOptions::with_max_steps(7),
        ),
    ]
}

// ---------------------------------------------------------------------
// Checkpoint: kill at every quantum, restore, compare.
// ---------------------------------------------------------------------

#[test]
fn checkpoint_at_every_quantum_matches_the_uninterrupted_run() {
    for (name, g, options) in case_studies() {
        let procs = skeleton_endpoints(&g).expect("case studies synthesize");
        let (reference, _) = run_reference(&g, &procs, &options);
        let layout = make_layout(&g, &procs);
        // Kill after k quanta of budget 1, for every k until the session
        // concludes inside the batch on its own.
        'kills: for kill_after in 0..10_000 {
            let mut batch = SessionBatch::new(Arc::clone(&layout), options.clone(), 1);
            assert!(batch.admit(7));
            for _ in 0..kill_after {
                let out = batch.run_quantum(1);
                if !out.finished.is_empty() {
                    // The session concluded before this kill point: later
                    // kill points are unreachable.
                    break 'kills;
                }
                if let Some(demoted) = out.demoted.into_iter().next() {
                    // The batch gave the session up on its own (stall,
                    // violation): the demotion *is* the kill point.
                    let restored = roundtrip(&demoted, &layout);
                    let observed = finish_demoted(restored, &layout);
                    assert_eq!(observed, reference, "{name}: demote-at-{kill_after}");
                    break 'kills;
                }
            }
            let demoted = batch.demote_now(7).expect("session still live");
            let restored = roundtrip(&demoted, &layout);
            let observed = finish_demoted(restored, &layout);
            assert_eq!(observed, reference, "{name}: kill-at-{kill_after}");
        }
    }
}

// ---------------------------------------------------------------------
// Checkpoint: the trust boundary.
// ---------------------------------------------------------------------

#[test]
fn truncated_and_bitflipped_checkpoints_are_refused_not_panicked() {
    let g = generators::two_buyer();
    let procs = skeleton_endpoints(&g).expect("synthesizes");
    let options = ExecOptions::default();
    let layout = make_layout(&g, &procs);
    let mut batch = SessionBatch::new(Arc::clone(&layout), options, 1);
    assert!(batch.admit(3));
    batch.run_quantum(2);
    let demoted = batch.demote_now(3).expect("live");
    let bytes = SessionCheckpoint::from_demoted(&demoted).encode();

    // Every truncation fails with a structured codec error.
    for cut in 0..bytes.len() {
        match SessionCheckpoint::decode(&bytes[..cut]) {
            Err(RuntimeError::Codec { .. }) => {}
            Err(other) => panic!("truncation at {cut} gave non-codec error {other}"),
            Ok(_) => panic!("truncation at {cut} decoded"),
        }
    }
    // Every single-bit flip either fails decoding with a structured error
    // or — if the flip lands in a don't-care position — still has to pass
    // re-validation before it can become a session. Nothing panics.
    for i in 0..bytes.len() {
        for bit in [0x01u8, 0x80u8] {
            let mut mangled = bytes.to_vec();
            mangled[i] ^= bit;
            if let Ok(decoded) = SessionCheckpoint::decode(&mangled) {
                let _ = decoded.into_demoted(layout.programs(), layout.system());
            }
        }
    }
    // Flipping the magic is always refused.
    let mut mangled = bytes.to_vec();
    mangled[0] ^= 0xFF;
    let err = SessionCheckpoint::decode(&mangled).unwrap_err();
    assert!(
        err.to_string().contains("bad magic"),
        "unexpected error: {err}"
    );
}

#[test]
fn checkpoints_do_not_restore_against_a_foreign_protocol() {
    let ring = generators::ring3();
    let ring_procs = skeleton_endpoints(&ring).expect("synthesizes");
    let ring_layout = make_layout(&ring, &ring_procs);
    let buyer = generators::two_buyer();
    let buyer_procs = skeleton_endpoints(&buyer).expect("synthesizes");
    let buyer_layout = make_layout(&buyer, &buyer_procs);

    let mut batch = SessionBatch::new(Arc::clone(&ring_layout), ExecOptions::default(), 1);
    assert!(batch.admit(1));
    batch.run_quantum(1);
    let demoted = batch.demote_now(1).expect("live");
    let checkpoint = SessionCheckpoint::from_demoted(&demoted);

    let err = checkpoint
        .into_demoted(buyer_layout.programs(), buyer_layout.system())
        .unwrap_err();
    match &err {
        RuntimeError::Recovery { .. } => {}
        other => panic!("expected a recovery refusal, got {other}"),
    }
    assert!(err.to_string().starts_with("recovery refused"), "{err}");
}

#[test]
fn the_initial_checkpoint_is_a_working_restart_point() {
    for (name, g, options) in case_studies() {
        let procs = skeleton_endpoints(&g).expect("case studies synthesize");
        let (reference, _) = run_reference(&g, &procs, &options);
        let layout = make_layout(&g, &procs);
        let programs: Vec<Arc<EndpointProgram>> = layout.programs().to_vec();
        let fresh = initial_demoted(11, options.clone(), &programs, layout.system());
        // The initial state survives the codec like any other checkpoint.
        let restored = roundtrip(&fresh, &layout);
        let observed = finish_demoted(restored, &layout);
        assert_eq!(observed, reference, "{name}: restart-from-initial");
    }
}

// ---------------------------------------------------------------------
// WAL: columnar round trip, torn tails, corruption, re-certification.
// ---------------------------------------------------------------------

/// Columnarizes a reference run's global action order into WAL records.
fn columnarize(
    session: u64,
    log: &[ValueAction],
    indexer: &WalIndexer,
) -> Vec<WalRecord> {
    log.iter()
        .map(|va| {
            indexer
                .record(session, va)
                .expect("compiled skeleton actions columnarize")
        })
        .collect()
}

#[test]
fn wal_roundtrip_recovers_and_recertifies_every_case_study() {
    let dir = std::env::temp_dir();
    for (name, g, options) in case_studies() {
        let procs = skeleton_endpoints(&g).expect("case studies synthesize");
        let (reference, log) = run_reference(&g, &procs, &options);
        if log.is_empty() {
            continue;
        }
        let layout = make_layout(&g, &procs);
        let indexer = WalIndexer::new(layout.programs());
        let records = columnarize(42, &log, &indexer);

        // Group-commit in small quanta, reopen, scan.
        let path = dir.join(format!("zooid-wal-{name}-{}.log", std::process::id()));
        let mut writer = WalWriter::create(&path).expect("temp log creates");
        for chunk in records.chunks(3) {
            writer.append_quantum(chunk).expect("append commits");
        }
        drop(writer);
        let scanned = scan(&path).expect("clean log scans");
        std::fs::remove_file(&path).ok();
        assert!(!scanned.torn_tail, "{name}: clean log has no torn tail");
        assert_eq!(scanned.records, records, "{name}: scan returns the log");

        // Recovery replays the suffix through a fresh monitor: the restored
        // trace is re-certified, and expansion restores the full actions.
        let recovered = recover(&scanned.records, &indexer, layout.system())
            .expect("compliant log recovers");
        assert_eq!(recovered.len(), 1, "{name}: one session in the log");
        let session = &recovered[0];
        assert_eq!(session.session, 42);
        assert_eq!(session.actions, log, "{name}: expansion is lossless");
        assert!(session.monitor.is_compliant(), "{name}: replay accepted");
        assert_eq!(
            session.monitor.is_complete(),
            reference.complete,
            "{name}: replay reaches the same completion verdict"
        );
    }
}

#[test]
fn wal_distinguishes_torn_tails_from_corruption() {
    let g = generators::ring3();
    let procs = skeleton_endpoints(&g).expect("synthesizes");
    let (_, log) = run_reference(&g, &procs, &ExecOptions::default());
    let layout = make_layout(&g, &procs);
    let indexer = WalIndexer::new(layout.programs());
    let records = columnarize(9, &log, &indexer);
    let frame = frame_quantum(&records);

    // A full frame followed by any strict prefix of another: torn tail —
    // tolerated, the certified prefix survives.
    for cut in 0..frame.len() {
        let mut image = frame.to_vec();
        image.extend_from_slice(&frame[..cut]);
        let scanned = scan_bytes(&image).expect("torn tails are tolerated");
        assert_eq!(scanned.torn_tail, cut != 0, "cut={cut}");
        assert_eq!(scanned.records, records, "cut={cut}");
        assert_eq!(scanned.valid_bytes, frame.len() as u64, "cut={cut}");
    }

    // A *complete* frame that fails its checksum: corruption — refused.
    for i in 4..frame.len() {
        let mut image = frame.to_vec();
        image[i] ^= 0x20;
        match scan_bytes(&image) {
            Err(RuntimeError::Codec { .. }) => {}
            Err(other) => panic!("flip at {i} gave non-codec error {other}"),
            // A flip inside the length prefix turns the frame into a torn
            // tail (the claimed frame runs past the file) — that shape is
            // tolerated by design, but it must carry no records.
            Ok(s) => assert!(
                s.torn_tail && s.records.is_empty(),
                "flip at {i} was silently accepted"
            ),
        }
    }
}

#[test]
fn wal_columnar_records_are_denser_than_naive_and_roundtrip_equal() {
    let g = generators::two_buyer();
    let procs = skeleton_endpoints(&g).expect("synthesizes");
    let (_, log) = run_reference(&g, &procs, &ExecOptions::default());
    let layout = make_layout(&g, &procs);
    let indexer = WalIndexer::new(layout.programs());
    let records = columnarize(5, &log, &indexer);

    let columnar = encode_quantum(&records);
    let naive = encode_quantum_naive(&records, &indexer).expect("records resolve");
    assert!(
        columnar.len() < naive.len(),
        "columnar {} bytes vs naive {} bytes",
        columnar.len(),
        naive.len()
    );
    // The naive format is round-trip honest, and both formats carry the
    // same actions.
    let decoded = decode_quantum_naive(&naive).expect("naive decodes");
    assert_eq!(decoded.len(), records.len());
    for ((session, action), record) in decoded.iter().zip(&records) {
        assert_eq!(*session, record.session);
        assert_eq!(*action, indexer.expand(record).expect("expands"));
    }
}

#[test]
fn wal_recovery_refuses_forged_logs() {
    let g = generators::ring3();
    let procs = skeleton_endpoints(&g).expect("synthesizes");
    let (_, log) = run_reference(&g, &procs, &ExecOptions::default());
    let layout = make_layout(&g, &procs);
    let indexer = WalIndexer::new(layout.programs());
    let records = columnarize(1, &log, &indexer);
    assert!(records.len() >= 4, "ring3 logs all six actions");

    // A record claiming an event its program never compiled.
    let mut forged = records.clone();
    forged[0].event = 10_000;
    let err = recover(&forged, &indexer, layout.system()).unwrap_err();
    assert!(err.to_string().starts_with("recovery refused"), "{err}");

    // A reordered log: the replayed monitor rejects the out-of-order
    // action, so the forgery cannot become an admitted session.
    let mut reordered = records.clone();
    reordered.swap(0, records.len() - 1);
    let err = recover(&reordered, &indexer, layout.system()).unwrap_err();
    match &err {
        RuntimeError::Recovery { .. } => {}
        other => panic!("expected recovery refusal, got {other}"),
    }
}

// ---------------------------------------------------------------------
// Batch arena fault injection (the hostile-world hook for the data plane
// whose sends never cross a Transport).
// ---------------------------------------------------------------------

#[test]
fn arena_drop_stalls_the_receiver_deterministically() {
    let g = generators::ring3();
    let procs = skeleton_endpoints(&g).expect("synthesizes");
    let layout = make_layout(&g, &procs);
    let plan = FaultPlan::new(11).with(FaultSpec::new(FaultKind::Drop, FaultSite::Send).budget(1));

    let run = |plan: &FaultPlan| {
        let mut batch = SessionBatch::new(Arc::clone(&layout), ExecOptions::default(), 1);
        assert!(batch.admit(0));
        batch.set_arena_faults(plan);
        let out = batch.run_quantum(usize::MAX);
        let schedule = batch.arena_fault_schedule().to_vec();
        (out, schedule)
    };
    let (out, schedule) = run(&plan);
    assert_eq!(schedule.len(), 1, "the budgeted drop fires once");
    assert_eq!(schedule[0].kind, FaultKind::Drop);
    // The dropped message starves its receiver: the session cannot finish
    // compliant-and-complete; it demotes (no progress) or stalls.
    let stalled = out
        .demoted
        .iter()
        .flat_map(|d| d.endpoints.iter())
        .any(|ep| ep.status.is_none() || ep.status == Some(EndpointStatus::Stalled))
        || out.finished.iter().any(|o| o.stalled);
    assert!(stalled, "a dropped frame must strand an endpoint");
    // Same seed, same plan: byte-identical schedule.
    let (_, schedule2) = run(&plan);
    assert_eq!(schedule, schedule2, "injection is deterministic");
}

#[test]
fn arena_truncation_surfaces_as_a_structured_codec_failure() {
    let g = generators::ring3();
    let procs = skeleton_endpoints(&g).expect("synthesizes");
    let layout = make_layout(&g, &procs);
    let plan =
        FaultPlan::new(23).with(FaultSpec::new(FaultKind::Truncate, FaultSite::Send).budget(1));
    let mut batch = SessionBatch::new(Arc::clone(&layout), ExecOptions::default(), 1);
    assert!(batch.admit(0));
    batch.set_arena_faults(&plan);
    let out = batch.run_quantum(usize::MAX);
    assert_eq!(batch.arena_fault_schedule().len(), 1);

    let failures: Vec<String> = out
        .finished
        .iter()
        .flat_map(|o| o.endpoints.iter())
        .filter_map(|r| match &r.status {
            EndpointStatus::Failed { error } => Some(error.clone()),
            _ => None,
        })
        .chain(
            out.demoted
                .iter()
                .flat_map(|d| d.endpoints.iter())
                .filter_map(|ep| match &ep.status {
                    Some(EndpointStatus::Failed { error }) => Some(error.clone()),
                    _ => None,
                }),
        )
        .collect();
    assert!(
        failures
            .iter()
            .any(|e| e.contains("corrupted frame in the batch arena")),
        "truncation must be a structured codec failure, got {failures:?}"
    );
}

#[test]
fn arena_duplicate_doubles_an_inflight_frame_without_inventing_content() {
    let g = generators::ring3();
    let procs = skeleton_endpoints(&g).expect("synthesizes");
    let (_, reference_log) = run_reference(&g, &procs, &ExecOptions::default());
    let layout = make_layout(&g, &procs);
    let plan =
        FaultPlan::new(37).with(FaultSpec::new(FaultKind::Duplicate, FaultSite::Send).budget(1));

    // Demote right after the first send and look at the in-flight frame
    // set: duplication must add exactly one frame, byte-identical to one
    // the sender legitimately produced.
    let run_frames = |plan: Option<&FaultPlan>| {
        let mut batch = SessionBatch::new(Arc::clone(&layout), ExecOptions::default(), 1);
        assert!(batch.admit(0));
        if let Some(plan) = plan {
            batch.set_arena_faults(plan);
        }
        let out = batch.run_quantum(1);
        assert!(out.finished.is_empty() && out.demoted.is_empty());
        let frames = batch.demote_now(0).expect("live").frames;
        let fired = batch.arena_fault_schedule().to_vec();
        (frames, fired)
    };
    let (clean, none_fired) = run_frames(None);
    assert!(none_fired.is_empty());
    let (faulted, fired) = run_frames(Some(&plan));
    assert_eq!(fired.len(), 1, "the budgeted duplicate fires once");
    assert_eq!(fired[0].kind, FaultKind::Duplicate);
    assert_eq!(
        faulted.len(),
        clean.len() + 1,
        "duplication adds exactly one in-flight frame"
    );
    // The extra frame carries no invented content: every in-flight frame —
    // the duplicate included — is a copy of a send the protocol's reference
    // run legitimately performs on that channel.
    let roles = layout.roles();
    for (from, to, label, value) in &faulted {
        assert!(
            reference_log.iter().any(|va| {
                va.is_send
                    && va.from == roles[*from as usize]
                    && va.to == roles[*to as usize]
                    && va.label == *label
                    && va.value == *value
            }),
            "in-flight frame is not a legitimate send: {label:?} {value:?}"
        );
    }
}
