//! Append-only write-ahead trace log with columnar records and re-certified
//! recovery.
//!
//! Every visible communication of a hosted session can be appended here
//! before (or as) it happens; after a crash, [`recover`] replays each
//! session's logged suffix through a **fresh** [`CompiledMonitor`], so a
//! restored trace is *re-certified* against the protocol's compiled tables —
//! the same replay machinery incident capture trusts — rather than merely
//! deserialized. A corrupted log yields a structured error
//! ([`RuntimeError::Codec`] for mangled bytes, [`RuntimeError::Recovery`]
//! for well-formed bytes the monitor rejects); it never becomes an admitted
//! session.
//!
//! # Columnar records
//!
//! A logged action is two parts, split exactly like the batch plane splits
//! a session population: the **skeleton** — which session, which role,
//! which pre-compiled communication *site* (the per-program
//! [`ActionTemplate`](crate::cexec::ActionTemplate) id) — is three dense
//! integers, while the **variables** — the payload values — are the only
//! self-describing bytes. Each group-committed quantum is framed with the
//! skeleton column first and the value column after it, so the fixed-width
//! ids pack contiguously and the log costs a fraction of naively
//! serializing every action's roles, label and sort per record (the
//! structural-entropy trick, here buying audit-log density; see
//! [`encode_quantum`] vs [`encode_quantum_naive`]).
//!
//! # Group commit and torn tails
//!
//! [`WalWriter::append_quantum`] encodes a whole quantum's records into one
//! length-prefixed, checksummed frame and issues a single `write` + `flush`
//! — one commit per scheduling quantum, not per action. On reopen,
//! [`scan_bytes`] distinguishes the two corruption shapes: a frame that
//! runs past the end of the file is a **torn tail** (a crash mid-commit;
//! reported, dropped, and recovery proceeds with the certified prefix),
//! while a complete frame whose checksum does not match is **corruption**
//! and fails the scan with a structured error.

use std::fs::File;
use std::hash::Hasher;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

use bytes::{BufMut, Bytes, BytesMut};
use zooid_cfsm::CompiledSystem;
use zooid_mpst::common::intern::{FxHashMap, FxHasher};
use zooid_mpst::{Label, Role};
use zooid_proc::{Value, ValueAction};

use crate::cexec::EndpointProgram;
use crate::checkpoint::{get_value_action, put_value_action};
use crate::codec::{get_u32, get_u64, get_value, put_value};
use crate::error::{Result, RuntimeError};
use crate::exec::sort_of_value;
use crate::monitor::CompiledMonitor;

/// Upper bound on one frame's payload; a length prefix above it is treated
/// as corruption, never as an allocation request.
const MAX_FRAME_BYTES: usize = 1 << 26;

/// One logged action: the columnar skeleton (`session`, `role`, `event`)
/// plus the payload value. `role` is the index of the acting role in the
/// protocol's sorted role table; `event` is the per-program
/// [`ActionTemplate`](crate::cexec::ActionTemplate) id of the communication
/// site — together they name the action's direction, peer, label and sort
/// without serializing any of them.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// The session the action belongs to.
    pub session: u64,
    /// Index of the acting role in the protocol's sorted role table.
    pub role: u16,
    /// The acting role's per-program event (template) id.
    pub event: u32,
    /// The payload value.
    pub value: Value,
}

/// Maps between [`ValueAction`]s and columnar [`WalRecord`]s for one
/// protocol's compiled per-role programs.
///
/// Only sites the compiled data plane pre-resolved (an interned
/// [`ActionTemplate`](crate::cexec::ActionTemplate) per event) are
/// indexable — which is exactly the serving plane's steady state.
#[derive(Debug)]
pub struct WalIndexer {
    roles: Vec<Role>,
    programs: Vec<Arc<EndpointProgram>>,
    /// Per role: `(is_send, peer, label) → event id`.
    sites: Vec<FxHashMap<(bool, Role, Label), u32>>,
}

impl WalIndexer {
    /// Builds the site index for one program per role (in the protocol's
    /// sorted role order — the same order checkpoints and batches use).
    pub fn new(programs: &[Arc<EndpointProgram>]) -> Self {
        let roles = programs
            .iter()
            .map(|p| p.program().role().clone())
            .collect();
        let sites = programs
            .iter()
            .map(|program| {
                let events = program.program().events();
                program
                    .templates()
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        (
                            (events[i].is_send, t.peer.clone(), t.label.clone()),
                            i as u32,
                        )
                    })
                    .collect()
            })
            .collect();
        WalIndexer {
            roles,
            programs: programs.to_vec(),
            sites,
        }
    }

    /// Columnarizes one action: resolves its subject to a role index and
    /// its `(direction, peer, label)` site to the per-program event id.
    /// `None` when the subject or site is unknown to the compiled programs
    /// (e.g. a tree-walking endpoint) — such actions cannot be logged
    /// skeleton-style.
    pub fn record(&self, session: u64, action: &ValueAction) -> Option<WalRecord> {
        let subject = action.subject();
        let role = self.roles.iter().position(|r| r == subject)?;
        let peer = if action.is_send {
            &action.to
        } else {
            &action.from
        };
        let event = *self.sites[role].get(&(
            action.is_send,
            peer.clone(),
            action.label.clone(),
        ))?;
        Some(WalRecord {
            session,
            role: u16::try_from(role).ok()?,
            event,
            value: action.value.clone(),
        })
    }

    /// Expands a columnar record back into the full action it encodes.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Recovery`] when the record's role or event index
    /// does not exist in the compiled programs — a record that cannot have
    /// been produced against them.
    pub fn expand(&self, record: &WalRecord) -> Result<ValueAction> {
        let role = record.role as usize;
        let Some(program) = self.programs.get(role) else {
            return Err(RuntimeError::Recovery {
                reason: format!("wal record names role index {role} of {}", self.roles.len()),
            });
        };
        let event = record.event as usize;
        let Some(template) = program.templates().get(event) else {
            return Err(RuntimeError::Recovery {
                reason: format!(
                    "wal record names event {event} which `{}` does not compile",
                    self.roles[role]
                ),
            });
        };
        let is_send = program.program().events()[event].is_send;
        let sort = template
            .static_sort
            .clone()
            .unwrap_or_else(|| sort_of_value(&record.value));
        let subject = self.roles[role].clone();
        Ok(if is_send {
            ValueAction::send(
                subject,
                template.peer.clone(),
                template.label.clone(),
                sort,
                record.value.clone(),
            )
        } else {
            ValueAction::recv(
                subject,
                template.peer.clone(),
                template.label.clone(),
                sort,
                record.value.clone(),
            )
        })
    }

    /// The per-role programs the indexer resolves against.
    pub fn programs(&self) -> &[Arc<EndpointProgram>] {
        &self.programs
    }
}

/// Encodes one quantum's records columnar-style: count, then the skeleton
/// column (fixed-width `session`/`role`/`event` ids, contiguous), then the
/// value column. This is the frame payload [`WalWriter::append_quantum`]
/// commits; exposed for the bench harness's bytes-per-action comparison.
pub fn encode_quantum(records: &[WalRecord]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32(records.len() as u32);
    for record in records {
        buf.put_u64(record.session);
        // The vendored byte-buffer stub has no `put_u16`; the role index is
        // two big-endian bytes either way.
        buf.put_slice(&record.role.to_be_bytes());
        buf.put_u32(record.event);
    }
    for record in records {
        put_value(&mut buf, &record.value);
    }
    buf.freeze()
}

/// Decodes one quantum's payload (the inverse of [`encode_quantum`]),
/// appending onto `out`.
fn decode_quantum(mut bytes: &[u8], out: &mut Vec<WalRecord>) -> Result<()> {
    let bytes = &mut bytes;
    let count = get_u32(bytes)? as usize;
    let start = out.len();
    for _ in 0..count {
        let session = get_u64(bytes)?;
        let role = get_u16(bytes)?;
        let event = get_u32(bytes)?;
        out.push(WalRecord {
            session,
            role,
            event,
            value: Value::Unit,
        });
    }
    for record in &mut out[start..] {
        record.value = get_value(bytes)?;
    }
    if !bytes.is_empty() {
        return Err(RuntimeError::Codec {
            reason: format!("{} trailing bytes after a wal quantum", bytes.len()),
        });
    }
    Ok(())
}

/// The naive baseline the columnar format is benched against: every record
/// serialized as a fully self-describing action — subject roles, label and
/// sort spelled out per record. Behaviourally equivalent to
/// [`encode_quantum`] + [`WalIndexer::expand`]; decisively larger.
///
/// # Errors
///
/// [`RuntimeError::Recovery`] when a record does not resolve against the
/// indexer's programs.
pub fn encode_quantum_naive(records: &[WalRecord], indexer: &WalIndexer) -> Result<Bytes> {
    let mut buf = BytesMut::new();
    buf.put_u32(records.len() as u32);
    for record in records {
        buf.put_u64(record.session);
        put_value_action(&mut buf, &indexer.expand(record)?);
    }
    Ok(buf.freeze())
}

/// Decodes a [`encode_quantum_naive`] payload (kept so the naive format is
/// round-trip honest in the property tests, not just a byte counter).
pub fn decode_quantum_naive(mut bytes: &[u8]) -> Result<Vec<(u64, ValueAction)>> {
    let bytes = &mut bytes;
    let count = get_u32(bytes)? as usize;
    let mut out = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let session = get_u64(bytes)?;
        out.push((session, get_value_action(bytes)?));
    }
    if !bytes.is_empty() {
        return Err(RuntimeError::Codec {
            reason: format!("{} trailing bytes after a naive wal quantum", bytes.len()),
        });
    }
    Ok(out)
}

fn get_u16(bytes: &mut &[u8]) -> Result<u16> {
    if bytes.len() < 2 {
        return Err(RuntimeError::Codec {
            reason: "truncated integer".to_owned(),
        });
    }
    let v = u16::from_be_bytes([bytes[0], bytes[1]]);
    *bytes = &bytes[2..];
    Ok(v)
}

fn checksum(payload: &[u8]) -> u64 {
    let mut hasher = FxHasher::default();
    hasher.write(payload);
    hasher.finish()
}

/// Appends framed, checksummed quanta to a log file with one commit per
/// quantum.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
}

impl WalWriter {
    /// Creates (or truncates) the log at `path`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Io`] from file creation.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        Ok(WalWriter {
            file: File::create(path)?,
        })
    }

    /// Group-commits one quantum's records: the columnar payload is framed
    /// as `u32` length + payload + `u64` checksum and written (then
    /// flushed) as a single buffer, so a crash can tear at most the last
    /// frame — which [`scan_bytes`] detects and drops on reopen. Returns
    /// the number of bytes appended. Empty quanta append nothing.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Io`] from the write or flush.
    pub fn append_quantum(&mut self, records: &[WalRecord]) -> Result<usize> {
        if records.is_empty() {
            return Ok(0);
        }
        let frame = frame_quantum(records);
        self.file.write_all(&frame)?;
        self.file.flush()?;
        Ok(frame.len())
    }
}

/// Frames one quantum for appending: length prefix, columnar payload,
/// checksum. Exposed so tests (and the bench) can build log images without
/// touching the filesystem.
pub fn frame_quantum(records: &[WalRecord]) -> Bytes {
    let payload = encode_quantum(records);
    let mut frame = BytesMut::with_capacity(4 + payload.len() + 8);
    frame.put_u32(payload.len() as u32);
    frame.put_slice(&payload);
    frame.put_u64(checksum(&payload));
    frame.freeze()
}

/// What scanning a log produced: every record of the certified prefix, in
/// append order, plus whether a torn tail was dropped.
#[derive(Debug)]
pub struct WalScan {
    /// The records of every intact frame, in append order.
    pub records: Vec<WalRecord>,
    /// `true` when the file ended inside a frame (a crash mid-commit); the
    /// partial frame was dropped.
    pub torn_tail: bool,
    /// The byte length of the intact prefix (the safe truncation point for
    /// continuing the log).
    pub valid_bytes: u64,
}

/// Reads a log file and scans it (see [`scan_bytes`]).
///
/// # Errors
///
/// [`RuntimeError::Io`] from reading; [`RuntimeError::Codec`] on mid-file
/// corruption.
pub fn scan(path: impl AsRef<Path>) -> Result<WalScan> {
    scan_bytes(&std::fs::read(path)?)
}

/// Walks a log image frame by frame.
///
/// A frame that runs past the end of the input (length prefix, payload or
/// checksum cut short) is a **torn tail**: the write was interrupted, the
/// partial frame carries no committed data, and the scan succeeds with
/// `torn_tail = true`. A *complete* frame whose checksum or payload does
/// not verify is **corruption** — the log was altered after commit — and
/// the scan fails with [`RuntimeError::Codec`].
pub fn scan_bytes(bytes: &[u8]) -> Result<WalScan> {
    let mut records = Vec::new();
    let mut offset = 0usize;
    loop {
        if offset == bytes.len() {
            return Ok(WalScan {
                records,
                torn_tail: false,
                valid_bytes: offset as u64,
            });
        }
        let rest = &bytes[offset..];
        let torn = |records: Vec<WalRecord>| {
            Ok(WalScan {
                records,
                torn_tail: true,
                valid_bytes: offset as u64,
            })
        };
        if rest.len() < 4 {
            return torn(records);
        }
        let len = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(RuntimeError::Codec {
                reason: format!("wal frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
            });
        }
        if rest.len() < 4 + len + 8 {
            return torn(records);
        }
        let payload = &rest[4..4 + len];
        let stored = u64::from_be_bytes(rest[4 + len..4 + len + 8].try_into().expect("8 bytes"));
        if checksum(payload) != stored {
            return Err(RuntimeError::Codec {
                reason: format!("wal frame at byte {offset} fails its checksum"),
            });
        }
        decode_quantum(payload, &mut records)?;
        offset += 4 + len + 8;
    }
}

/// One session's re-certified recovery: the monitor that replayed (and
/// accepted) the session's entire logged suffix, plus the expanded actions
/// in log order.
#[derive(Debug)]
pub struct RecoveredSession {
    /// The session the records belonged to.
    pub session: u64,
    /// A fresh monitor that has observed — and accepted — every logged
    /// action of the session, in order. Its cursor, trace and verdict are
    /// exactly what an uninterrupted monitor would hold.
    pub monitor: CompiledMonitor,
    /// The expanded actions, in log order.
    pub actions: Vec<ValueAction>,
}

/// Replays scanned records through fresh [`CompiledMonitor`]s, one per
/// session (grouped in first-appearance order; records of one session keep
/// their log order).
///
/// This is what makes restoration *re-certification*: the log's claim of a
/// compliant history is not trusted — it is re-run against the protocol's
/// compiled tables, and any action the monitor rejects fails the whole
/// recovery with [`RuntimeError::Recovery`]. A tampered or cross-wired log
/// (wrong protocol, reordered records, forged events) is refused; it never
/// yields an admitted session.
pub fn recover(
    records: &[WalRecord],
    indexer: &WalIndexer,
    system: &Arc<CompiledSystem>,
) -> Result<Vec<RecoveredSession>> {
    let mut sessions: Vec<RecoveredSession> = Vec::new();
    let mut by_session: FxHashMap<u64, usize> = FxHashMap::default();
    for (n, record) in records.iter().enumerate() {
        let action = indexer.expand(record)?;
        let i = *by_session.entry(record.session).or_insert_with(|| {
            sessions.push(RecoveredSession {
                session: record.session,
                monitor: CompiledMonitor::new(Arc::clone(system)),
                actions: Vec::new(),
            });
            sessions.len() - 1
        });
        let erased = zooid_proc::erase(&action);
        if !sessions[i].monitor.observe(&erased) {
            return Err(RuntimeError::Recovery {
                reason: format!(
                    "monitor rejected logged action {n} of session {} ({erased})",
                    record.session
                ),
            });
        }
        sessions[i].actions.push(action);
    }
    Ok(sessions)
}
