//! A minimal readiness-poll loop over non-blocking `std::net` sockets.
//!
//! The hermetic build has no tokio/mio and the crate forbids `unsafe`, so
//! `epoll` FFI is off the table. What std *does* give us is
//! [`TcpStream::peek`] on a non-blocking socket, which distinguishes the
//! three states an event loop cares about without consuming input:
//!
//! * `Ok(0)` — the peer closed its write side ([`Readiness::Closed`]);
//! * `Ok(n)`, `n > 0` — at least `n` bytes are readable
//!   ([`Readiness::Readable`]);
//! * `Err(WouldBlock)` — nothing buffered ([`Readiness::Empty`]).
//!
//! [`Poller::poll`] scans a set of sockets with that probe and sleeps in
//! short, adaptively growing slices between sweeps, returning as soon as any
//! socket has an event or the timeout elapses. A sweep over `n` sockets is
//! `n` cheap syscalls — an honest stand-in for `epoll_wait` that keeps the
//! serving plane's architecture (readable socket ⇒ enqueue session for a
//! quantum) identical to what a real selector would drive, behind a module
//! boundary where one can later swap the probe loop for `mio` with a
//! one-line `Cargo.toml` change.

use std::net::TcpStream;
use std::time::{Duration, Instant};

/// What a readiness probe observed on one socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Readiness {
    /// Bytes are buffered and a read will make progress.
    Readable,
    /// Nothing to read right now.
    Empty,
    /// The peer closed the connection (EOF) or the socket errored.
    Closed,
}

/// Probes a non-blocking stream for readability without consuming input.
///
/// Genuine I/O errors (reset, aborted, ...) report [`Readiness::Closed`]:
/// for an event loop both mean "hand the socket to its reader, which will
/// surface the structured error".
pub fn probe(stream: &TcpStream) -> Readiness {
    let mut byte = [0u8; 1];
    match stream.peek(&mut byte) {
        Ok(0) => Readiness::Closed,
        Ok(_) => Readiness::Readable,
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Readiness::Empty,
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Readiness::Empty,
        Err(_) => Readiness::Closed,
    }
}

/// A readiness event: the token the caller registered alongside its socket,
/// plus what the probe saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier (e.g. a connection slot index).
    pub token: usize,
    /// The observed state.
    pub readiness: Readiness,
}

/// Sweep-and-backoff scheduler for readiness probes.
///
/// Not an OS selector: it owns no registrations, just the adaptive idle
/// backoff. Callers pass the current socket set to every [`Poller::poll`]
/// call, which fits an event loop whose connection table changes as peers
/// come and go.
#[derive(Debug)]
pub struct Poller {
    idle_sleep: Duration,
}

/// First back-off slice after an idle sweep.
const MIN_IDLE_SLEEP: Duration = Duration::from_micros(100);
/// Largest back-off slice between sweeps; also bounds how stale an idle
/// poller's view of a new connection or pending accept can get.
const MAX_IDLE_SLEEP: Duration = Duration::from_millis(2);

impl Poller {
    /// Creates a poller with the backoff in its most reactive state.
    pub fn new() -> Self {
        Poller {
            idle_sleep: MIN_IDLE_SLEEP,
        }
    }

    /// Probes every `(token, stream)` pair, appending non-[`Readiness::Empty`]
    /// observations to `events`; sleeps and re-sweeps until something shows
    /// up or `timeout` elapses. Returns the number of events appended.
    ///
    /// An empty sweep grows the idle backoff (100µs → 2ms); any event resets
    /// it, so a busy loop burns no sleeps and an idle one burns no CPU.
    pub fn poll<'a, I>(&mut self, sources: impl Fn() -> I, events: &mut Vec<Event>, timeout: Duration) -> usize
    where
        I: Iterator<Item = (usize, &'a TcpStream)>,
    {
        let deadline = Instant::now() + timeout;
        let before = events.len();
        loop {
            for (token, stream) in sources() {
                let readiness = probe(stream);
                if readiness != Readiness::Empty {
                    events.push(Event { token, readiness });
                }
            }
            if events.len() > before {
                self.idle_sleep = MIN_IDLE_SLEEP;
                return events.len() - before;
            }
            let now = Instant::now();
            if now >= deadline {
                return 0;
            }
            let slice = self.idle_sleep.min(deadline - now);
            std::thread::sleep(slice);
            self.idle_sleep = (self.idle_sleep * 2).min(MAX_IDLE_SLEEP);
        }
    }
}

impl Default for Poller {
    fn default() -> Self {
        Poller::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{IpAddr, Ipv4Addr, TcpListener};

    fn nonblocking_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind((IpAddr::V4(Ipv4Addr::LOCALHOST), 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (server, client)
    }

    #[test]
    fn probe_distinguishes_empty_readable_closed() {
        let (server, mut client) = nonblocking_pair();
        assert_eq!(probe(&server), Readiness::Empty);
        client.write_all(b"x").unwrap();
        // Loopback delivery is fast but not instantaneous.
        let deadline = Instant::now() + Duration::from_secs(5);
        while probe(&server) != Readiness::Readable {
            assert!(Instant::now() < deadline, "byte never became readable");
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(client);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            // The buffered byte keeps the socket Readable until drained;
            // peek does not consume, so read it off to observe the close.
            use std::io::Read;
            let mut sink = [0u8; 16];
            match (&server).read(&mut sink) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(Instant::now() < deadline, "close never observed");
        }
        assert_eq!(probe(&server), Readiness::Closed);
    }

    #[test]
    fn poll_returns_on_cross_thread_arrival_and_times_out_on_silence() {
        let (server, mut client) = nonblocking_pair();
        let mut poller = Poller::new();
        let mut events = Vec::new();

        // Silence: no events, returns at the deadline.
        let start = Instant::now();
        let n = poller.poll(
            || std::iter::once((7usize, &server)),
            &mut events,
            Duration::from_millis(20),
        );
        assert_eq!(n, 0);
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(20));

        // A byte written from another thread wakes the poll well before the
        // (generous) deadline.
        let writer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            client.write_all(b"y").unwrap();
            client
        });
        let n = poller.poll(
            || std::iter::once((7usize, &server)),
            &mut events,
            Duration::from_secs(5),
        );
        assert_eq!(n, 1);
        assert_eq!(
            events,
            vec![Event {
                token: 7,
                readiness: Readiness::Readable
            }]
        );
        drop(writer.join().unwrap());
    }
}
