//! Error types for the runtime layer.

use std::fmt;

use zooid_mpst::{Label, Role};

/// A specialised `Result` for runtime operations.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// Errors produced by transports, the executor and the session harness.
#[derive(Debug)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The transport has no channel towards the requested role.
    UnknownPeer {
        /// The peer no channel exists for.
        role: Role,
    },
    /// The peer disconnected (or its channel closed) while sending or
    /// receiving.
    Disconnected {
        /// The peer that went away.
        role: Role,
    },
    /// No message arrived within the configured timeout.
    Timeout {
        /// The peer the endpoint was waiting for.
        from: Role,
    },
    /// A frame could not be decoded.
    Codec {
        /// Description of the decoding failure.
        reason: String,
    },
    /// A wire frame announced a length above the transport's configured
    /// cap. Raised from the 4-byte header alone — the oversized body is
    /// never buffered, so a hostile length prefix cannot force a large
    /// allocation.
    FrameTooLarge {
        /// The length the frame header announced.
        len: usize,
        /// The configured `max_frame_bytes` cap it exceeded.
        max: usize,
    },
    /// The process received a message whose label it cannot handle in its
    /// current state.
    UnexpectedMessage {
        /// The sender of the offending message.
        from: Role,
        /// Its label.
        label: Label,
    },
    /// The payload of a received message does not inhabit the expected sort.
    BadPayload {
        /// The sender of the offending message.
        from: Role,
        /// Its label.
        label: Label,
    },
    /// An error bubbled up from the process layer (expression evaluation,
    /// missing external action, ...).
    Process(zooid_proc::ProcError),
    /// An I/O error from the TCP transport.
    Io(std::io::Error),
    /// The executor hit its configured step limit before the process
    /// finished.
    StepLimitReached {
        /// The configured limit.
        limit: usize,
    },
    /// A participant thread panicked inside the session harness.
    EndpointPanicked {
        /// The role whose thread panicked.
        role: Role,
    },
    /// Persisted session state (a checkpoint or a write-ahead log) failed
    /// re-certification on restore: the bytes decoded, but the state they
    /// describe is not one the protocol's compiled tables admit. The session
    /// is refused — durability never readmits an uncertified session.
    Recovery {
        /// What the re-certification rejected.
        reason: String,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnknownPeer { role } => write!(f, "no channel towards `{role}`"),
            RuntimeError::Disconnected { role } => write!(f, "peer `{role}` disconnected"),
            RuntimeError::Timeout { from } => {
                write!(f, "timed out waiting for a message from `{from}`")
            }
            RuntimeError::Codec { reason } => write!(f, "malformed frame: {reason}"),
            RuntimeError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            RuntimeError::UnexpectedMessage { from, label } => {
                write!(f, "unexpected message `{label}` from `{from}`")
            }
            RuntimeError::BadPayload { from, label } => {
                write!(f, "payload of message `{label}` from `{from}` has the wrong sort")
            }
            RuntimeError::Process(e) => write!(f, "process error: {e}"),
            RuntimeError::Io(e) => write!(f, "transport i/o error: {e}"),
            RuntimeError::StepLimitReached { limit } => {
                write!(f, "stopped after reaching the step limit of {limit}")
            }
            RuntimeError::EndpointPanicked { role } => {
                write!(f, "the endpoint thread for `{role}` panicked")
            }
            RuntimeError::Recovery { reason } => {
                write!(f, "recovery refused: {reason}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Process(e) => Some(e),
            RuntimeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<zooid_proc::ProcError> for RuntimeError {
    fn from(e: zooid_proc::ProcError) -> Self {
        RuntimeError::Process(e)
    }
}

impl From<std::io::Error> for RuntimeError {
    fn from(e: std::io::Error) -> Self {
        RuntimeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let cases: Vec<RuntimeError> = vec![
            RuntimeError::UnknownPeer {
                role: Role::new("q"),
            },
            RuntimeError::Disconnected {
                role: Role::new("q"),
            },
            RuntimeError::Timeout {
                from: Role::new("q"),
            },
            RuntimeError::Codec {
                reason: "truncated frame".into(),
            },
            RuntimeError::FrameTooLarge {
                len: 1 << 32,
                max: 1 << 24,
            },
            RuntimeError::UnexpectedMessage {
                from: Role::new("q"),
                label: Label::new("l"),
            },
            RuntimeError::BadPayload {
                from: Role::new("q"),
                label: Label::new("l"),
            },
            RuntimeError::StepLimitReached { limit: 10 },
            RuntimeError::EndpointPanicked {
                role: Role::new("q"),
            },
            RuntimeError::Recovery {
                reason: "monitor rejected the replayed trace".into(),
            },
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
            assert!(!msg.ends_with('.'), "{msg}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<RuntimeError>();
    }
}
