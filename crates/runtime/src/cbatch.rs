//! Columnar batch execution: struct-of-arrays stepping for homogeneous
//! sessions.
//!
//! The slab executor in `zooid-server` steps each session through its own
//! [`CompiledEndpointTask`](crate::cexec::CompiledEndpointTask): one pointer
//! chase into the session's slot array, one `RefCell` borrow of its channel
//! core and one virtual port dispatch per action — per session. At serving
//! scale most live sessions run the *same* protocol and sit at the *same*
//! handful of program counters, so almost all of that per-session state is
//! redundant. This module splits a session population the other way:
//!
//! * the **skeleton** — the compiled per-role programs
//!   ([`EndpointProgram`]), the protocol's compiled transition tables and
//!   the derived routing tables ([`BatchLayout`]: dense peer indices and a
//!   batch-wide wire-label table) — is shared once per batch;
//! * the **variables** — program counters, step counts, value slots,
//!   monitor cursors, traces — live in struct-of-arrays *columns* indexed
//!   by session slot ([`SessionBatch`]). Value slots are laid out per-slot
//!   across sessions (`slots[slot * capacity + session]`), so a cohort of
//!   sessions executing the same instruction reads and writes contiguous
//!   memory.
//!
//! Each scheduling pass groups live endpoints by `(role, pc)` and steps
//! every cohort with a tight loop: the instruction, its
//! [`ActionTemplate`](crate::cexec::ActionTemplate), the peer index and the
//! wire label are resolved **once per cohort**, and sends between co-batched
//! endpoints are index writes into a shared frame arena — no per-channel
//! `VecDeque` behind a `RefCell`, no role or label comparison, and
//! zero-hash monitoring via the pre-interned actions
//! ([`zooid_cfsm::CompiledSystem::observe_interned`]).
//!
//! A session is **batch-eligible** when every role's program avoids
//! external actions (`read`/`write`/`interact` run arbitrary host closures)
//! and every communication site has a statically known sort with a
//! pre-interned action ([`BatchLayout::new`] checks this once per program
//! set). Sessions that diverge from their cohort mid-flight — a monitor
//! violation, a payload whose runtime sort differs from the static one, or
//! a full pass without progress — are **demoted**: their columns are
//! gathered into a [`DemotedSession`] carrying the program counters, slot
//! values, action traces, in-flight frames and the monitor state, which the
//! slab executor resumes without losing a single observation
//! ([`CompiledEndpointTask::resume`](crate::cexec::CompiledEndpointTask::resume),
//! [`CompiledMonitor::resume`]).
//!
//! The slab and tree executors remain the behavioural oracles: the
//! differential suite (`tests/batch_exec.rs`) checks statuses, per-endpoint
//! value traces and monitor verdicts agree in lockstep on case studies and
//! randomized projectable protocols.

use std::mem;
use std::sync::Arc;

use zooid_cfsm::{CompiledSystem, MonitorCursor};
use zooid_mpst::{Action, Label, Role, Trace};
use zooid_proc::compile::{Arm, CExpr, Instr};
use zooid_proc::{Value, ValueAction};

use crate::cexec::{ActionTemplate, EndpointProgram, ADMIN_FUEL};
use crate::error::RuntimeError;
use crate::exec::{sort_of_value, EndpointReport, EndpointStatus, ExecOptions};
use crate::faults::{ArenaFaults, FaultKind, FaultPlan, InjectedFault};
use crate::monitor::{CompiledMonitor, MonitorViolation};

/// The wire id an arena [`FaultKind::Truncate`] injection writes in place
/// of the real one. Deliberately out of range for every layout (`u32::MAX`
/// doubles as `BatchLayout::label_wire`'s "no site" sentinel), so the
/// receiver surfaces it as a codec failure rather than a mis-delivery.
const CORRUPT_WIRE: u32 = u32::MAX;

/// The shared skeleton of a batch: the per-role compiled programs plus the
/// routing tables derived from them once — dense peer indices
/// (`role × RoleId → batch role index`) and a batch-wide wire-label table
/// (`role × LabelId → wire id`), so the stepping loop never compares a role
/// or label string.
#[derive(Debug)]
pub struct BatchLayout {
    roles: Arc<[Role]>,
    programs: Vec<Arc<EndpointProgram>>,
    system: Arc<CompiledSystem>,
    /// The deduplicated labels of every communication site across all
    /// programs; frames in the arena carry an index into this table.
    labels: Vec<Label>,
    /// `label_wire[r][LabelId::index()]` — the wire id of that role's
    /// interned label (`u32::MAX` for label ids without a communication
    /// site).
    label_wire: Vec<Vec<u32>>,
    /// `peer_map[r][RoleId::index()]` — the batch role index of that role's
    /// interned peer.
    peer_map: Vec<Vec<u32>>,
    /// Per-role slot counts (the per-role column heights).
    slot_counts: Vec<usize>,
}

impl BatchLayout {
    /// Derives the shared layout for one program per role, or `None` when
    /// the combination is not batch-eligible: `roles` must be sorted and
    /// match the programs' roles positionally, no program may call external
    /// actions, and every communication site must carry a statically known
    /// sort with a pre-interned action (compile the programs with
    /// [`EndpointProgram::with_system`] against the same `system`).
    pub fn new(
        roles: Arc<[Role]>,
        programs: Vec<Arc<EndpointProgram>>,
        system: Arc<CompiledSystem>,
    ) -> Option<Arc<BatchLayout>> {
        if programs.len() != roles.len() || roles.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        let mut labels: Vec<Label> = Vec::new();
        let mut label_wire = Vec::with_capacity(programs.len());
        let mut peer_map = Vec::with_capacity(programs.len());
        let mut slot_counts = Vec::with_capacity(programs.len());
        for (r, program) in programs.iter().enumerate() {
            let compiled = program.program();
            if compiled.role() != &roles[r] || compiled.calls_externals() {
                return None;
            }
            if program
                .templates()
                .iter()
                .any(|t| t.static_sort.is_none() || t.interned.is_none())
            {
                return None;
            }
            let snapshot = compiled.snapshot();
            let mut map = Vec::with_capacity(snapshot.roles().len());
            for role in snapshot.roles() {
                let pos = roles.binary_search(role).ok()?;
                map.push(pos as u32);
            }
            peer_map.push(map);
            let mut wires: Vec<u32> = Vec::new();
            let mut assign = |wires: &mut Vec<u32>, lid: zooid_mpst::common::intern::LabelId| {
                let i = lid.index();
                if wires.len() <= i {
                    wires.resize(i + 1, u32::MAX);
                }
                if wires[i] == u32::MAX {
                    let label = snapshot.label(lid);
                    let wire = labels.iter().position(|l| l == label).unwrap_or_else(|| {
                        labels.push(label.clone());
                        labels.len() - 1
                    });
                    wires[i] = wire as u32;
                }
            };
            for instr in compiled.instrs() {
                match instr {
                    Instr::Send { label, .. } => assign(&mut wires, *label),
                    Instr::Recv { arms, .. } => {
                        for arm in arms.iter() {
                            assign(&mut wires, arm.label);
                        }
                    }
                    _ => {}
                }
            }
            label_wire.push(wires);
            slot_counts.push(compiled.slot_count());
        }
        Some(Arc::new(BatchLayout {
            roles,
            programs,
            system,
            labels,
            label_wire,
            peer_map,
            slot_counts,
        }))
    }

    /// The sorted session roles, in batch role-index order.
    pub fn roles(&self) -> &Arc<[Role]> {
        &self.roles
    }

    /// The per-role compiled programs, in batch role-index order.
    pub fn programs(&self) -> &[Arc<EndpointProgram>] {
        &self.programs
    }

    /// The protocol's compiled transition tables.
    pub fn system(&self) -> &Arc<CompiledSystem> {
        &self.system
    }
}

/// One session-indexed cell of the frame arena: an append-only buffer with
/// a read head — push is a `Vec` push, pop swaps the value out and bumps
/// the head, and the buffer resets once drained so capacity is reused.
#[derive(Debug, Default)]
struct FrameQueue {
    buf: Vec<(u32, Value)>,
    head: usize,
}

impl FrameQueue {
    fn push(&mut self, wire: u32, value: Value) {
        self.buf.push((wire, value));
    }

    fn pop(&mut self) -> Option<(u32, Value)> {
        if self.head < self.buf.len() {
            let frame = mem::replace(&mut self.buf[self.head], (0, Value::Unit));
            self.head += 1;
            if self.head == self.buf.len() {
                self.buf.clear();
                self.head = 0;
            }
            Some(frame)
        } else {
            None
        }
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

/// What one [`SessionBatch::run_quantum`] call did: action counts for
/// metrics, the sessions that concluded, the sessions that demoted to the
/// slab executor, and cohort statistics (a cohort is one `(role, pc)` run
/// of a scheduling pass).
#[derive(Debug, Default)]
pub struct BatchQuantum {
    /// Visible communications performed (sends + receives).
    pub actions: usize,
    /// Sends among them (message-routing metric).
    pub sends: usize,
    /// Sessions that ran to a conclusion inside the batch.
    pub finished: Vec<BatchOutcome>,
    /// Sessions pulled out mid-flight for the slab executor.
    pub demoted: Vec<DemotedSession>,
    /// Number of `(role, pc)` cohorts stepped.
    pub cohorts: usize,
    /// Total sessions across those cohorts (mean cohort width =
    /// `cohort_sessions / cohorts`).
    pub cohort_sessions: usize,
    /// Cohort-width distribution: `cohort_widths[b]` counts cohorts whose
    /// width fell in log2 bucket `b` (bucket 0 is unused — a cohort has at
    /// least one session; widths ≥ 2^15 land in the last bucket). The
    /// server folds this into its width histogram without touching the
    /// stepping loop.
    pub cohort_widths: [u64; 16],
}

/// The conclusion of one batched session, in the same terms as a slab
/// session outcome: per-endpoint reports (in batch role order), the
/// monitor's verdicts and — when recording was on — the compliant global
/// trace.
#[derive(Debug)]
pub struct BatchOutcome {
    /// The caller-supplied session token (see [`SessionBatch::admit`]).
    pub token: u64,
    /// Per-endpoint reports, in batch role-index order.
    pub endpoints: Vec<EndpointReport>,
    /// The compliant global trace (empty when recording was off).
    pub global_trace: Trace,
    /// `true` if the monitor observed no violation.
    pub compliant: bool,
    /// `true` if the protocol ran to completion.
    pub complete: bool,
    /// The violations observed.
    pub violations: Vec<MonitorViolation>,
    /// `true` if the session was closed without finishing (shutdown).
    pub stalled: bool,
}

/// One endpoint's extracted execution state, ready for
/// [`CompiledEndpointTask::resume`](crate::cexec::CompiledEndpointTask::resume).
#[derive(Debug)]
pub struct DemotedEndpoint {
    /// The endpoint's role.
    pub role: Role,
    /// The shared compiled program the endpoint was running.
    pub program: Arc<EndpointProgram>,
    /// The program counter to resume at.
    pub pc: u32,
    /// The endpoint's slot values, in slot-id order.
    pub slots: Vec<Value>,
    /// The recorded actions so far (empty when recording was off).
    pub actions: Vec<ValueAction>,
    /// Visible communications performed so far.
    pub steps: usize,
    /// The endpoint's status, when it already concluded inside the batch.
    pub status: Option<EndpointStatus>,
}

/// A session pulled out of a batch mid-flight: everything the slab executor
/// needs to continue it exactly where its columns left off — per-endpoint
/// state, the resumed monitor, and the frames that were still in flight in
/// the batch arena (per-channel FIFO order preserved).
#[derive(Debug)]
pub struct DemotedSession {
    /// The caller-supplied session token.
    pub token: u64,
    /// The execution options the batch ran with.
    pub options: ExecOptions,
    /// Per-endpoint state, in batch role-index order.
    pub endpoints: Vec<DemotedEndpoint>,
    /// The monitor, resumed mid-stream (cursor, trace, verdicts intact).
    pub monitor: CompiledMonitor,
    /// Undelivered frames as `(from, to, label, value)` with `from`/`to`
    /// batch role indices; per-channel order is the delivery order.
    pub frames: Vec<(u32, u32, Label, Value)>,
}

/// A fixed-capacity population of homogeneous sessions stepped in columns.
///
/// All sessions share one [`BatchLayout`] and one [`ExecOptions`]; their
/// mutable state lives in struct-of-arrays columns indexed by session slot.
/// [`SessionBatch::admit`] claims a slot, [`SessionBatch::run_quantum`]
/// steps the whole population in `(role, pc)` cohorts, and sessions leave
/// as [`BatchOutcome`]s (concluded) or [`DemotedSession`]s (stragglers for
/// the slab executor).
#[derive(Debug)]
pub struct SessionBatch {
    layout: Arc<BatchLayout>,
    options: ExecOptions,
    record: bool,
    cap: usize,
    // Session columns (one entry per slot).
    tokens: Vec<u64>,
    live: Vec<bool>,
    free: Vec<u32>,
    live_count: usize,
    cursors: Vec<MonitorCursor>,
    traces: Vec<Trace>,
    violations: Vec<Vec<MonitorViolation>>,
    accepted: Vec<usize>,
    observed: Vec<usize>,
    demote: Vec<bool>,
    progress: Vec<bool>,
    // Endpoint columns, indexed `role * cap + slot`.
    pcs: Vec<u32>,
    steps: Vec<u32>,
    statuses: Vec<Option<EndpointStatus>>,
    actions: Vec<Vec<ValueAction>>,
    // Value columns, per role, laid out per-slot across sessions:
    // `slots[role][slot_id * cap + slot]`.
    slots: Vec<Vec<Value>>,
    // Frame arena, indexed `(from * n + to) * cap + slot`.
    queues: Vec<FrameQueue>,
    // (pc, session) scratch for cohort grouping, reused across passes.
    scratch: Vec<(u32, u32)>,
    // Fault evaluator for the arena write path (hostile-world suite);
    // `None` outside fault campaigns, costing one branch per send.
    arena_faults: Option<ArenaFaults>,
}

impl SessionBatch {
    /// Creates an empty batch of the given capacity (at least 1).
    pub fn new(layout: Arc<BatchLayout>, options: ExecOptions, capacity: usize) -> Self {
        let cap = capacity.max(1);
        let n = layout.roles.len();
        let record = options.record_actions;
        let cursor = layout.system.monitor_cursor();
        let slots = layout
            .slot_counts
            .iter()
            .map(|&count| vec![Value::Unit; count * cap])
            .collect();
        let mut queues = Vec::with_capacity(n * n * cap);
        queues.resize_with(n * n * cap, FrameQueue::default);
        SessionBatch {
            layout,
            options,
            record,
            cap,
            tokens: vec![0; cap],
            live: vec![false; cap],
            free: (0..cap as u32).rev().collect(),
            live_count: 0,
            cursors: vec![cursor; cap],
            traces: vec![Trace::empty(); cap],
            violations: vec![Vec::new(); cap],
            accepted: vec![0; cap],
            observed: vec![0; cap],
            demote: vec![false; cap],
            progress: vec![false; cap],
            pcs: vec![0; n * cap],
            steps: vec![0; n * cap],
            statuses: vec![None; n * cap],
            actions: vec![Vec::new(); n * cap],
            slots,
            queues,
            scratch: Vec::new(),
            arena_faults: None,
        }
    }

    /// Arms deterministic fault injection on the arena write path. In-batch
    /// sends never cross a [`Transport`](crate::transport::Transport), so
    /// [`crate::faults::FaultyTransport`] cannot reach them; this is the
    /// batch plane's counterpart. See [`ArenaFaults`] for which
    /// [`FaultKind`]s are meaningful at this seam.
    pub fn set_arena_faults(&mut self, plan: &FaultPlan) {
        self.arena_faults = Some(ArenaFaults::new(plan));
    }

    /// The deterministic log of arena faults injected so far (empty when
    /// no plan is armed).
    pub fn arena_fault_schedule(&self) -> &[InjectedFault] {
        self.arena_faults.as_ref().map_or(&[], ArenaFaults::schedule)
    }

    /// The shared layout the batch runs.
    pub fn layout(&self) -> &Arc<BatchLayout> {
        &self.layout
    }

    /// Number of session slots.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of live sessions.
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Returns `true` if no slot is free.
    pub fn is_full(&self) -> bool {
        self.free.is_empty()
    }

    /// Returns `true` if no session is live.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Admits a new session under the caller's `token` (any identifier;
    /// outcomes and demotions carry it back). Returns `false` when the
    /// batch is full.
    pub fn admit(&mut self, token: u64) -> bool {
        let Some(s) = self.free.pop() else {
            return false;
        };
        let s = s as usize;
        let cap = self.cap;
        self.tokens[s] = token;
        self.live[s] = true;
        self.live_count += 1;
        self.demote[s] = false;
        self.progress[s] = false;
        self.cursors[s] = self.layout.system.monitor_cursor();
        self.traces[s] = Trace::empty();
        self.violations[s].clear();
        self.accepted[s] = 0;
        self.observed[s] = 0;
        for r in 0..self.layout.programs.len() {
            let idx = r * cap + s;
            self.pcs[idx] = self.layout.programs[r].program().entry();
            self.steps[idx] = 0;
            self.statuses[idx] = None;
            self.actions[idx].clear();
        }
        true
    }

    /// Steps the whole population in full passes until `budget` visible
    /// actions were performed (the last pass may overshoot) or no session
    /// is left. Each pass groups live endpoints by `(role, pc)` and steps
    /// every cohort once; a session whose endpoints all conclude leaves as
    /// a [`BatchOutcome`], one that diverges (violation, runtime sort
    /// mismatch, or a full pass without progress — which in a batch of
    /// self-contained sessions proves it can never progress again) leaves
    /// as a [`DemotedSession`].
    pub fn run_quantum(&mut self, budget: usize) -> BatchQuantum {
        let mut out = BatchQuantum::default();
        let layout = Arc::clone(&self.layout);
        while self.live_count > 0 && out.actions < budget {
            self.run_pass(&layout, &mut out);
            self.settle(&mut out);
        }
        out
    }

    /// Closes every live session (server shutdown): endpoints that had not
    /// concluded are marked stalled, and the outcome is flagged as such.
    pub fn close_all(&mut self) -> Vec<BatchOutcome> {
        let cap = self.cap;
        let n = self.layout.roles.len();
        let mut outcomes = Vec::with_capacity(self.live_count);
        for s in 0..cap {
            if !self.live[s] {
                continue;
            }
            let undone = (0..n).any(|r| self.statuses[r * cap + s].is_none());
            outcomes.push(self.extract_outcome(s, undone));
        }
        outcomes
    }

    /// Pulls one live session out of the batch by token (straggler-demotion
    /// handle, used by the handoff tests). Returns `None` for unknown
    /// tokens.
    pub fn demote_now(&mut self, token: u64) -> Option<DemotedSession> {
        let s = (0..self.cap).find(|&s| self.live[s] && self.tokens[s] == token)?;
        Some(self.extract_demoted(s))
    }

    /// Demotes **every** live session out of the batch (shard drain /
    /// migration): each leaves with its full resumable state, exactly as a
    /// mid-flight straggler demotion would, and the batch ends empty.
    pub fn demote_all(&mut self) -> Vec<DemotedSession> {
        let live: Vec<usize> = (0..self.cap).filter(|&s| self.live[s]).collect();
        live.into_iter().map(|s| self.extract_demoted(s)).collect()
    }

    fn run_pass(&mut self, layout: &BatchLayout, out: &mut BatchQuantum) {
        let cap = self.cap;
        let n = layout.roles.len();
        for flag in &mut self.progress {
            *flag = false;
        }
        for r in 0..n {
            let mut scratch = mem::take(&mut self.scratch);
            scratch.clear();
            for s in 0..cap {
                if self.live[s] && !self.demote[s] && self.statuses[r * cap + s].is_none() {
                    scratch.push((self.pcs[r * cap + s], s as u32));
                }
            }
            scratch.sort_unstable();
            let mut i = 0;
            while i < scratch.len() {
                let pc = scratch[i].0;
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == pc {
                    j += 1;
                }
                out.cohorts += 1;
                out.cohort_sessions += j - i;
                let width = (j - i) as u64;
                out.cohort_widths[(64 - width.leading_zeros()).min(15) as usize] += 1;
                self.step_cohort(layout, r, pc, &scratch[i..j], out);
                i = j;
            }
            self.scratch = scratch;
        }
    }

    /// Steps one `(role, pc)` cohort: the instruction, template, peer index
    /// and wire label are resolved once, then the session loop touches only
    /// columns.
    fn step_cohort(
        &mut self,
        layout: &BatchLayout,
        r: usize,
        pc: u32,
        cohort: &[(u32, u32)],
        out: &mut BatchQuantum,
    ) {
        let cap = self.cap;
        let n = layout.roles.len();
        let program = &layout.programs[r];
        match &program.program().instrs()[pc as usize] {
            Instr::Finish => {
                for &(_, s) in cohort {
                    let s = s as usize;
                    self.statuses[r * cap + s] = Some(EndpointStatus::Finished);
                    self.progress[s] = true;
                }
            }
            Instr::Send {
                peer,
                label,
                payload,
                event,
                next,
            } => {
                let template = &program.templates()[*event as usize];
                let q = layout.peer_map[r][peer.index()] as usize;
                let wire = layout.label_wire[r][label.index()];
                let ch = (r * n + q) * cap;
                for &(_, s) in cohort {
                    self.send_one(layout, r, s as usize, template, payload, wire, ch, *next, out);
                }
            }
            Instr::Recv { peer, arms } => {
                let q = layout.peer_map[r][peer.index()] as usize;
                let ch = (q * n + r) * cap;
                for &(_, s) in cohort {
                    self.recv_one(layout, r, s as usize, q, arms, ch, out);
                }
            }
            _ => {
                for &(_, s) in cohort {
                    self.step_endpoint(layout, r, s as usize, out);
                }
            }
        }
    }

    /// The general path for internal instructions: mirrors one
    /// [`CompiledEndpointTask`](crate::cexec::CompiledEndpointTask) step —
    /// run the internal chain under fresh fuel counters, then perform at
    /// most one visible communication.
    fn step_endpoint(&mut self, layout: &BatchLayout, r: usize, s: usize, out: &mut BatchQuantum) {
        let cap = self.cap;
        let n = layout.roles.len();
        let idx = r * cap + s;
        let program = &layout.programs[r];
        let instrs = program.program().instrs();
        let mut admin = 0usize;
        let mut back_edges = 0usize;
        loop {
            match &instrs[self.pcs[idx] as usize] {
                Instr::Finish => {
                    self.statuses[idx] = Some(EndpointStatus::Finished);
                    self.progress[s] = true;
                    return;
                }
                Instr::Cond {
                    cond,
                    then_pc,
                    else_pc,
                } => {
                    let target = match cond
                        .eval_strided(&self.slots[r], cap, s)
                        .and_then(|v| v.as_bool())
                    {
                        Ok(true) => *then_pc,
                        Ok(false) => *else_pc,
                        Err(e) => {
                            self.fail(idx, s, RuntimeError::from(e));
                            return;
                        }
                    };
                    if let Err(e) = admin_tick(&mut admin, &mut back_edges, self.pcs[idx], target) {
                        self.fail(idx, s, e);
                        return;
                    }
                    self.pcs[idx] = target;
                }
                Instr::Send {
                    peer,
                    label,
                    payload,
                    event,
                    next,
                } => {
                    let template = &program.templates()[*event as usize];
                    let q = layout.peer_map[r][peer.index()] as usize;
                    let wire = layout.label_wire[r][label.index()];
                    let ch = (r * n + q) * cap;
                    self.send_one(layout, r, s, template, payload, wire, ch, *next, out);
                    return;
                }
                Instr::Recv { peer, arms } => {
                    let q = layout.peer_map[r][peer.index()] as usize;
                    let ch = (q * n + r) * cap;
                    self.recv_one(layout, r, s, q, arms, ch, out);
                    return;
                }
                // External actions are excluded at layout time; if one is
                // ever reached the session leaves for the slab executor,
                // which can run it.
                _ => {
                    self.demote[s] = true;
                    return;
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn send_one(
        &mut self,
        layout: &BatchLayout,
        r: usize,
        s: usize,
        template: &ActionTemplate,
        payload: &CExpr,
        wire: u32,
        ch: usize,
        next: u32,
        out: &mut BatchQuantum,
    ) {
        let cap = self.cap;
        let idx = r * cap + s;
        if let Some(limit) = self.options.max_steps {
            if self.steps[idx] as usize >= limit {
                self.statuses[idx] = Some(EndpointStatus::StepLimitReached);
                self.progress[s] = true;
                return;
            }
        }
        let value = match payload.eval_strided(&self.slots[r], cap, s) {
            Ok(value) => value,
            Err(e) => {
                self.fail(idx, s, RuntimeError::from(e));
                return;
            }
        };
        let sort = sort_of_value(&value);
        if template.static_sort.as_ref() != Some(&sort) {
            // The pre-interned action is stale for this payload: demote
            // *before* performing the action, so the slab executor
            // re-evaluates and performs it identically (with the monitor
            // falling back to its own lookups).
            self.demote[s] = true;
            return;
        }
        let interned = template
            .interned
            .as_ref()
            .expect("batch-eligible templates are interned");
        let accepted = layout.system.observe_interned(&mut self.cursors[s], interned);
        self.note(s, accepted, || {
            Action::send(
                layout.roles[r].clone(),
                template.peer.clone(),
                template.label.clone(),
                sort.clone(),
            )
        });
        if self.record {
            self.actions[idx].push(ValueAction::send(
                layout.roles[r].clone(),
                template.peer.clone(),
                template.label.clone(),
                sort,
                value.clone(),
            ));
        }
        // The arena seam: by this point the send is observed and recorded —
        // exactly like a transport-level fault, which strikes after the
        // sender has committed the action.
        match self
            .arena_faults
            .as_mut()
            .and_then(|f| f.decide(&template.peer, &template.label))
        {
            Some(FaultKind::Drop) => {}
            Some(FaultKind::Duplicate) => {
                self.queues[ch + s].push(wire, value.clone());
                self.queues[ch + s].push(wire, value);
            }
            Some(FaultKind::Truncate) => self.queues[ch + s].push(CORRUPT_WIRE, value),
            _ => self.queues[ch + s].push(wire, value),
        }
        self.steps[idx] += 1;
        self.pcs[idx] = next;
        self.progress[s] = true;
        out.actions += 1;
        out.sends += 1;
        if !accepted {
            // Violation: the action was completed first (observed, recorded
            // and delivered), then the session leaves for the slab.
            self.demote[s] = true;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn recv_one(
        &mut self,
        layout: &BatchLayout,
        r: usize,
        s: usize,
        q: usize,
        arms: &[Arm],
        ch: usize,
        out: &mut BatchQuantum,
    ) {
        let cap = self.cap;
        let idx = r * cap + s;
        if let Some(limit) = self.options.max_steps {
            if self.steps[idx] as usize >= limit {
                self.statuses[idx] = Some(EndpointStatus::StepLimitReached);
                self.progress[s] = true;
                return;
            }
        }
        let Some((wire, value)) = self.queues[ch + s].pop() else {
            // Blocked: no progress recorded, the pc stays put.
            return;
        };
        let Some(arm) = arms
            .iter()
            .find(|arm| layout.label_wire[r][arm.label.index()] == wire)
        else {
            // A wire id outside the label table is a corrupted frame (the
            // arena Truncate fault, or a bug), not a mis-labelled message.
            let err = match layout.labels.get(wire as usize) {
                Some(label) => RuntimeError::UnexpectedMessage {
                    from: layout.roles[q].clone(),
                    label: label.clone(),
                },
                None => RuntimeError::Codec {
                    reason: format!(
                        "corrupted frame in the batch arena from `{}` (wire id {wire})",
                        layout.roles[q]
                    ),
                },
            };
            self.fail(idx, s, err);
            return;
        };
        let template = &layout.programs[r].templates()[arm.event as usize];
        let sort = template
            .static_sort
            .as_ref()
            .expect("batch-eligible templates have static sorts");
        if !value.has_sort(sort) {
            self.fail(
                idx,
                s,
                RuntimeError::BadPayload {
                    from: layout.roles[q].clone(),
                    label: layout.labels[wire as usize].clone(),
                },
            );
            return;
        }
        let interned = template
            .interned
            .as_ref()
            .expect("batch-eligible templates are interned");
        let accepted = layout.system.observe_interned(&mut self.cursors[s], interned);
        self.note(s, accepted, || {
            Action::recv(
                layout.roles[r].clone(),
                template.peer.clone(),
                template.label.clone(),
                sort.clone(),
            )
        });
        if self.record {
            self.actions[idx].push(ValueAction::recv(
                layout.roles[r].clone(),
                template.peer.clone(),
                template.label.clone(),
                sort.clone(),
                value.clone(),
            ));
        }
        self.slots[r][arm.slot as usize * cap + s] = value;
        self.steps[idx] += 1;
        self.pcs[idx] = arm.next;
        self.progress[s] = true;
        out.actions += 1;
        if !accepted {
            self.demote[s] = true;
        }
    }

    /// Mirrors [`CompiledMonitor`]'s observation bookkeeping on the
    /// session's columns.
    fn note(&mut self, s: usize, accepted: bool, action: impl FnOnce() -> Action) {
        let position = self.observed[s];
        self.observed[s] += 1;
        if accepted {
            self.accepted[s] += 1;
            if self.record {
                self.traces[s].push(action());
            }
        } else {
            self.violations[s].push(MonitorViolation {
                action: action(),
                position,
                trace_len: self.accepted[s],
            });
        }
    }

    fn fail(&mut self, idx: usize, s: usize, err: RuntimeError) {
        self.statuses[idx] = Some(EndpointStatus::Failed {
            error: err.to_string(),
        });
        self.progress[s] = true;
    }

    /// Post-pass bookkeeping: flush concluded sessions, pull out demoted
    /// and permanently stuck ones.
    fn settle(&mut self, out: &mut BatchQuantum) {
        let cap = self.cap;
        let n = self.layout.roles.len();
        for s in 0..cap {
            if !self.live[s] {
                continue;
            }
            if self.demote[s] {
                let demoted = self.extract_demoted(s);
                out.demoted.push(demoted);
                continue;
            }
            if (0..n).all(|r| self.statuses[r * cap + s].is_some()) {
                let outcome = self.extract_outcome(s, false);
                out.finished.push(outcome);
                continue;
            }
            if !self.progress[s] {
                // A full pass without progress on a self-contained session:
                // nothing can unblock it — hand it to the slab executor,
                // which concludes it as stalled.
                let demoted = self.extract_demoted(s);
                out.demoted.push(demoted);
            }
        }
    }

    fn extract_demoted(&mut self, s: usize) -> DemotedSession {
        let layout = Arc::clone(&self.layout);
        let cap = self.cap;
        let n = layout.roles.len();
        let mut endpoints = Vec::with_capacity(n);
        for r in 0..n {
            let idx = r * cap + s;
            let slot_count = layout.slot_counts[r];
            let mut slots = Vec::with_capacity(slot_count);
            for k in 0..slot_count {
                slots.push(mem::replace(&mut self.slots[r][k * cap + s], Value::Unit));
            }
            endpoints.push(DemotedEndpoint {
                role: layout.roles[r].clone(),
                program: Arc::clone(&layout.programs[r]),
                pc: self.pcs[idx],
                slots,
                actions: mem::take(&mut self.actions[idx]),
                steps: self.steps[idx] as usize,
                status: self.statuses[idx].take(),
            });
        }
        let monitor = CompiledMonitor::resume(
            Arc::clone(&layout.system),
            mem::replace(&mut self.cursors[s], layout.system.monitor_cursor()),
            mem::replace(&mut self.traces[s], Trace::empty()),
            self.accepted[s],
            mem::take(&mut self.violations[s]),
            self.observed[s],
            self.record,
        );
        let mut frames = Vec::new();
        for from in 0..n {
            for to in 0..n {
                let queue = &mut self.queues[(from * n + to) * cap + s];
                while let Some((wire, value)) = queue.pop() {
                    // A corrupted in-flight frame keeps a deliberately
                    // unknown label, so the slab receiver rejects it just
                    // as the batch receiver would have.
                    let label = layout
                        .labels
                        .get(wire as usize)
                        .cloned()
                        .unwrap_or_else(|| Label::new("\u{fffd}corrupt"));
                    frames.push((from as u32, to as u32, label, value));
                }
            }
        }
        let token = self.tokens[s];
        let options = self.options.clone();
        self.release(s);
        DemotedSession {
            token,
            options,
            endpoints,
            monitor,
            frames,
        }
    }

    fn extract_outcome(&mut self, s: usize, stalled: bool) -> BatchOutcome {
        let layout = Arc::clone(&self.layout);
        let cap = self.cap;
        let n = layout.roles.len();
        let mut endpoints = Vec::with_capacity(n);
        for r in 0..n {
            let idx = r * cap + s;
            endpoints.push(EndpointReport {
                role: layout.roles[r].clone(),
                actions: mem::take(&mut self.actions[idx]),
                status: self.statuses[idx].take().unwrap_or(EndpointStatus::Stalled),
            });
        }
        let compliant = self.violations[s].is_empty();
        let complete = layout.system.is_terminated(&self.cursors[s]);
        let outcome = BatchOutcome {
            token: self.tokens[s],
            endpoints,
            global_trace: mem::replace(&mut self.traces[s], Trace::empty()),
            compliant,
            complete,
            violations: mem::take(&mut self.violations[s]),
            stalled,
        };
        self.release(s);
        outcome
    }

    /// Returns a slot to the free list with its value cells scrubbed, so
    /// [`SessionBatch::admit`] can assume clean columns.
    fn release(&mut self, s: usize) {
        let cap = self.cap;
        let n = self.layout.roles.len();
        for r in 0..n {
            let idx = r * cap + s;
            self.actions[idx].clear();
            self.statuses[idx] = None;
            for k in 0..self.layout.slot_counts[r] {
                self.slots[r][k * cap + s] = Value::Unit;
            }
        }
        for ch in 0..n * n {
            self.queues[ch * cap + s].clear();
        }
        self.live[s] = false;
        self.live_count -= 1;
        self.free.push(s as u32);
    }
}

/// Same fuel semantics as the per-session compiled executor (see
/// `cexec::CompiledEndpointTask::admin_tick`): a backward jump resets the
/// straight-line counter and spends one bounded back-edge.
fn admin_tick(
    admin: &mut usize,
    back_edges: &mut usize,
    from_pc: u32,
    to_pc: u32,
) -> Result<(), RuntimeError> {
    if to_pc <= from_pc {
        *admin = 0;
        *back_edges += 1;
        if *back_edges > ADMIN_FUEL {
            return Err(RuntimeError::Process(zooid_proc::ProcError::Stuck {
                context: "recursion does not reach a communication".to_owned(),
            }));
        }
    }
    *admin += 1;
    if *admin >= ADMIN_FUEL {
        return Err(RuntimeError::Process(zooid_proc::ProcError::Stuck {
            context: "internal actions did not terminate within the fuel bound".to_owned(),
        }));
    }
    Ok(())
}
