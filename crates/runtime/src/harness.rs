//! The session harness: run every certified endpoint of a protocol together,
//! over an in-memory network, with live compliance monitoring.
//!
//! This plays the role of the paper's `execute_extracted_process` (§4.5.1)
//! for whole sessions: where the paper's runtime launches one OCaml process
//! per participant and connects them over TCP, the harness launches one
//! thread per participant and connects them over the in-memory network —
//! which is what the examples, the integration tests and the benchmarks use.
//! Individual endpoints can still be run by hand over TCP with
//! [`crate::tcp::TcpTransport`] and [`crate::exec::execute`].

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use zooid_dsl::{CertifiedProcess, Protocol};
use zooid_mpst::{Role, Trace};
use zooid_proc::{erase, Externals};

use crate::error::{Result, RuntimeError};
use crate::exec::{execute_with_observer, EndpointReport, ExecOptions};
use crate::monitor::{MonitorViolation, TraceMonitor};
use crate::transport::InMemoryNetwork;

/// A session harness: a protocol plus one certified endpoint implementation
/// per participant.
#[derive(Debug)]
pub struct SessionHarness {
    protocol: Protocol,
    endpoints: BTreeMap<Role, (CertifiedProcess, Externals)>,
    options: ExecOptions,
    recv_timeout: Duration,
}

impl SessionHarness {
    /// Creates a harness for the given protocol.
    pub fn new(protocol: Protocol) -> Self {
        SessionHarness {
            protocol,
            endpoints: BTreeMap::new(),
            options: ExecOptions::default(),
            recv_timeout: Duration::from_secs(5),
        }
    }

    /// Registers a certified endpoint together with its external actions.
    ///
    /// # Errors
    ///
    /// Fails if the process was certified for a different protocol or if the
    /// role already has an implementation.
    pub fn add_endpoint(
        &mut self,
        process: CertifiedProcess,
        externals: Externals,
    ) -> Result<&mut Self> {
        if process.protocol_name() != self.protocol.name() {
            return Err(RuntimeError::Process(zooid_proc::ProcError::Stuck {
                context: format!(
                    "process certified for protocol `{}` added to a session of `{}`",
                    process.protocol_name(),
                    self.protocol.name()
                ),
            }));
        }
        let role = process.role().clone();
        if self.endpoints.contains_key(&role) {
            return Err(RuntimeError::Process(zooid_proc::ProcError::Stuck {
                context: format!("role `{role}` already has an implementation"),
            }));
        }
        self.endpoints.insert(role, (process, externals));
        Ok(self)
    }

    /// Limits every endpoint to at most `max_steps` visible communications
    /// (useful for protocols that loop forever).
    pub fn with_max_steps(&mut self, max_steps: usize) -> &mut Self {
        self.options = ExecOptions::with_max_steps(max_steps);
        self
    }

    /// Sets how long endpoints wait for a message before giving up
    /// (default: 5 seconds).
    pub fn with_recv_timeout(&mut self, timeout: Duration) -> &mut Self {
        self.recv_timeout = timeout;
        self
    }

    /// Runs the session: one thread per endpoint, an in-memory channel per
    /// ordered pair of roles, and a live compliance monitor observing every
    /// communication.
    ///
    /// # Errors
    ///
    /// Fails if some participant of the protocol has no registered
    /// implementation, or if an endpoint thread panics.
    pub fn run(&self) -> Result<SessionReport> {
        let roles = self.protocol.roles();
        for role in &roles {
            if !self.endpoints.contains_key(role) {
                return Err(RuntimeError::UnknownPeer { role: role.clone() });
            }
        }

        let mut network = InMemoryNetwork::new(roles.iter().cloned());
        let monitor = Arc::new(Mutex::new(TraceMonitor::new(self.protocol.global())?));

        let mut handles = Vec::new();
        for (role, (process, externals)) in &self.endpoints {
            let mut transport = network
                .take_endpoint(role)
                .ok_or_else(|| RuntimeError::UnknownPeer { role: role.clone() })?;
            transport.set_timeout(self.recv_timeout);
            let proc = process.proc().clone();
            let role = role.clone();
            let externals = externals.clone();
            let options = self.options.clone();
            let monitor = Arc::clone(&monitor);
            handles.push(std::thread::spawn(move || {
                execute_with_observer(&proc, &role, &mut transport, &externals, &options, |va| {
                    // Sends are observed by the sender, receives by the
                    // receiver; the lock serialises them into one global
                    // interleaving that the monitor checks.
                    monitor.lock().observe(&erase(va));
                })
            }));
        }

        let mut endpoint_reports = BTreeMap::new();
        for handle in handles {
            let report: EndpointReport = handle.join().map_err(|_| {
                RuntimeError::EndpointPanicked {
                    role: Role::new("<unknown>"),
                }
            })?;
            endpoint_reports.insert(report.role.clone(), report);
        }

        let monitor = monitor.lock();
        Ok(SessionReport {
            global_trace: monitor.trace().clone(),
            compliant: monitor.is_compliant(),
            complete: monitor.is_complete(),
            violations: monitor.violations().to_vec(),
            endpoints: endpoint_reports,
        })
    }
}

/// The outcome of a session run.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Per-endpoint reports (trace with values, final status).
    pub endpoints: BTreeMap<Role, EndpointReport>,
    /// The global interleaving observed by the monitor (erased actions).
    pub global_trace: Trace,
    /// Whether every observed action was allowed by the protocol.
    pub compliant: bool,
    /// Whether the protocol ran to completion.
    pub complete: bool,
    /// Every observed violation, with its position in the observation
    /// stream.
    pub violations: Vec<MonitorViolation>,
}

impl SessionReport {
    /// Returns `true` if every endpoint finished and the observed trace is
    /// compliant and complete.
    pub fn all_finished_and_compliant(&self) -> bool {
        self.compliant
            && self.complete
            && self.endpoints.values().all(|r| r.status.is_finished())
    }

    /// Total number of messages exchanged (sends observed by the monitor).
    pub fn messages_exchanged(&self) -> usize {
        self.global_trace.iter().filter(|a| a.is_send()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zooid_dsl::builder::{self, BranchAlt};
    use zooid_mpst::global::GlobalType;
    use zooid_mpst::Sort;
    use zooid_proc::Expr;

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    fn ring_protocol() -> Protocol {
        let g = GlobalType::msg1(
            r("Alice"),
            r("Bob"),
            "l",
            Sort::Nat,
            GlobalType::msg1(
                r("Bob"),
                r("Carol"),
                "l",
                Sort::Nat,
                GlobalType::msg1(r("Carol"), r("Alice"), "l", Sort::Nat, GlobalType::End),
            ),
        );
        Protocol::new("ring", g).unwrap()
    }

    fn forwarder(from: &str, to: &str) -> zooid_dsl::WtProc {
        builder::branch(
            r(from),
            vec![BranchAlt::new(
                "l",
                Sort::Nat,
                "x",
                builder::send(r(to), "l", Sort::Nat, Expr::add(Expr::var("x"), Expr::lit(1u64)), builder::finish())
                    .unwrap(),
            )],
        )
        .unwrap()
    }

    #[test]
    fn the_ring_session_runs_compliantly_end_to_end() {
        let protocol = ring_protocol();
        let alice = builder::send(
            r("Bob"),
            "l",
            Sort::Nat,
            Expr::lit(1u64),
            builder::recv1(r("Carol"), "l", Sort::Nat, "y", builder::finish()).unwrap(),
        )
        .unwrap();
        let bob = forwarder("Alice", "Carol");
        let carol = forwarder("Bob", "Alice");

        let ext = Externals::new();
        let mut harness = SessionHarness::new(protocol.clone());
        harness
            .add_endpoint(protocol.implement(&r("Alice"), alice, &ext).unwrap(), ext.clone())
            .unwrap();
        harness
            .add_endpoint(protocol.implement(&r("Bob"), bob, &ext).unwrap(), ext.clone())
            .unwrap();
        harness
            .add_endpoint(protocol.implement(&r("Carol"), carol, &ext).unwrap(), ext.clone())
            .unwrap();

        let report = harness.run().unwrap();
        assert!(report.all_finished_and_compliant(), "{:?}", report.violations);
        assert_eq!(report.messages_exchanged(), 3);
        assert_eq!(report.global_trace.len(), 6);
        // Alice eventually receives 1 + 1 + 1 = 3.
        let alice_report = &report.endpoints[&r("Alice")];
        assert_eq!(
            alice_report.actions.last().unwrap().value,
            zooid_proc::Value::Nat(3)
        );
    }

    #[test]
    fn missing_endpoints_are_reported() {
        let protocol = ring_protocol();
        let harness = SessionHarness::new(protocol);
        assert!(matches!(
            harness.run(),
            Err(RuntimeError::UnknownPeer { .. })
        ));
    }

    #[test]
    fn duplicate_roles_and_foreign_processes_are_rejected() {
        let protocol = ring_protocol();
        let other = Protocol::new(
            "other",
            GlobalType::msg1(r("Alice"), r("Bob"), "l", Sort::Nat, GlobalType::End),
        )
        .unwrap();
        let ext = Externals::new();
        let alice = builder::send(
            r("Bob"),
            "l",
            Sort::Nat,
            Expr::lit(1u64),
            builder::recv1(r("Carol"), "l", Sort::Nat, "y", builder::finish()).unwrap(),
        )
        .unwrap();
        let certified = protocol.implement(&r("Alice"), alice, &ext).unwrap();

        let mut harness = SessionHarness::new(protocol);
        harness.add_endpoint(certified.clone(), ext.clone()).unwrap();
        assert!(harness.add_endpoint(certified.clone(), ext.clone()).is_err());

        let mut foreign_harness = SessionHarness::new(other);
        assert!(foreign_harness.add_endpoint(certified, ext).is_err());
    }
}
