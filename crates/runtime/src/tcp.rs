//! TCP transport with `Server`/`Client` connection specifications (§4.5).
//!
//! The paper's runtime asks each participant for a `conn_desc list`: for
//! every peer, either wait for a connection (`Server addr`) or initiate one
//! (`Client addr`). [`TcpTransport::connect`] implements the same handshake;
//! frames are the [`codec`](crate::codec) encoding preceded by a big-endian
//! `u32` length.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use zooid_mpst::{Label, Role};
use zooid_proc::Value;

use crate::codec::{decode_message, encode_message, Message};
use crate::error::{Result, RuntimeError};
use crate::transport::Transport;

/// How to establish the connection towards one peer (the paper's
/// `connection_spec`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionSpec {
    /// Bind the address and wait for the peer to connect.
    Server(SocketAddr),
    /// Connect to the peer's address (retrying until it is up or the
    /// timeout elapses).
    Client(SocketAddr),
}

/// The connection description for one peer (the paper's `conn_desc`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnDesc {
    /// The peer this entry connects to.
    pub role_to: Role,
    /// How to reach it.
    pub spec: ConnectionSpec,
}

impl ConnDesc {
    /// Creates a server-side entry: wait for `role_to` on `addr`.
    pub fn server(role_to: Role, addr: SocketAddr) -> Self {
        ConnDesc {
            role_to,
            spec: ConnectionSpec::Server(addr),
        }
    }

    /// Creates a client-side entry: connect to `role_to` at `addr`.
    pub fn client(role_to: Role, addr: SocketAddr) -> Self {
        ConnDesc {
            role_to,
            spec: ConnectionSpec::Client(addr),
        }
    }
}

/// A TCP transport: one framed stream per peer.
#[derive(Debug)]
pub struct TcpTransport {
    me: Role,
    streams: BTreeMap<Role, TcpStream>,
}

impl TcpTransport {
    /// Establishes connections to every peer according to the given
    /// descriptions, exactly like the paper's `execute_extracted_process`
    /// does before running the endpoint.
    ///
    /// `Client` entries retry for up to `connect_timeout`, since the peer's
    /// `Server` socket may not be listening yet.
    ///
    /// # Errors
    ///
    /// Fails if a bind, accept or connect fails (after retries).
    pub fn connect(me: Role, descs: &[ConnDesc], connect_timeout: Duration) -> Result<Self> {
        let mut streams = BTreeMap::new();
        for desc in descs {
            let stream = match desc.spec {
                ConnectionSpec::Server(addr) => {
                    let listener = TcpListener::bind(addr)?;
                    let (stream, _) = listener.accept()?;
                    stream
                }
                ConnectionSpec::Client(addr) => {
                    let deadline = Instant::now() + connect_timeout;
                    loop {
                        match TcpStream::connect(addr) {
                            Ok(stream) => break stream,
                            Err(e) if Instant::now() >= deadline => return Err(e.into()),
                            Err(_) => std::thread::sleep(Duration::from_millis(10)),
                        }
                    }
                }
            };
            stream.set_nodelay(true)?;
            streams.insert(desc.role_to.clone(), stream);
        }
        Ok(TcpTransport { me, streams })
    }

    /// Builds a transport from already-established streams (useful for tests
    /// and for embedding into other connection managers).
    pub fn from_streams(me: Role, streams: BTreeMap<Role, TcpStream>) -> Self {
        TcpTransport { me, streams }
    }

    fn stream_mut(&mut self, role: &Role) -> Result<&mut TcpStream> {
        self.streams
            .get_mut(role)
            .ok_or_else(|| RuntimeError::UnknownPeer { role: role.clone() })
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, to: &Role, label: &Label, value: &Value) -> Result<()> {
        let frame = encode_message(&Message::new(label.clone(), value.clone()));
        let stream = self.stream_mut(to)?;
        let len =
            u32::try_from(frame.len()).map_err(|_| RuntimeError::Codec {
                reason: "frame larger than 4 GiB".to_owned(),
            })?;
        stream.write_all(&len.to_be_bytes())?;
        stream.write_all(&frame)?;
        stream.flush()?;
        Ok(())
    }

    fn recv(&mut self, from: &Role) -> Result<(Label, Value)> {
        let stream = self.stream_mut(from)?;
        let mut len_buf = [0u8; 4];
        stream.read_exact(&mut len_buf)?;
        let len = u32::from_be_bytes(len_buf) as usize;
        let mut frame = vec![0u8; len];
        stream.read_exact(&mut frame)?;
        let message = decode_message(&frame)?;
        Ok((message.label, message.value))
    }

    fn local_role(&self) -> &Role {
        &self.me
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{IpAddr, Ipv4Addr};

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    /// Builds a connected pair of TCP transports over the loopback interface.
    fn loopback_pair() -> (TcpTransport, TcpTransport) {
        let listener = TcpListener::bind((IpAddr::V4(Ipv4Addr::LOCALHOST), 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let client_side = std::thread::spawn(move || TcpStream::connect(addr).unwrap());
        let (server_stream, _) = listener.accept().unwrap();
        let client_stream = client_side.join().unwrap();

        let mut p_streams = BTreeMap::new();
        p_streams.insert(r("q"), server_stream);
        let mut q_streams = BTreeMap::new();
        q_streams.insert(r("p"), client_stream);
        (
            TcpTransport::from_streams(r("p"), p_streams),
            TcpTransport::from_streams(r("q"), q_streams),
        )
    }

    #[test]
    fn framed_messages_round_trip_over_tcp() {
        let (mut p, mut q) = loopback_pair();
        p.send(&r("q"), &Label::new("l"), &Value::pair(Value::Nat(1), Value::Str("hi".into())))
            .unwrap();
        p.send(&r("q"), &Label::new("m"), &Value::Bool(true)).unwrap();
        assert_eq!(
            q.recv(&r("p")).unwrap(),
            (
                Label::new("l"),
                Value::pair(Value::Nat(1), Value::Str("hi".into()))
            )
        );
        assert_eq!(q.recv(&r("p")).unwrap(), (Label::new("m"), Value::Bool(true)));
        assert_eq!(p.local_role(), &r("p"));
        assert_eq!(q.local_role(), &r("q"));
    }

    #[test]
    fn unknown_peers_are_rejected() {
        let (mut p, _q) = loopback_pair();
        assert!(matches!(
            p.send(&r("nobody"), &Label::new("l"), &Value::Unit),
            Err(RuntimeError::UnknownPeer { .. })
        ));
    }

    #[test]
    fn connect_establishes_a_session_between_two_threads() {
        // Reserve a port, then release it for the server side to bind.
        let probe = TcpListener::bind((IpAddr::V4(Ipv4Addr::LOCALHOST), 0)).unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);

        let server = std::thread::spawn(move || {
            let descs = [ConnDesc::server(r("q"), addr)];
            let mut transport =
                TcpTransport::connect(r("p"), &descs, Duration::from_secs(5)).unwrap();
            transport
                .send(&r("q"), &Label::new("hello"), &Value::Nat(99))
                .unwrap();
            transport.recv(&r("q")).unwrap()
        });
        let client = std::thread::spawn(move || {
            let descs = [ConnDesc::client(r("p"), addr)];
            let mut transport =
                TcpTransport::connect(r("q"), &descs, Duration::from_secs(5)).unwrap();
            let received = transport.recv(&r("p")).unwrap();
            transport
                .send(&r("p"), &Label::new("ack"), &Value::Unit)
                .unwrap();
            received
        });
        let server_got = server.join().unwrap();
        let client_got = client.join().unwrap();
        assert_eq!(client_got, (Label::new("hello"), Value::Nat(99)));
        assert_eq!(server_got, (Label::new("ack"), Value::Unit));
    }

    #[test]
    fn conn_desc_constructors() {
        let addr: SocketAddr = "127.0.0.1:7777".parse().unwrap();
        assert_eq!(
            ConnDesc::server(r("q"), addr).spec,
            ConnectionSpec::Server(addr)
        );
        assert_eq!(
            ConnDesc::client(r("q"), addr).spec,
            ConnectionSpec::Client(addr)
        );
    }
}
