//! TCP transport with `Server`/`Client` connection specifications (§4.5).
//!
//! The paper's runtime asks each participant for a `conn_desc list`: for
//! every peer, either wait for a connection (`Server addr`) or initiate one
//! (`Client addr`). [`TcpTransport::connect`] implements the same handshake
//! — and honours `connect_timeout` on **both** arms, so a never-arriving
//! peer is an error, not a hung `accept`.
//!
//! Frames are the [`codec`](crate::codec) encoding preceded by a big-endian
//! `u32` length. The receive path is hardened against hostile framing:
//!
//! * the length header is checked against a configurable
//!   [`max_frame_bytes`](TcpTransport::set_max_frame_bytes) cap *before*
//!   any body byte is buffered — a wire-controlled 4 GiB length yields
//!   [`RuntimeError::FrameTooLarge`], never a 4 GiB allocation;
//! * a peer that disconnects mid-frame yields a structured
//!   [`RuntimeError::Codec`] (complete silence on an empty buffer is
//!   [`RuntimeError::Disconnected`]);
//! * blocking [`Transport::recv`] is a deadline loop (default 30 s,
//!   configurable via [`TcpTransport::set_recv_timeout`]) that returns
//!   [`RuntimeError::Timeout`] instead of parking forever;
//! * a send that fails after a *partial* write poisons the peer connection
//!   — a half-written frame cannot be resynchronised, so every later
//!   `send`/`recv` on that peer returns a structured [`RuntimeError::Codec`]
//!   instead of emitting bytes the peer would parse as garbage mid-frame.
//!
//! All streams run in non-blocking mode from the moment the transport owns
//! them, which is what makes [`Transport::try_recv`] genuinely
//! non-blocking here: it pumps whatever bytes the socket has into a
//! [`FrameReader`](crate::wire::FrameReader) (partial frames persist across
//! calls) and returns `Ok(None)` on an empty socket — so the poll-based
//! executor's `WouldBlock` contract holds over real sockets exactly as it
//! does in memory.

use std::collections::BTreeMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use zooid_mpst::{Label, Role};
use zooid_proc::Value;

use crate::codec::{decode_message, encode_message, Message};
use crate::error::{Result, RuntimeError};
use crate::transport::Transport;
use crate::wire::{FillStatus, FrameReader, DEFAULT_MAX_FRAME_BYTES};

/// Default deadline for blocking receives (and non-blocking sends that
/// cannot drain into the socket buffer).
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(30);

/// Sleep slice while a blocking operation waits for socket readiness.
const WAIT_SLICE: Duration = Duration::from_micros(200);

/// How to establish the connection towards one peer (the paper's
/// `connection_spec`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionSpec {
    /// Bind the address and wait for the peer to connect.
    Server(SocketAddr),
    /// Connect to the peer's address (retrying until it is up or the
    /// timeout elapses).
    Client(SocketAddr),
}

/// The connection description for one peer (the paper's `conn_desc`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnDesc {
    /// The peer this entry connects to.
    pub role_to: Role,
    /// How to reach it.
    pub spec: ConnectionSpec,
}

impl ConnDesc {
    /// Creates a server-side entry: wait for `role_to` on `addr`.
    pub fn server(role_to: Role, addr: SocketAddr) -> Self {
        ConnDesc {
            role_to,
            spec: ConnectionSpec::Server(addr),
        }
    }

    /// Creates a client-side entry: connect to `role_to` at `addr`.
    pub fn client(role_to: Role, addr: SocketAddr) -> Self {
        ConnDesc {
            role_to,
            spec: ConnectionSpec::Client(addr),
        }
    }
}

/// One peer: a non-blocking stream plus the incremental frame parser that
/// buffers partial frames across `try_recv` calls.
#[derive(Debug)]
struct PeerConn {
    stream: TcpStream,
    reader: FrameReader,
    /// Set once a send died with part of a frame already on the wire: the
    /// peer's framing can never be resynchronised (mirroring
    /// [`FrameReader`]'s poisoning on the receive side), so every later
    /// operation on this peer re-reports a structured error instead of
    /// emitting bytes the peer will parse as garbage mid-frame.
    poisoned: bool,
}

/// A TCP transport: one framed stream per peer.
#[derive(Debug)]
pub struct TcpTransport {
    me: Role,
    streams: BTreeMap<Role, PeerConn>,
    max_frame_bytes: usize,
    recv_timeout: Duration,
}

impl TcpTransport {
    /// Establishes connections to every peer according to the given
    /// descriptions, exactly like the paper's `execute_extracted_process`
    /// does before running the endpoint.
    ///
    /// Both arms honour `connect_timeout`: `Client` entries retry until the
    /// peer's socket is up, and `Server` entries wait for the peer to
    /// arrive on a non-blocking listener — either way a missing peer is a
    /// [`RuntimeError::Timeout`], never an indefinite hang.
    ///
    /// # Errors
    ///
    /// Fails if a bind, accept or connect fails (after retries) or the
    /// deadline elapses first.
    pub fn connect(me: Role, descs: &[ConnDesc], connect_timeout: Duration) -> Result<Self> {
        let mut streams = BTreeMap::new();
        for desc in descs {
            let deadline = Instant::now() + connect_timeout;
            let stream = match desc.spec {
                ConnectionSpec::Server(addr) => {
                    let listener = TcpListener::bind(addr)?;
                    listener.set_nonblocking(true)?;
                    loop {
                        match listener.accept() {
                            Ok((stream, _)) => break stream,
                            Err(e)
                                if e.kind() == std::io::ErrorKind::WouldBlock
                                    || e.kind() == std::io::ErrorKind::Interrupted =>
                            {
                                if Instant::now() >= deadline {
                                    return Err(RuntimeError::Timeout {
                                        from: desc.role_to.clone(),
                                    });
                                }
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            Err(e) => return Err(e.into()),
                        }
                    }
                }
                ConnectionSpec::Client(addr) => loop {
                    match TcpStream::connect(addr) {
                        Ok(stream) => break stream,
                        Err(e) if Instant::now() >= deadline => return Err(e.into()),
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                },
            };
            stream.set_nodelay(true)?;
            stream.set_nonblocking(true)?;
            streams.insert(
                desc.role_to.clone(),
                PeerConn {
                    stream,
                    reader: FrameReader::new(DEFAULT_MAX_FRAME_BYTES),
                    poisoned: false,
                },
            );
        }
        Ok(TcpTransport {
            me,
            streams,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            recv_timeout: DEFAULT_RECV_TIMEOUT,
        })
    }

    /// Builds a transport from already-established streams (useful for tests
    /// and for embedding into other connection managers).
    ///
    /// The streams are switched to non-blocking mode — all framing here runs
    /// over readiness-polled sockets.
    pub fn from_streams(me: Role, streams: BTreeMap<Role, TcpStream>) -> Self {
        let streams = streams
            .into_iter()
            .map(|(role, stream)| {
                // Best-effort: a dead socket will surface on first use.
                let _ = stream.set_nonblocking(true);
                (
                    role,
                    PeerConn {
                        stream,
                        reader: FrameReader::new(DEFAULT_MAX_FRAME_BYTES),
                        poisoned: false,
                    },
                )
            })
            .collect();
        TcpTransport {
            me,
            streams,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            recv_timeout: DEFAULT_RECV_TIMEOUT,
        }
    }

    /// Caps the size of a single frame in both directions (default 16 MiB).
    ///
    /// Receives reject a larger announced length from the 4-byte header
    /// alone; sends refuse to emit a frame the peer would reject.
    pub fn set_max_frame_bytes(&mut self, max: usize) {
        self.max_frame_bytes = max;
        for conn in self.streams.values_mut() {
            conn.reader.set_max_frame_bytes(max);
        }
    }

    /// Sets the deadline for blocking receives (default 30 s).
    pub fn set_recv_timeout(&mut self, timeout: Duration) {
        self.recv_timeout = timeout;
    }

    fn conn_mut(&mut self, role: &Role) -> Result<&mut PeerConn> {
        self.streams
            .get_mut(role)
            .ok_or_else(|| RuntimeError::UnknownPeer { role: role.clone() })
    }

    /// Writes the whole buffer to a non-blocking stream, sleeping through
    /// `WouldBlock` until `deadline`.
    ///
    /// On failure the error carries how many bytes already reached the
    /// socket, so the caller can tell a clean failure (nothing sent) from
    /// one that left a partial frame on the wire.
    fn write_all_deadline(
        stream: &mut TcpStream,
        buf: &[u8],
        deadline: Instant,
        to: &Role,
    ) -> std::result::Result<(), (usize, RuntimeError)> {
        let mut written = 0usize;
        while written < buf.len() {
            match stream.write(&buf[written..]) {
                Ok(0) => {
                    return Err((written, RuntimeError::Disconnected { role: to.clone() }));
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if Instant::now() >= deadline {
                        return Err((written, RuntimeError::Timeout { from: to.clone() }));
                    }
                    std::thread::sleep(WAIT_SLICE);
                }
                Err(e) => return Err((written, e.into())),
            }
        }
        Ok(())
    }

    /// The structured error every operation on a poisoned peer returns.
    fn poisoned_error(role: &Role) -> RuntimeError {
        RuntimeError::Codec {
            reason: format!("connection to `{role}` unusable after an aborted mid-frame send"),
        }
    }

    /// Pops a complete frame from a peer's reader, decoded. `Ok(None)` =
    /// need more bytes.
    fn pop_frame(conn: &mut PeerConn) -> Result<Option<(Label, Value)>> {
        match conn.reader.next_frame()? {
            Some(frame) => {
                let message = decode_message(&frame)?;
                Ok(Some((message.label, message.value)))
            }
            None => Ok(None),
        }
    }

    /// Maps an EOF observed by `fill` to the right structured error: a
    /// partial frame in the buffer means the peer vanished mid-frame.
    fn eof_error(conn: &PeerConn, from: &Role) -> RuntimeError {
        if conn.reader.pending_bytes() > 0 {
            RuntimeError::Codec {
                reason: format!(
                    "peer `{from}` disconnected mid-frame ({} bytes buffered)",
                    conn.reader.pending_bytes()
                ),
            }
        } else {
            RuntimeError::Disconnected { role: from.clone() }
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, to: &Role, label: &Label, value: &Value) -> Result<()> {
        let max = self.max_frame_bytes;
        let deadline = Instant::now() + self.recv_timeout;
        let frame = encode_message(&Message::new(label.clone(), value.clone()));
        if frame.len() > max {
            return Err(RuntimeError::FrameTooLarge {
                len: frame.len(),
                max,
            });
        }
        // The cap does not imply the length fits the prefix: the public
        // `set_max_frame_bytes` accepts caps above `u32::MAX`, and a
        // truncated length prefix would corrupt the whole stream.
        let len = u32::try_from(frame.len()).map_err(|_| RuntimeError::FrameTooLarge {
            len: frame.len(),
            max: u32::MAX as usize,
        })?;
        let conn = self.conn_mut(to)?;
        if conn.poisoned {
            return Err(Self::poisoned_error(to));
        }
        let mut wire = Vec::with_capacity(4 + frame.len());
        wire.extend_from_slice(&len.to_be_bytes());
        wire.extend_from_slice(&frame);
        if let Err((written, e)) = Self::write_all_deadline(&mut conn.stream, &wire, deadline, to) {
            // Part of the frame is on the wire: the peer's framing can no
            // longer be trusted, so refuse every later use of this peer.
            if written > 0 {
                conn.poisoned = true;
            }
            return Err(e);
        }
        Ok(())
    }

    fn recv(&mut self, from: &Role) -> Result<(Label, Value)> {
        let deadline = Instant::now() + self.recv_timeout;
        let conn = self.conn_mut(from)?;
        if conn.poisoned {
            return Err(Self::poisoned_error(from));
        }
        loop {
            if let Some(message) = Self::pop_frame(conn)? {
                return Ok(message);
            }
            match conn.reader.fill(&mut conn.stream)? {
                FillStatus::Progress => {}
                FillStatus::Eof => {
                    // The close may have arrived right behind complete
                    // frames: drain those before reporting the shutdown.
                    if let Some(message) = Self::pop_frame(conn)? {
                        return Ok(message);
                    }
                    return Err(Self::eof_error(conn, from));
                }
                FillStatus::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(RuntimeError::Timeout { from: from.clone() });
                    }
                    std::thread::sleep(WAIT_SLICE);
                }
            }
        }
    }

    fn try_recv(&mut self, from: &Role) -> Result<Option<(Label, Value)>> {
        let conn = self.conn_mut(from)?;
        if conn.poisoned {
            return Err(Self::poisoned_error(from));
        }
        loop {
            if let Some(message) = Self::pop_frame(conn)? {
                return Ok(Some(message));
            }
            match conn.reader.fill(&mut conn.stream)? {
                // Bytes arrived: loop to see whether they complete a frame.
                FillStatus::Progress => {}
                FillStatus::Eof => {
                    if let Some(message) = Self::pop_frame(conn)? {
                        return Ok(Some(message));
                    }
                    return Err(Self::eof_error(conn, from));
                }
                FillStatus::WouldBlock => return Ok(None),
            }
        }
    }

    fn local_role(&self) -> &Role {
        &self.me
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{IpAddr, Ipv4Addr};

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    /// Builds a connected pair of TCP transports over the loopback interface.
    fn loopback_pair() -> (TcpTransport, TcpTransport) {
        let listener = TcpListener::bind((IpAddr::V4(Ipv4Addr::LOCALHOST), 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let client_side = std::thread::spawn(move || TcpStream::connect(addr).unwrap());
        let (server_stream, _) = listener.accept().unwrap();
        let client_stream = client_side.join().unwrap();

        let mut p_streams = BTreeMap::new();
        p_streams.insert(r("q"), server_stream);
        let mut q_streams = BTreeMap::new();
        q_streams.insert(r("p"), client_stream);
        (
            TcpTransport::from_streams(r("p"), p_streams),
            TcpTransport::from_streams(r("q"), q_streams),
        )
    }

    #[test]
    fn framed_messages_round_trip_over_tcp() {
        let (mut p, mut q) = loopback_pair();
        p.send(&r("q"), &Label::new("l"), &Value::pair(Value::Nat(1), Value::Str("hi".into())))
            .unwrap();
        p.send(&r("q"), &Label::new("m"), &Value::Bool(true)).unwrap();
        assert_eq!(
            q.recv(&r("p")).unwrap(),
            (
                Label::new("l"),
                Value::pair(Value::Nat(1), Value::Str("hi".into()))
            )
        );
        assert_eq!(q.recv(&r("p")).unwrap(), (Label::new("m"), Value::Bool(true)));
        assert_eq!(p.local_role(), &r("p"));
        assert_eq!(q.local_role(), &r("q"));
    }

    #[test]
    fn unknown_peers_are_rejected() {
        let (mut p, _q) = loopback_pair();
        assert!(matches!(
            p.send(&r("nobody"), &Label::new("l"), &Value::Unit),
            Err(RuntimeError::UnknownPeer { .. })
        ));
    }

    #[test]
    fn try_recv_is_nonblocking_and_buffers_partial_frames() {
        let (mut p, mut q) = loopback_pair();

        // Empty socket: returns immediately with None, no parking.
        let start = Instant::now();
        assert!(q.try_recv(&r("p")).unwrap().is_none());
        assert!(start.elapsed() < Duration::from_secs(1));

        // Write a frame in two raw halves with a pause between them: the
        // first try_recv sees only the partial frame and must buffer it.
        let msg = Message::new("l", Value::Str("partial framing".into()));
        let frame = encode_message(&msg);
        let mut wire = (frame.len() as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(&frame);
        let (head, tail) = wire.split_at(wire.len() / 2);

        let stream = &mut p.streams.get_mut(&r("q")).unwrap().stream;
        TcpTransport::write_all_deadline(
            stream,
            head,
            Instant::now() + Duration::from_secs(5),
            &r("q"),
        )
        .unwrap();

        // Wait until the half-frame has actually arrived, then poll: the
        // bytes are consumed into the reader but no frame is ready yet.
        std::thread::sleep(Duration::from_millis(50));
        assert!(q.try_recv(&r("p")).unwrap().is_none());
        assert!(q.streams[&r("p")].reader.pending_bytes() > 0);

        let stream = &mut p.streams.get_mut(&r("q")).unwrap().stream;
        TcpTransport::write_all_deadline(
            stream,
            tail,
            Instant::now() + Duration::from_secs(5),
            &r("q"),
        )
        .unwrap();

        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Some((label, value)) = q.try_recv(&r("p")).unwrap() {
                assert_eq!(label, Label::new("l"));
                assert_eq!(value, Value::Str("partial framing".into()));
                break;
            }
            assert!(Instant::now() < deadline, "frame never completed");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn recv_times_out_instead_of_hanging() {
        let (_p, mut q) = loopback_pair();
        q.set_recv_timeout(Duration::from_millis(50));
        let start = Instant::now();
        assert!(matches!(
            q.recv(&r("p")),
            Err(RuntimeError::Timeout { .. })
        ));
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn mid_frame_send_timeout_poisons_the_peer() {
        let (mut p, _q) = loopback_pair();
        p.set_recv_timeout(Duration::from_millis(50));
        // A frame far larger than the loopback socket buffers, sent to a
        // peer that never reads: the deadline fires with part of the frame
        // already on the wire.
        let big = Value::Str("x".repeat(8 * 1024 * 1024));
        let result = p.send(&r("q"), &Label::new("l"), &big);
        assert!(matches!(result, Err(RuntimeError::Timeout { .. })), "{result:?}");
        // The peer connection is poisoned: no operation may touch a stream
        // carrying half a frame.
        assert!(matches!(
            p.send(&r("q"), &Label::new("m"), &Value::Unit),
            Err(RuntimeError::Codec { .. })
        ));
        assert!(matches!(p.recv(&r("q")), Err(RuntimeError::Codec { .. })));
        assert!(matches!(p.try_recv(&r("q")), Err(RuntimeError::Codec { .. })));
    }

    #[test]
    fn oversized_sends_are_refused_locally() {
        let (mut p, _q) = loopback_pair();
        p.set_max_frame_bytes(16);
        assert!(matches!(
            p.send(&r("q"), &Label::new("l"), &Value::Str("x".repeat(64))),
            Err(RuntimeError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn connect_establishes_a_session_between_two_threads() {
        // The server thread binds port 0 itself and reports the real address
        // over a channel — no reserve-drop-rebind race with parallel tests.
        let (addr_tx, addr_rx) = std::sync::mpsc::channel();

        let server = std::thread::spawn(move || {
            let listener = TcpListener::bind((IpAddr::V4(Ipv4Addr::LOCALHOST), 0)).unwrap();
            listener.set_nonblocking(true).unwrap();
            addr_tx.send(listener.local_addr().unwrap()).unwrap();
            // Accept inline (the listener is already bound, so the client
            // cannot miss it), then hand the stream to the transport.
            let deadline = Instant::now() + Duration::from_secs(5);
            let stream = loop {
                match listener.accept() {
                    Ok((stream, _)) => break stream,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        assert!(Instant::now() < deadline, "client never connected");
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => panic!("accept failed: {e}"),
                }
            };
            let mut streams = BTreeMap::new();
            streams.insert(r("q"), stream);
            let mut transport = TcpTransport::from_streams(r("p"), streams);
            transport
                .send(&r("q"), &Label::new("hello"), &Value::Nat(99))
                .unwrap();
            transport.recv(&r("q")).unwrap()
        });
        let addr = addr_rx.recv().unwrap();
        let client = std::thread::spawn(move || {
            let descs = [ConnDesc::client(r("p"), addr)];
            let mut transport =
                TcpTransport::connect(r("q"), &descs, Duration::from_secs(5)).unwrap();
            let received = transport.recv(&r("p")).unwrap();
            transport
                .send(&r("p"), &Label::new("ack"), &Value::Unit)
                .unwrap();
            received
        });
        let server_got = server.join().unwrap();
        let client_got = client.join().unwrap();
        assert_eq!(client_got, (Label::new("hello"), Value::Nat(99)));
        assert_eq!(server_got, (Label::new("ack"), Value::Unit));
    }

    #[test]
    fn server_connect_times_out_when_no_peer_arrives() {
        let addr: SocketAddr = (IpAddr::V4(Ipv4Addr::LOCALHOST), 0).into();
        // Bind port 0 via the spec; nobody will ever connect.
        let descs = [ConnDesc::server(r("q"), addr)];
        let start = Instant::now();
        let result = TcpTransport::connect(r("p"), &descs, Duration::from_millis(100));
        assert!(
            matches!(result, Err(RuntimeError::Timeout { ref from }) if *from == r("q")),
            "expected a timeout, got {result:?}"
        );
        assert!(start.elapsed() < Duration::from_secs(5), "accept hung");
    }

    #[test]
    fn conn_desc_constructors() {
        let addr: SocketAddr = "127.0.0.1:7777".parse().unwrap();
        assert_eq!(
            ConnDesc::server(r("q"), addr).spec,
            ConnectionSpec::Server(addr)
        );
        assert_eq!(
            ConnDesc::client(r("q"), addr).spec,
            ConnectionSpec::Client(addr)
        );
    }
}
