//! Execution substrate for certified Zooid processes (§4.4–§4.5 of the
//! paper: extraction, the process monad and the OCaml/Lwt runtime).
//!
//! The paper extracts Coq processes to OCaml values in a `ProcessMonad`, then
//! runs them with an Lwt/TCP runtime that supplies the transport and the
//! serialisation. This crate plays both parts:
//!
//! * [`transport`] — the [`Transport`] trait is the counterpart of the
//!   process monad's communication operations (`send`, `recv`); the
//!   [`transport::InMemoryNetwork`] gives every ordered pair of roles its own
//!   FIFO channel (the queue environments of §3.3) carrying `(Label, Value)`
//!   frames directly — no codec round-trip in process — with peers
//!   addressable by **dense index** for the compiled fast path; [`tcp`]
//!   provides the §4.5 TCP transport with `Server`/`Client` connection
//!   specs, hardened against hostile framing (frame-size caps, connect and
//!   receive deadlines, a genuinely non-blocking `try_recv` over
//!   permanently non-blocking sockets);
//! * [`codec`] — a length-delimited binary encoding of messages, standing in
//!   for OCaml's `Marshal` module (the wire format of the TCP path, kept
//!   honest by round-trip property tests);
//! * [`wire`] — framing for real sockets: every frame is a big-endian `u32`
//!   length followed by that many payload bytes, the length validated
//!   against a configurable `max_frame_bytes` cap (default 16 MiB) **before
//!   any body byte is buffered**, so a hostile length prefix can never
//!   force a large allocation. [`wire::FrameReader`] parses incrementally
//!   (partial frames persist across non-blocking reads) and
//!   [`wire::MuxFrame`] defines the session-multiplexing control frames
//!   (`Open`/`Accepted`/`Rejected`/`Done`) the networked serving plane
//!   speaks — many sessions per connection, client-chosen ids echoed on
//!   every response, structured load-shed rejections
//!   ([`wire::RejectCode`]);
//! * [`poll`] — a minimal readiness-poll loop over non-blocking `std::net`
//!   sockets (hermetic: no tokio/mio, no unsafe FFI): `peek`-based probes
//!   classify each socket as readable/empty/closed and [`poll::Poller`]
//!   sweeps a socket set with adaptive idle backoff, so an event loop can
//!   multiplex many connections on one thread and hand readable sockets to
//!   the shard scheduler instead of parking a thread per connection;
//! * [`exec`] — the tree-walking interpreter that runs a certified process
//!   against a transport (the counterpart of `extract_proc` composed with
//!   the monad instance), recording the endpoint's trace. The interpreter is
//!   a resumable state machine ([`exec::EndpointTask`]) whose `step()`
//!   yields [`exec::StepOutcome::WouldBlock`] on an empty channel instead of
//!   parking, so schedulers (the `zooid-server` session server) can
//!   multiplex thousands of endpoints on a bounded worker pool; the blocking
//!   [`execute`] entry point is a loop around it;
//! * [`cexec`] — the **compiled** endpoint executor: a certified process is
//!   lowered once ([`zooid_proc::CompiledProc`]) into a flat instruction
//!   table with interned ids, resolved loop back-edges and dense value
//!   slots, and [`cexec::CompiledEndpointTask`] steps it as a program
//!   counter plus a slot array — no per-step tree cloning, substitution or
//!   re-normalisation. Per-site [`cexec::ActionTemplate`]s carry the actions
//!   pre-interned against the protocol's [`zooid_cfsm::CompiledSystem`], so
//!   live monitoring does not hash strings either. The tree-walking
//!   executor is kept as the behavioural oracle (`tests/compiled_exec.rs`
//!   drives both in lockstep);
//! * [`cbatch`] — the **columnar batch** executor for homogeneous session
//!   populations: the invariant skeleton (the compiled per-role programs
//!   and routing tables, [`cbatch::BatchLayout`]) is shared once, while the
//!   per-session variables — program counters, value slots, monitor
//!   cursors — live in struct-of-arrays columns ([`cbatch::SessionBatch`]),
//!   stepped in `(role, pc)` cohorts over contiguous memory with sends
//!   between co-batched sessions as index writes into a shared frame arena.
//!   A session is batch-eligible when its programs call no externals and
//!   every communication site carries a statically known sort with a
//!   pre-interned action; stragglers (stall, violation, runtime sort
//!   mismatch) demote mid-flight to the per-session executor without losing
//!   their traces or monitor state (`tests/batch_exec.rs` drives batch,
//!   slab and tree executors in lockstep);
//! * [`monitor`] — online protocol-compliance monitors (the "dynamic
//!   monitoring" application of type-level transition systems mentioned in
//!   §1): [`TraceMonitor`] replays observed actions against the global
//!   type's LTS, [`monitor::CompiledMonitor`] checks them against the dense
//!   interned transition tables of a [`zooid_cfsm::CompiledSystem`] in O(1)
//!   per action; both record structured [`monitor::MonitorViolation`]s and
//!   agree on accept/reject (checked differentially);
//! * [`harness`] — a multi-threaded session harness that wires every
//!   certified endpoint of a protocol to an in-memory network, runs them to
//!   completion and reports the traces together with the monitor's verdict;
//! * [`faults`] — deterministic fault injection for the hostile-world
//!   suite: a seed-driven [`faults::FaultPlan`] of site-addressable,
//!   budget-capped transport faults (delay, drop, duplicate, reorder,
//!   truncate, mid-session disconnect) executed by the
//!   [`faults::FaultyTransport`] wrapper over any [`Transport`], and a
//!   [`faults::FaultReader`] that corrupts the byte stream below the codec
//!   (bit flips, split deliveries, hostile length prefixes) at the
//!   [`wire::FrameReader`] seam. Every injection is logged, so the same
//!   seed reproduces the same schedule on every backend. The columnar batch
//!   plane has its own injection point — [`cbatch::SessionBatch`] takes a
//!   `FaultPlan` for its in-arena sends, which never cross a `Transport` —
//!   so the hostile-world suite covers both data planes;
//! * [`checkpoint`] — durable sessions: a live session (per-role pc, value
//!   slots, monitor cursor, in-flight frames in channel order) serialized
//!   through the wire codec as a [`checkpoint::SessionCheckpoint`] and
//!   restored under re-validation — every index is checked against the
//!   compiled programs and transition tables before anything resumes, so a
//!   corrupted or hostile checkpoint is refused
//!   ([`RuntimeError::Recovery`]), never admitted;
//! * [`wal`] — an append-only write-ahead trace log whose records are
//!   columnarized before framing (skeleton = per-site template ids,
//!   variables = payload values — the batch plane's structural-entropy
//!   trick buying audit-log density), group-committed per quantum with
//!   torn-tail detection on reopen, and recovered by **replaying** each
//!   session's suffix through a fresh [`monitor::CompiledMonitor`]: a
//!   restored trace is re-certified, not just restored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cbatch;
pub mod cexec;
pub mod checkpoint;
pub mod codec;
pub mod error;
pub mod exec;
pub mod faults;
pub mod harness;
pub mod monitor;
pub mod poll;
pub mod tcp;
pub mod transport;
pub mod wal;
pub mod wire;

pub use cbatch::{
    BatchLayout, BatchOutcome, BatchQuantum, DemotedEndpoint, DemotedSession, SessionBatch,
};
pub use checkpoint::SessionCheckpoint;
pub use cexec::{CompiledEndpointTask, EndpointProgram};
pub use codec::Message;
pub use error::{Result, RuntimeError};
pub use exec::{execute, EndpointReport, EndpointStatus, EndpointTask, ExecOptions, StepOutcome};
pub use faults::{
    ArenaFaults, FaultKind, FaultPlan, FaultReader, FaultSite, FaultSpec, FaultyTransport,
    InjectedFault, WireFault,
};
pub use harness::{SessionHarness, SessionReport};
pub use monitor::{CompiledMonitor, MonitorViolation, TraceMonitor};
pub use transport::{InMemoryNetwork, Transport};
pub use wal::{WalIndexer, WalRecord, WalScan, WalWriter};
pub use wire::{FrameReader, MuxFrame, RejectCode, DEFAULT_MAX_FRAME_BYTES};
