//! The endpoint executor: runs a process against a [`Transport`].
//!
//! This is the counterpart of the paper's extraction (`extract_proc`,
//! Appendix B) composed with a `ProcessMonad` instance: the process is
//! interpreted action by action, communication is delegated to the
//! transport, internal actions (`if`, `read`, `write`, `interact`) are
//! executed in place, and the endpoint's own trace is recorded so that it can
//! be checked against the protocol afterwards (or live, by the
//! [`monitor`](crate::monitor)).

use zooid_mpst::{Role, Sort, Trace};
use zooid_proc::semantics::admin_normalize;
use zooid_proc::{erase, Externals, Proc, Value, ValueAction};

use crate::error::{Result, RuntimeError};
use crate::transport::Transport;

/// Options controlling one endpoint execution.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Stop (with [`EndpointStatus::StepLimitReached`]) after this many
    /// visible communications. `None` runs until the process finishes or
    /// fails — which never happens for protocols that loop forever, so
    /// benchmarks and examples of recursive protocols set a limit.
    pub max_steps: Option<usize>,
}

impl ExecOptions {
    /// Options with a step limit.
    pub fn with_max_steps(max_steps: usize) -> Self {
        ExecOptions {
            max_steps: Some(max_steps),
        }
    }
}

/// How an endpoint execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EndpointStatus {
    /// The process reached `finish`.
    Finished,
    /// The configured step limit was reached before the process finished.
    StepLimitReached,
    /// The execution failed (transport error, unexpected message, runtime
    /// error in an expression or external action, ...).
    Failed {
        /// Human-readable description of the failure.
        error: String,
    },
}

impl EndpointStatus {
    /// Returns `true` if the endpoint finished its protocol normally.
    pub fn is_finished(&self) -> bool {
        matches!(self, EndpointStatus::Finished)
    }
}

/// What happened during one endpoint execution.
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointReport {
    /// The role the endpoint played.
    pub role: Role,
    /// Every visible communication the endpoint performed, with values.
    pub actions: Vec<ValueAction>,
    /// How the execution ended.
    pub status: EndpointStatus,
}

impl EndpointReport {
    /// The endpoint's trace with payload values erased (the trace that the
    /// metatheory — Theorem 4.7 — talks about).
    pub fn erased_trace(&self) -> Trace {
        self.actions.iter().map(erase).collect()
    }

    /// Number of visible communications performed.
    pub fn steps(&self) -> usize {
        self.actions.len()
    }
}

/// Runs `proc` as `role` over `transport`, with the given external actions.
///
/// Failures are reported in the returned [`EndpointReport::status`] rather
/// than as an `Err`, so that the partial trace leading up to a failure is
/// preserved (the session harness and the failure-injection tests rely on
/// this).
pub fn execute(
    proc: &Proc,
    role: &Role,
    transport: &mut dyn Transport,
    externals: &Externals,
    options: &ExecOptions,
) -> EndpointReport {
    execute_with_observer(proc, role, transport, externals, options, |_| {})
}

/// Like [`execute`], additionally calling `observer` with every visible
/// action as soon as it has happened (used to drive the live
/// [`TraceMonitor`](crate::monitor::TraceMonitor)).
pub fn execute_with_observer(
    proc: &Proc,
    role: &Role,
    transport: &mut dyn Transport,
    externals: &Externals,
    options: &ExecOptions,
    mut observer: impl FnMut(&ValueAction),
) -> EndpointReport {
    let mut actions = Vec::new();
    let status = run_loop(
        proc,
        role,
        transport,
        externals,
        options,
        &mut actions,
        &mut observer,
    )
    .unwrap_or_else(|err| EndpointStatus::Failed {
        error: err.to_string(),
    });
    EndpointReport {
        role: role.clone(),
        actions,
        status,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_loop(
    proc: &Proc,
    role: &Role,
    transport: &mut dyn Transport,
    externals: &Externals,
    options: &ExecOptions,
    actions: &mut Vec<ValueAction>,
    observer: &mut impl FnMut(&ValueAction),
) -> Result<EndpointStatus> {
    let mut current = proc.clone();
    let mut steps = 0usize;
    loop {
        current = admin_normalize(&current, externals)?;
        while matches!(current, Proc::Loop(_)) {
            current = admin_normalize(&current.unfold_once(), externals)?;
        }
        match current {
            Proc::Finish => return Ok(EndpointStatus::Finished),
            Proc::Jump(i) => {
                return Err(RuntimeError::Process(zooid_proc::ProcError::UnboundJump {
                    index: i,
                }))
            }
            Proc::Send {
                ref to,
                ref label,
                ref payload,
                ref cont,
            } => {
                if let Some(limit) = options.max_steps {
                    if steps >= limit {
                        return Ok(EndpointStatus::StepLimitReached);
                    }
                }
                let value = payload.eval_closed()?;
                let action = ValueAction::send(
                    role.clone(),
                    to.clone(),
                    label.clone(),
                    sort_of_value(&value),
                    value.clone(),
                );
                // Observe the send *before* handing the message to the
                // transport: once the frame is in flight the receiver may
                // report its receive at any moment, and the monitor must see
                // the send first to recognise the interleaving as a valid
                // asynchronous trace.
                observer(&action);
                transport.send(to, label, &value)?;
                actions.push(action);
                steps += 1;
                current = (**cont).clone();
            }
            Proc::Recv { ref from, ref alts } => {
                if let Some(limit) = options.max_steps {
                    if steps >= limit {
                        return Ok(EndpointStatus::StepLimitReached);
                    }
                }
                let (label, value) = transport.recv(from)?;
                let Some(alt) = alts.iter().find(|a| a.label == label) else {
                    return Err(RuntimeError::UnexpectedMessage {
                        from: from.clone(),
                        label,
                    });
                };
                if !value.has_sort(&alt.sort) {
                    return Err(RuntimeError::BadPayload {
                        from: from.clone(),
                        label,
                    });
                }
                let action = ValueAction::recv(
                    role.clone(),
                    from.clone(),
                    label,
                    alt.sort.clone(),
                    value.clone(),
                );
                observer(&action);
                actions.push(action);
                steps += 1;
                current = alt.cont.subst_value(&alt.var, &value);
            }
            Proc::Loop(_)
            | Proc::Cond { .. }
            | Proc::Read { .. }
            | Proc::Write { .. }
            | Proc::Interact { .. } => {
                unreachable!("admin_normalize removed internal actions and loops")
            }
        }
    }
}

/// The canonical sort of a concrete value (used to label the recorded
/// actions of sends, whose payloads are already evaluated).
fn sort_of_value(value: &Value) -> Sort {
    match value {
        Value::Unit => Sort::Unit,
        Value::Nat(_) => Sort::Nat,
        Value::Int(_) => Sort::Int,
        Value::Bool(_) => Sort::Bool,
        Value::Str(_) => Sort::Str,
        Value::Inl(v) | Value::Inr(v) => Sort::sum(sort_of_value(v), Sort::Unit),
        Value::Pair(a, b) => Sort::prod(sort_of_value(a), sort_of_value(b)),
        Value::Seq(vs) => Sort::seq(vs.first().map(sort_of_value).unwrap_or(Sort::Unit)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InMemoryNetwork;
    use std::time::Duration;
    use zooid_proc::{Expr, RecvAlt};

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    #[test]
    fn a_single_exchange_runs_to_completion() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut tp = net.take_endpoint(&r("p")).unwrap();
        let mut tq = net.take_endpoint(&r("q")).unwrap();

        let sender = Proc::send(r("q"), "l", Expr::lit(7u64), Proc::Finish);
        let receiver = Proc::recv1(r("p"), "l", Sort::Nat, "x", Proc::Finish);

        let handle = std::thread::spawn(move || {
            execute(&receiver, &r("q"), &mut tq, &Externals::new(), &ExecOptions::default())
        });
        let sender_report = execute(
            &sender,
            &r("p"),
            &mut tp,
            &Externals::new(),
            &ExecOptions::default(),
        );
        let receiver_report = handle.join().unwrap();

        assert!(sender_report.status.is_finished());
        assert!(receiver_report.status.is_finished());
        assert_eq!(sender_report.steps(), 1);
        assert_eq!(receiver_report.steps(), 1);
        assert_eq!(receiver_report.actions[0].value, Value::Nat(7));
        assert_eq!(
            sender_report.erased_trace().actions()[0],
            receiver_report.erased_trace().actions()[0].dual()
        );
    }

    #[test]
    fn received_values_flow_into_later_sends() {
        // q echoes x + 1 back to p.
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut tp = net.take_endpoint(&r("p")).unwrap();
        let mut tq = net.take_endpoint(&r("q")).unwrap();

        let p = Proc::send(
            r("q"),
            "req",
            Expr::lit(41u64),
            Proc::recv1(r("q"), "resp", Sort::Nat, "y", Proc::Finish),
        );
        let q = Proc::recv1(
            r("p"),
            "req",
            Sort::Nat,
            "x",
            Proc::send(
                r("p"),
                "resp",
                Expr::add(Expr::var("x"), Expr::lit(1u64)),
                Proc::Finish,
            ),
        );
        let handle = std::thread::spawn(move || {
            execute(&q, &r("q"), &mut tq, &Externals::new(), &ExecOptions::default())
        });
        let p_report = execute(&p, &r("p"), &mut tp, &Externals::new(), &ExecOptions::default());
        handle.join().unwrap();
        assert_eq!(p_report.actions[1].value, Value::Nat(42));
    }

    #[test]
    fn step_limit_stops_recursive_processes() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut tp = net.take_endpoint(&r("p")).unwrap();
        // p sends forever; we stop it after 10 messages.
        let p = Proc::loop_(Proc::send(r("q"), "tick", Expr::lit(0u64), Proc::Jump(0)));
        let report = execute(
            &p,
            &r("p"),
            &mut tp,
            &Externals::new(),
            &ExecOptions::with_max_steps(10),
        );
        assert_eq!(report.status, EndpointStatus::StepLimitReached);
        assert_eq!(report.steps(), 10);
    }

    #[test]
    fn unexpected_labels_fail_the_execution_with_a_partial_trace() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut tp = net.take_endpoint(&r("p")).unwrap();
        let mut tq = net.take_endpoint(&r("q")).unwrap();
        // p sends a label q does not expect.
        tp.send(&r("q"), &zooid_mpst::Label::new("bogus"), &Value::Unit)
            .unwrap();
        let q = Proc::recv1(r("p"), "expected", Sort::Unit, "x", Proc::Finish);
        let report = execute(&q, &r("q"), &mut tq, &Externals::new(), &ExecOptions::default());
        match report.status {
            EndpointStatus::Failed { error } => assert!(error.contains("unexpected message")),
            other => panic!("expected failure, got {other:?}"),
        }
        assert!(report.actions.is_empty());
    }

    #[test]
    fn bad_payload_sorts_are_detected() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut tp = net.take_endpoint(&r("p")).unwrap();
        let mut tq = net.take_endpoint(&r("q")).unwrap();
        tp.send(&r("q"), &zooid_mpst::Label::new("l"), &Value::Bool(true))
            .unwrap();
        let q = Proc::recv1(r("p"), "l", Sort::Nat, "x", Proc::Finish);
        let report = execute(&q, &r("q"), &mut tq, &Externals::new(), &ExecOptions::default());
        match report.status {
            EndpointStatus::Failed { error } => assert!(error.contains("wrong sort")),
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn waiting_on_a_silent_peer_times_out() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut tq = net.take_endpoint(&r("q")).unwrap();
        tq.set_timeout(Duration::from_millis(20));
        let q = Proc::recv1(r("p"), "l", Sort::Nat, "x", Proc::Finish);
        let report = execute(&q, &r("q"), &mut tq, &Externals::new(), &ExecOptions::default());
        match report.status {
            EndpointStatus::Failed { error } => assert!(error.contains("timed out")),
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn external_actions_run_during_execution() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut tp = net.take_endpoint(&r("p")).unwrap();
        let mut tq = net.take_endpoint(&r("q")).unwrap();

        let mut ext = Externals::new();
        ext.register_interact("double", Sort::Nat, Sort::Nat, |v| {
            Value::Nat(v.as_nat().unwrap() * 2)
        });

        // p reads nothing; it interacts to compute 21 * 2 and sends it.
        let p = Proc::interact(
            "double",
            Expr::lit(21u64),
            "y",
            Proc::send(r("q"), "l", Expr::var("y"), Proc::Finish),
        );
        let q = Proc::recv(
            r("p"),
            vec![RecvAlt::new("l", Sort::Nat, "x", Proc::Finish)],
        );
        let handle = std::thread::spawn(move || {
            execute(&q, &r("q"), &mut tq, &Externals::new(), &ExecOptions::default())
        });
        let p_report = execute(&p, &r("p"), &mut tp, &ext, &ExecOptions::default());
        let q_report = handle.join().unwrap();
        assert!(p_report.status.is_finished());
        assert_eq!(q_report.actions[0].value, Value::Nat(42));
    }
}
