//! The endpoint executor: runs a process against a [`Transport`].
//!
//! This is the counterpart of the paper's extraction (`extract_proc`,
//! Appendix B) composed with a `ProcessMonad` instance: the process is
//! interpreted action by action, communication is delegated to the
//! transport, internal actions (`if`, `read`, `write`, `interact`) are
//! executed in place, and the endpoint's own trace is recorded so that it can
//! be checked against the protocol afterwards (or live, by the
//! [`monitor`](crate::monitor)).
//!
//! The interpreter is a resumable state machine, [`EndpointTask`]: each
//! [`EndpointTask::step`] performs at most one visible communication and
//! yields [`StepOutcome::WouldBlock`] when a receive finds its channel empty,
//! so a scheduler (the `zooid-server` session server) can multiplex many
//! endpoints on one worker thread. The blocking [`execute`] entry point —
//! what the session harness and the examples use — is a loop around
//! [`EndpointTask::step_blocking`] and behaves exactly like the historical
//! thread-per-endpoint executor, timeouts included.

use zooid_mpst::{Role, Sort, Trace};
use zooid_proc::semantics::admin_normalize_owned;
use zooid_proc::{erase, Externals, Proc, Value, ValueAction};

use crate::error::{Result, RuntimeError};
use crate::transport::Transport;

/// Options controlling one endpoint execution.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Stop (with [`EndpointStatus::StepLimitReached`]) after this many
    /// visible communications. `None` runs until the process finishes or
    /// fails — which never happens for protocols that loop forever, so
    /// benchmarks and examples of recursive protocols set a limit.
    pub max_steps: Option<usize>,
    /// Whether to record every visible communication in the endpoint's
    /// [`EndpointReport::actions`] (default: `true`). Fire-and-forget server
    /// sessions that only need the monitor verdict turn this off: the
    /// per-action `Vec` push (and the payload clone it keeps alive) is pure
    /// overhead for them. Observers (and therefore monitors) still see every
    /// action either way.
    pub record_actions: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            max_steps: None,
            record_actions: true,
        }
    }
}

impl ExecOptions {
    /// Options with a step limit.
    pub fn with_max_steps(max_steps: usize) -> Self {
        ExecOptions {
            max_steps: Some(max_steps),
            ..ExecOptions::default()
        }
    }

    /// Same options with trace recording switched on or off.
    #[must_use]
    pub fn record_actions(mut self, record: bool) -> Self {
        self.record_actions = record;
        self
    }
}

/// How an endpoint execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EndpointStatus {
    /// The process reached `finish`.
    Finished,
    /// The configured step limit was reached before the process finished.
    StepLimitReached,
    /// The scheduler gave up on the endpoint: it was still waiting for a
    /// message, but no peer of its session could make progress either (only
    /// produced by schedulers driving [`EndpointTask::step`]; the blocking
    /// [`execute`] loop reports a timeout failure instead).
    Stalled,
    /// The execution failed (transport error, unexpected message, runtime
    /// error in an expression or external action, ...).
    Failed {
        /// Human-readable description of the failure.
        error: String,
    },
}

impl EndpointStatus {
    /// Returns `true` if the endpoint finished its protocol normally.
    pub fn is_finished(&self) -> bool {
        matches!(self, EndpointStatus::Finished)
    }
}

/// What happened during one endpoint execution.
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointReport {
    /// The role the endpoint played.
    pub role: Role,
    /// Every visible communication the endpoint performed, with values.
    pub actions: Vec<ValueAction>,
    /// How the execution ended.
    pub status: EndpointStatus,
}

impl EndpointReport {
    /// The endpoint's trace with payload values erased (the trace that the
    /// metatheory — Theorem 4.7 — talks about).
    pub fn erased_trace(&self) -> Trace {
        self.actions.iter().map(erase).collect()
    }

    /// Number of visible communications performed.
    pub fn steps(&self) -> usize {
        self.actions.len()
    }
}

/// Runs `proc` as `role` over `transport`, with the given external actions.
///
/// Failures are reported in the returned [`EndpointReport::status`] rather
/// than as an `Err`, so that the partial trace leading up to a failure is
/// preserved (the session harness and the failure-injection tests rely on
/// this).
pub fn execute(
    proc: &Proc,
    role: &Role,
    transport: &mut dyn Transport,
    externals: &Externals,
    options: &ExecOptions,
) -> EndpointReport {
    execute_with_observer(proc, role, transport, externals, options, |_| {})
}

/// Like [`execute`], additionally calling `observer` with every visible
/// action as soon as it has happened (used to drive the live
/// [`TraceMonitor`](crate::monitor::TraceMonitor)).
pub fn execute_with_observer(
    proc: &Proc,
    role: &Role,
    transport: &mut dyn Transport,
    externals: &Externals,
    options: &ExecOptions,
    mut observer: impl FnMut(&ValueAction),
) -> EndpointReport {
    let mut task = EndpointTask::new(proc.clone(), role.clone(), externals.clone(), options.clone());
    while !matches!(
        task.step_blocking(transport, &mut observer),
        StepOutcome::Done(_)
    ) {}
    task.into_report()
}

/// What one call to [`EndpointTask::step`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// One visible communication was performed.
    Progress,
    /// The process is waiting for a message that has not arrived yet; the
    /// task's state is unchanged and the step can be retried once the peer
    /// has sent (never returned by [`EndpointTask::step_blocking`]).
    WouldBlock {
        /// The peer the process is waiting for.
        from: Role,
    },
    /// The execution is over; further steps return the same status.
    Done(EndpointStatus),
}

/// A resumable endpoint execution: the poll-based state machine behind
/// [`execute`].
///
/// Where the blocking loop parks its whole OS thread inside
/// [`Transport::recv`], an `EndpointTask` advances one visible communication
/// per [`EndpointTask::step`] call and yields [`StepOutcome::WouldBlock`]
/// when the next action is a receive and the channel is empty (via
/// [`Transport::try_recv`]). A scheduler can therefore multiplex thousands
/// of endpoints on a bounded worker pool — which is exactly what
/// `zooid-server` does — while [`execute`] remains a trivial loop around
/// [`EndpointTask::step_blocking`].
#[derive(Debug)]
pub struct EndpointTask {
    role: Role,
    externals: Externals,
    options: ExecOptions,
    current: Proc,
    /// Whether `current` is already administratively normalised (no leading
    /// internal actions or loops). Normalisation is re-done lazily after
    /// every visible step, and skipped when a `WouldBlock` retry comes back.
    normalized: bool,
    actions: Vec<ValueAction>,
    steps: usize,
    status: Option<EndpointStatus>,
}

impl EndpointTask {
    /// Creates a task that will run `proc` as `role`.
    pub fn new(proc: Proc, role: Role, externals: Externals, options: ExecOptions) -> Self {
        EndpointTask {
            role,
            externals,
            options,
            current: proc,
            normalized: false,
            actions: Vec::new(),
            steps: 0,
            status: None,
        }
    }

    /// The role the task plays.
    pub fn role(&self) -> &Role {
        &self.role
    }

    /// The visible communications performed so far.
    pub fn actions(&self) -> &[ValueAction] {
        &self.actions
    }

    /// Returns `true` once the execution is over (finished, failed or
    /// stopped at the step limit).
    pub fn is_done(&self) -> bool {
        self.status.is_some()
    }

    /// Advances the task by at most one visible communication, polling the
    /// transport with [`Transport::try_recv`] so an empty channel yields
    /// [`StepOutcome::WouldBlock`] instead of parking the thread.
    pub fn step(
        &mut self,
        transport: &mut dyn Transport,
        observer: &mut dyn FnMut(&ValueAction),
    ) -> StepOutcome {
        self.step_inner(transport, Some(observer), false)
    }

    /// Advances the task by one visible communication, blocking inside
    /// [`Transport::recv`] when the next action is a receive (so a timeout
    /// becomes a failure, exactly like the historical executor).
    pub fn step_blocking(
        &mut self,
        transport: &mut dyn Transport,
        observer: &mut dyn FnMut(&ValueAction),
    ) -> StepOutcome {
        self.step_inner(transport, Some(observer), true)
    }

    /// [`EndpointTask::step`] without an observer: when trace recording is
    /// off too ([`ExecOptions::record_actions`]), the [`ValueAction`] is
    /// never materialised — the tree-walking counterpart of the compiled
    /// executor's quiet mode, so the two can be compared on pure stepping.
    pub fn step_quiet(&mut self, transport: &mut dyn Transport) -> StepOutcome {
        self.step_inner(transport, None, false)
    }

    /// Marks a still-running task as given up by its scheduler (all peers of
    /// the session blocked too); further steps return `Done(Stalled)`.
    pub fn mark_stalled(&mut self) {
        if self.status.is_none() {
            self.status = Some(EndpointStatus::Stalled);
        }
    }

    /// Finishes the task, consuming it into the endpoint's report. A task
    /// that is still mid-protocol is reported as [`EndpointStatus::Stalled`].
    pub fn into_report(self) -> EndpointReport {
        EndpointReport {
            role: self.role,
            actions: self.actions,
            status: self.status.unwrap_or(EndpointStatus::Stalled),
        }
    }

    fn step_inner(
        &mut self,
        transport: &mut dyn Transport,
        observer: Option<&mut dyn FnMut(&ValueAction)>,
        block: bool,
    ) -> StepOutcome {
        if let Some(status) = &self.status {
            return StepOutcome::Done(status.clone());
        }
        match self.try_step(transport, observer, block) {
            Ok(StepOutcome::Done(status)) => {
                self.status = Some(status.clone());
                StepOutcome::Done(status)
            }
            Ok(outcome) => outcome,
            Err(err) => {
                let status = EndpointStatus::Failed {
                    error: err.to_string(),
                };
                self.status = Some(status.clone());
                StepOutcome::Done(status)
            }
        }
    }

    fn try_step(
        &mut self,
        transport: &mut dyn Transport,
        mut observer: Option<&mut dyn FnMut(&ValueAction)>,
        block: bool,
    ) -> Result<StepOutcome> {
        // Advance by *taking ownership* of the process: normalisation and
        // stepping move continuations out of their boxes instead of
        // deep-cloning them ([`admin_normalize_owned`] is a no-op when the
        // head is already a communication, the steady state here). On paths
        // that do not consume the process (`WouldBlock`, and any `Done` —
        // the task never steps again after one) `self.current` is either
        // restored or irrelevant.
        if !self.normalized {
            let mut current =
                admin_normalize_owned(std::mem::replace(&mut self.current, Proc::Finish), &self.externals)?;
            let mut unfolds = 0usize;
            while matches!(current, Proc::Loop(_)) {
                // Typing guarantees loops are guarded, so this terminates
                // for certified processes; the bound turns an unguarded
                // `loop { jump 0 }` into the same `Stuck` error the process
                // compiler reports, instead of spinning forever.
                unfolds += 1;
                if unfolds > 10_000 {
                    return Err(RuntimeError::Process(zooid_proc::ProcError::Stuck {
                        context: "recursion does not reach a communication".to_owned(),
                    }));
                }
                current = admin_normalize_owned(current.unfold_once(), &self.externals)?;
            }
            self.current = current;
            self.normalized = true;
        }
        match std::mem::replace(&mut self.current, Proc::Finish) {
            Proc::Finish => Ok(StepOutcome::Done(EndpointStatus::Finished)),
            Proc::Jump(i) => Err(RuntimeError::Process(zooid_proc::ProcError::UnboundJump {
                index: i,
            })),
            Proc::Send {
                to,
                label,
                payload,
                cont,
            } => {
                if let Some(limit) = self.options.max_steps {
                    if self.steps >= limit {
                        return Ok(StepOutcome::Done(EndpointStatus::StepLimitReached));
                    }
                }
                let value = payload.eval_closed()?;
                let action = if observer.is_some() || self.options.record_actions {
                    let action = ValueAction::send(
                        self.role.clone(),
                        to.clone(),
                        label.clone(),
                        sort_of_value(&value),
                        value.clone(),
                    );
                    // Observe the send *before* handing the message to the
                    // transport: once the frame is in flight the receiver
                    // may report its receive at any moment, and the monitor
                    // must see the send first to recognise the interleaving
                    // as a valid asynchronous trace.
                    if let Some(observer) = observer.as_mut() {
                        observer(&action);
                    }
                    Some(action)
                } else {
                    None
                };
                transport.send(&to, &label, &value)?;
                if self.options.record_actions {
                    self.actions.extend(action);
                }
                self.steps += 1;
                self.current = *cont;
                self.normalized = false;
                Ok(StepOutcome::Progress)
            }
            Proc::Recv { from, alts } => {
                if let Some(limit) = self.options.max_steps {
                    if self.steps >= limit {
                        return Ok(StepOutcome::Done(EndpointStatus::StepLimitReached));
                    }
                }
                let (label, value) = if block {
                    transport.recv(&from)?
                } else {
                    match transport.try_recv(&from)? {
                        Some(message) => message,
                        None => {
                            // The channel is empty: hand the receive back
                            // unconsumed so the retry finds it unchanged.
                            let waiting_on = from.clone();
                            self.current = Proc::Recv { from, alts };
                            return Ok(StepOutcome::WouldBlock { from: waiting_on });
                        }
                    }
                };
                let Some(alt) = alts.iter().find(|a| a.label == label) else {
                    return Err(RuntimeError::UnexpectedMessage { from, label });
                };
                if !value.has_sort(&alt.sort) {
                    return Err(RuntimeError::BadPayload { from, label });
                }
                if observer.is_some() || self.options.record_actions {
                    let action = ValueAction::recv(
                        self.role.clone(),
                        from,
                        label,
                        alt.sort.clone(),
                        value.clone(),
                    );
                    if let Some(observer) = observer.as_mut() {
                        observer(&action);
                    }
                    if self.options.record_actions {
                        self.actions.push(action);
                    }
                }
                let next = alt.cont.subst_value(&alt.var, &value);
                self.steps += 1;
                self.current = next;
                self.normalized = false;
                Ok(StepOutcome::Progress)
            }
            Proc::Loop(_)
            | Proc::Cond { .. }
            | Proc::Read { .. }
            | Proc::Write { .. }
            | Proc::Interact { .. } => {
                unreachable!("admin_normalize removed internal actions and loops")
            }
        }
    }
}

/// The canonical sort of a concrete value (used to label the recorded
/// actions of sends, whose payloads are already evaluated). Shared by the
/// tree-walking and the compiled executor so both record identical actions.
pub(crate) fn sort_of_value(value: &Value) -> Sort {
    match value {
        Value::Unit => Sort::Unit,
        Value::Nat(_) => Sort::Nat,
        Value::Int(_) => Sort::Int,
        Value::Bool(_) => Sort::Bool,
        Value::Str(_) => Sort::Str,
        Value::Inl(v) | Value::Inr(v) => Sort::sum(sort_of_value(v), Sort::Unit),
        Value::Pair(a, b) => Sort::prod(sort_of_value(a), sort_of_value(b)),
        Value::Seq(vs) => Sort::seq(vs.first().map(sort_of_value).unwrap_or(Sort::Unit)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InMemoryNetwork;
    use std::time::Duration;
    use zooid_proc::{Expr, RecvAlt};

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    #[test]
    fn a_single_exchange_runs_to_completion() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut tp = net.take_endpoint(&r("p")).unwrap();
        let mut tq = net.take_endpoint(&r("q")).unwrap();

        let sender = Proc::send(r("q"), "l", Expr::lit(7u64), Proc::Finish);
        let receiver = Proc::recv1(r("p"), "l", Sort::Nat, "x", Proc::Finish);

        let handle = std::thread::spawn(move || {
            execute(&receiver, &r("q"), &mut tq, &Externals::new(), &ExecOptions::default())
        });
        let sender_report = execute(
            &sender,
            &r("p"),
            &mut tp,
            &Externals::new(),
            &ExecOptions::default(),
        );
        let receiver_report = handle.join().unwrap();

        assert!(sender_report.status.is_finished());
        assert!(receiver_report.status.is_finished());
        assert_eq!(sender_report.steps(), 1);
        assert_eq!(receiver_report.steps(), 1);
        assert_eq!(receiver_report.actions[0].value, Value::Nat(7));
        assert_eq!(
            sender_report.erased_trace().actions()[0],
            receiver_report.erased_trace().actions()[0].dual()
        );
    }

    #[test]
    fn received_values_flow_into_later_sends() {
        // q echoes x + 1 back to p.
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut tp = net.take_endpoint(&r("p")).unwrap();
        let mut tq = net.take_endpoint(&r("q")).unwrap();

        let p = Proc::send(
            r("q"),
            "req",
            Expr::lit(41u64),
            Proc::recv1(r("q"), "resp", Sort::Nat, "y", Proc::Finish),
        );
        let q = Proc::recv1(
            r("p"),
            "req",
            Sort::Nat,
            "x",
            Proc::send(
                r("p"),
                "resp",
                Expr::add(Expr::var("x"), Expr::lit(1u64)),
                Proc::Finish,
            ),
        );
        let handle = std::thread::spawn(move || {
            execute(&q, &r("q"), &mut tq, &Externals::new(), &ExecOptions::default())
        });
        let p_report = execute(&p, &r("p"), &mut tp, &Externals::new(), &ExecOptions::default());
        handle.join().unwrap();
        assert_eq!(p_report.actions[1].value, Value::Nat(42));
    }

    #[test]
    fn step_limit_stops_recursive_processes() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut tp = net.take_endpoint(&r("p")).unwrap();
        // p sends forever; we stop it after 10 messages.
        let p = Proc::loop_(Proc::send(r("q"), "tick", Expr::lit(0u64), Proc::Jump(0)));
        let report = execute(
            &p,
            &r("p"),
            &mut tp,
            &Externals::new(),
            &ExecOptions::with_max_steps(10),
        );
        assert_eq!(report.status, EndpointStatus::StepLimitReached);
        assert_eq!(report.steps(), 10);
    }

    #[test]
    fn unexpected_labels_fail_the_execution_with_a_partial_trace() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut tp = net.take_endpoint(&r("p")).unwrap();
        let mut tq = net.take_endpoint(&r("q")).unwrap();
        // p sends a label q does not expect.
        tp.send(&r("q"), &zooid_mpst::Label::new("bogus"), &Value::Unit)
            .unwrap();
        let q = Proc::recv1(r("p"), "expected", Sort::Unit, "x", Proc::Finish);
        let report = execute(&q, &r("q"), &mut tq, &Externals::new(), &ExecOptions::default());
        match report.status {
            EndpointStatus::Failed { error } => assert!(error.contains("unexpected message")),
            other => panic!("expected failure, got {other:?}"),
        }
        assert!(report.actions.is_empty());
    }

    #[test]
    fn bad_payload_sorts_are_detected() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut tp = net.take_endpoint(&r("p")).unwrap();
        let mut tq = net.take_endpoint(&r("q")).unwrap();
        tp.send(&r("q"), &zooid_mpst::Label::new("l"), &Value::Bool(true))
            .unwrap();
        let q = Proc::recv1(r("p"), "l", Sort::Nat, "x", Proc::Finish);
        let report = execute(&q, &r("q"), &mut tq, &Externals::new(), &ExecOptions::default());
        match report.status {
            EndpointStatus::Failed { error } => assert!(error.contains("wrong sort")),
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn waiting_on_a_silent_peer_times_out() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut tq = net.take_endpoint(&r("q")).unwrap();
        tq.set_timeout(Duration::from_millis(20));
        let q = Proc::recv1(r("p"), "l", Sort::Nat, "x", Proc::Finish);
        let report = execute(&q, &r("q"), &mut tq, &Externals::new(), &ExecOptions::default());
        match report.status {
            EndpointStatus::Failed { error } => assert!(error.contains("timed out")),
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn stepping_yields_would_block_until_the_message_arrives() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut tp = net.take_endpoint(&r("p")).unwrap();
        let mut tq = net.take_endpoint(&r("q")).unwrap();

        let receiver = Proc::recv1(r("p"), "l", Sort::Nat, "x", Proc::Finish);
        let mut task = EndpointTask::new(
            receiver,
            r("q"),
            Externals::new(),
            ExecOptions::default(),
        );
        // Nothing sent yet: the task parks without consuming anything.
        assert_eq!(
            task.step(&mut tq, &mut |_| {}),
            StepOutcome::WouldBlock { from: r("p") }
        );
        assert!(!task.is_done());
        tp.send(&r("q"), &zooid_mpst::Label::new("l"), &Value::Nat(7)).unwrap();
        assert_eq!(task.step(&mut tq, &mut |_| {}), StepOutcome::Progress);
        assert_eq!(
            task.step(&mut tq, &mut |_| {}),
            StepOutcome::Done(EndpointStatus::Finished)
        );
        let report = task.into_report();
        assert!(report.status.is_finished());
        assert_eq!(report.actions[0].value, Value::Nat(7));
    }

    #[test]
    fn two_tasks_multiplex_on_a_single_thread() {
        // The whole exchange of `received_values_flow_into_later_sends`, but
        // cooperatively scheduled on this thread instead of two OS threads.
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut tp = net.take_endpoint(&r("p")).unwrap();
        let mut tq = net.take_endpoint(&r("q")).unwrap();

        let p = Proc::send(
            r("q"),
            "req",
            Expr::lit(41u64),
            Proc::recv1(r("q"), "resp", Sort::Nat, "y", Proc::Finish),
        );
        let q = Proc::recv1(
            r("p"),
            "req",
            Sort::Nat,
            "x",
            Proc::send(
                r("p"),
                "resp",
                Expr::add(Expr::var("x"), Expr::lit(1u64)),
                Proc::Finish,
            ),
        );
        let mut tasks = [
            (EndpointTask::new(p, r("p"), Externals::new(), ExecOptions::default()), &mut tp),
            (EndpointTask::new(q, r("q"), Externals::new(), ExecOptions::default()), &mut tq),
        ];
        let mut rounds = 0;
        while tasks.iter().any(|(t, _)| !t.is_done()) {
            rounds += 1;
            assert!(rounds < 100, "cooperative schedule must terminate");
            for (task, transport) in &mut tasks {
                task.step(*transport, &mut |_| {});
            }
        }
        let [(p_task, _), (q_task, _)] = tasks;
        let p_report = p_task.into_report();
        assert!(p_report.status.is_finished());
        assert!(q_task.into_report().status.is_finished());
        assert_eq!(p_report.actions[1].value, Value::Nat(42));
    }

    #[test]
    fn stalled_tasks_report_their_partial_trace() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut tq = net.take_endpoint(&r("q")).unwrap();
        let q = Proc::recv1(r("p"), "l", Sort::Nat, "x", Proc::Finish);
        let mut task = EndpointTask::new(q, r("q"), Externals::new(), ExecOptions::default());
        assert!(matches!(
            task.step(&mut tq, &mut |_| {}),
            StepOutcome::WouldBlock { .. }
        ));
        task.mark_stalled();
        assert_eq!(
            task.step(&mut tq, &mut |_| {}),
            StepOutcome::Done(EndpointStatus::Stalled)
        );
        let report = task.into_report();
        assert_eq!(report.status, EndpointStatus::Stalled);
        assert!(report.actions.is_empty());
    }

    #[test]
    fn external_actions_run_during_execution() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut tp = net.take_endpoint(&r("p")).unwrap();
        let mut tq = net.take_endpoint(&r("q")).unwrap();

        let mut ext = Externals::new();
        ext.register_interact("double", Sort::Nat, Sort::Nat, |v| {
            Value::Nat(v.as_nat().unwrap() * 2)
        });

        // p reads nothing; it interacts to compute 21 * 2 and sends it.
        let p = Proc::interact(
            "double",
            Expr::lit(21u64),
            "y",
            Proc::send(r("q"), "l", Expr::var("y"), Proc::Finish),
        );
        let q = Proc::recv(
            r("p"),
            vec![RecvAlt::new("l", Sort::Nat, "x", Proc::Finish)],
        );
        let handle = std::thread::spawn(move || {
            execute(&q, &r("q"), &mut tq, &Externals::new(), &ExecOptions::default())
        });
        let p_report = execute(&p, &r("p"), &mut tp, &ext, &ExecOptions::default());
        let q_report = handle.join().unwrap();
        assert!(p_report.status.is_finished());
        assert_eq!(q_report.actions[0].value, Value::Nat(42));
    }
}
