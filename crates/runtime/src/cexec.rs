//! The compiled endpoint executor: runs a [`CompiledProc`] program against a
//! transport.
//!
//! This is the data-plane counterpart of what [`zooid_cfsm::CompiledSystem`]
//! did for the verification plane: lower once, run on dense ids. Where the
//! tree-walking [`EndpointTask`](crate::exec::EndpointTask) re-normalises,
//! substitutes and clones its process tree on every visible step, a
//! [`CompiledEndpointTask`] is a program counter plus a slot array:
//!
//! * loop back-edges were resolved at compile time — no `unfold_once`, no
//!   re-normalisation;
//! * received values land in pre-allocated slots and payload expressions
//!   read them by index — no name-keyed substitution;
//! * every send/receive site carries an [`ActionTemplate`] resolved once per
//!   `(program, protocol)` pair: the peer role, label and (statically known)
//!   sort as values for trace recording, and the pre-interned
//!   [`InternedAction`] the live [`CompiledMonitor`](crate::monitor::
//!   CompiledMonitor) consumes without hashing a single string;
//! * on an [`InMemoryTransport`] the task binds every peer to its dense
//!   channel index on first use ([`CompiledEndpointTask::step_mem`]), so
//!   steady-state stepping does no role-string comparison either.
//!
//! The tree-walking executor remains the behavioural oracle: both produce
//! identical traces, statuses and monitor verdicts on every protocol
//! (`tests/compiled_exec.rs` checks this in lockstep, `WouldBlock`
//! interleavings included).

use std::sync::Arc;

use zooid_cfsm::{CompiledSystem, InternedAction};
use zooid_mpst::{Action, Label, Role, Sort};
use zooid_proc::compile::{CompiledProc, Instr};
use zooid_proc::{Externals, Proc, ProcError, Value, ValueAction};

use crate::error::{Result, RuntimeError};
use crate::exec::{sort_of_value, EndpointReport, EndpointStatus, ExecOptions, StepOutcome};
use crate::transport::{InMemoryTransport, Transport};

/// Same bound as the tree-walking semantics: a well-typed process performs
/// finitely many internal actions between communications; the fuel protects
/// against ill-typed ones, with the same error.
pub(crate) const ADMIN_FUEL: usize = 10_000;

/// One communication site of a program, resolved against the protocol: the
/// concrete roles/label/sort for recording the action, and the pre-interned
/// form the compiled monitor accepts without any lookup.
#[derive(Debug, Clone)]
pub struct ActionTemplate {
    /// The partner role (receiver of a send site, sender of a receive arm).
    pub peer: Role,
    /// The message label.
    pub label: Label,
    /// The statically known payload sort: always present for receive arms
    /// (their declared sort), present for send sites whose payload sort
    /// inference succeeded.
    pub static_sort: Option<Sort>,
    /// The action pre-resolved against the protocol's compiled transition
    /// tables, when a [`CompiledSystem`] was supplied and every component of
    /// the action occurs in it.
    pub interned: Option<InternedAction>,
}

/// A compiled program bundled with its per-site [`ActionTemplate`]s —
/// everything a session needs to run one endpoint, shareable (`Arc`) across
/// every session of the same `(protocol, role, process)`.
#[derive(Debug)]
pub struct EndpointProgram {
    program: Arc<CompiledProc>,
    templates: Vec<ActionTemplate>,
}

impl EndpointProgram {
    /// Wraps a compiled program without monitor pre-resolution (actions are
    /// still recorded; a monitor fed through the observer falls back to its
    /// own lookups).
    pub fn new(program: Arc<CompiledProc>) -> Self {
        EndpointProgram::build(program, None)
    }

    /// Wraps a compiled program, pre-resolving every send/receive site
    /// against the protocol's compiled transition tables.
    pub fn with_system(program: Arc<CompiledProc>, system: &CompiledSystem) -> Self {
        EndpointProgram::build(program, Some(system))
    }

    /// Compiles `proc` and wraps it in one go (no monitor pre-resolution).
    ///
    /// # Errors
    ///
    /// Same as [`CompiledProc::compile`].
    pub fn compile(
        proc: &Proc,
        role: &Role,
        externals: &Externals,
    ) -> zooid_proc::Result<Self> {
        Ok(EndpointProgram::new(Arc::new(CompiledProc::compile(
            proc, role, externals,
        )?)))
    }

    fn build(program: Arc<CompiledProc>, system: Option<&CompiledSystem>) -> Self {
        let snapshot = program.snapshot();
        let self_role = program.role().clone();
        let templates = program
            .events()
            .iter()
            .map(|event| {
                let peer = snapshot.role(event.peer).clone();
                let label = snapshot.label(event.label).clone();
                let static_sort = event.static_sort.map(|id| snapshot.sort(id).clone());
                let interned = match (system, &static_sort) {
                    (Some(system), Some(sort)) => {
                        let action = if event.is_send {
                            Action::send(self_role.clone(), peer.clone(), label.clone(), sort.clone())
                        } else {
                            Action::recv(self_role.clone(), peer.clone(), label.clone(), sort.clone())
                        };
                        system.intern_action(&action)
                    }
                    _ => None,
                };
                ActionTemplate {
                    peer,
                    label,
                    static_sort,
                    interned,
                }
            })
            .collect();
        EndpointProgram { program, templates }
    }

    /// The underlying compiled program.
    pub fn program(&self) -> &Arc<CompiledProc> {
        &self.program
    }

    /// The per-site action templates, indexed by event id.
    pub fn templates(&self) -> &[ActionTemplate] {
        &self.templates
    }
}

/// A resumable compiled endpoint execution: the drop-in counterpart of the
/// tree-walking [`EndpointTask`](crate::exec::EndpointTask), with the same
/// step/outcome/report contract and none of the per-step tree work.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use zooid_mpst::{Role, Sort};
/// use zooid_proc::{Expr, Externals, Proc};
/// use zooid_runtime::cexec::{CompiledEndpointTask, EndpointProgram};
/// use zooid_runtime::exec::{ExecOptions, StepOutcome};
/// use zooid_runtime::transport::InMemoryNetwork;
///
/// let mut net = InMemoryNetwork::new([Role::new("p"), Role::new("q")]);
/// let mut tp = net.take_endpoint(&Role::new("p")).unwrap();
/// let p = Proc::send(Role::new("q"), "l", Expr::lit(7u64), Proc::Finish);
/// let program = Arc::new(EndpointProgram::compile(&p, &Role::new("p"), &Externals::new()).unwrap());
/// let mut task = CompiledEndpointTask::new(program, Externals::new(), ExecOptions::default());
/// assert_eq!(task.step_mem(&mut tp, &mut |_, _| {}), StepOutcome::Progress);
/// assert!(matches!(
///     task.step_mem(&mut tp, &mut |_, _| {}),
///     StepOutcome::Done(_)
/// ));
/// ```
#[derive(Debug)]
pub struct CompiledEndpointTask {
    program: Arc<EndpointProgram>,
    role: Role,
    externals: Externals,
    options: ExecOptions,
    pc: u32,
    slots: Vec<Value>,
    /// Dense transport index per interned peer role (`RoleId::index()`),
    /// bound lazily on the in-memory fast path.
    mem_peers: Vec<Option<u32>>,
    actions: Vec<ValueAction>,
    steps: usize,
    status: Option<EndpointStatus>,
}

/// How the stepping loop talks to its transport: the in-memory fast path
/// addresses peers by dense index, the generic path by role.
trait Port {
    fn send(
        &mut self,
        peers: &mut [Option<u32>],
        rid: usize,
        to: &Role,
        label: &Label,
        value: &Value,
    ) -> Result<()>;
    fn recv(
        &mut self,
        peers: &mut [Option<u32>],
        rid: usize,
        from: &Role,
        block: bool,
    ) -> Result<Option<(Label, Value)>>;
}

/// Fast path: peers resolved once to dense [`InMemoryTransport`] indices,
/// frames passed by value with no codec round-trip.
struct MemPort<'a>(&'a mut InMemoryTransport);

impl MemPort<'_> {
    fn index(&self, peers: &mut [Option<u32>], rid: usize, role: &Role) -> Result<usize> {
        if let Some(idx) = peers[rid] {
            return Ok(idx as usize);
        }
        let idx = self
            .0
            .peer_index(role)
            .ok_or_else(|| RuntimeError::UnknownPeer { role: role.clone() })?;
        peers[rid] = Some(idx as u32);
        Ok(idx)
    }
}

impl Port for MemPort<'_> {
    fn send(
        &mut self,
        peers: &mut [Option<u32>],
        rid: usize,
        to: &Role,
        label: &Label,
        value: &Value,
    ) -> Result<()> {
        let idx = self.index(peers, rid, to)?;
        self.0.send_indexed(idx, label.clone(), value.clone())
    }

    fn recv(
        &mut self,
        peers: &mut [Option<u32>],
        rid: usize,
        from: &Role,
        block: bool,
    ) -> Result<Option<(Label, Value)>> {
        let idx = self.index(peers, rid, from)?;
        if block {
            self.0.recv_indexed(idx).map(Some)
        } else {
            self.0.try_recv_indexed(idx)
        }
    }
}

/// Generic path over any [`Transport`] (TCP included): peers addressed by
/// role.
struct DynPort<'a>(&'a mut dyn Transport);

impl Port for DynPort<'_> {
    fn send(
        &mut self,
        _peers: &mut [Option<u32>],
        _rid: usize,
        to: &Role,
        label: &Label,
        value: &Value,
    ) -> Result<()> {
        self.0.send(to, label, value)
    }

    fn recv(
        &mut self,
        _peers: &mut [Option<u32>],
        _rid: usize,
        from: &Role,
        block: bool,
    ) -> Result<Option<(Label, Value)>> {
        if block {
            self.0.recv(from).map(Some)
        } else {
            self.0.try_recv(from)
        }
    }
}

impl CompiledEndpointTask {
    /// Creates a task that will run `program` with the given externals.
    pub fn new(program: Arc<EndpointProgram>, externals: Externals, options: ExecOptions) -> Self {
        let compiled = program.program();
        let role = compiled.role().clone();
        let pc = compiled.entry();
        let slots = vec![Value::Unit; compiled.slot_count()];
        let mem_peers = vec![None; compiled.snapshot().roles().len()];
        CompiledEndpointTask {
            program,
            role,
            externals,
            options,
            pc,
            slots,
            mem_peers,
            actions: Vec::new(),
            steps: 0,
            status: None,
        }
    }

    /// Rebuilds a task from previously extracted execution state: the
    /// program counter, slot values, recorded actions, step count and (if
    /// the endpoint already concluded) its status. This is the slab side of
    /// the batch executor's straggler demotion — a session pulled out of a
    /// [`SessionBatch`](crate::cbatch::SessionBatch) resumes here exactly
    /// where its columns left off.
    #[allow(clippy::too_many_arguments)]
    pub fn resume(
        program: Arc<EndpointProgram>,
        externals: Externals,
        options: ExecOptions,
        pc: u32,
        slots: Vec<Value>,
        actions: Vec<ValueAction>,
        steps: usize,
        status: Option<EndpointStatus>,
    ) -> Self {
        let compiled = program.program();
        let role = compiled.role().clone();
        debug_assert_eq!(slots.len(), compiled.slot_count());
        let mem_peers = vec![None; compiled.snapshot().roles().len()];
        CompiledEndpointTask {
            program,
            role,
            externals,
            options,
            pc,
            slots,
            mem_peers,
            actions,
            steps,
            status,
        }
    }

    /// The role the task plays.
    pub fn role(&self) -> &Role {
        &self.role
    }

    /// The visible communications recorded so far (empty when
    /// [`ExecOptions::record_actions`] is off).
    pub fn actions(&self) -> &[ValueAction] {
        &self.actions
    }

    /// Number of visible communications performed (counted even when
    /// recording is off).
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The current program counter: the flat-table instruction index the
    /// next step will execute. Together with [`CompiledEndpointTask::slots`]
    /// and [`CompiledEndpointTask::status`] this is the whole resumable
    /// execution state a checkpoint must carry for
    /// [`CompiledEndpointTask::resume`].
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// The current value slots, indexed by the program's slot assignment.
    pub fn slots(&self) -> &[Value] {
        &self.slots
    }

    /// The endpoint's conclusion, or `None` while it is still running.
    pub fn status(&self) -> Option<&EndpointStatus> {
        self.status.as_ref()
    }

    /// The execution options the task runs under.
    pub fn options(&self) -> &ExecOptions {
        &self.options
    }

    /// The compiled program the task executes.
    pub fn program(&self) -> &Arc<EndpointProgram> {
        &self.program
    }

    /// Returns `true` once the execution is over.
    pub fn is_done(&self) -> bool {
        self.status.is_some()
    }

    /// Marks a still-running task as given up by its scheduler.
    pub fn mark_stalled(&mut self) {
        if self.status.is_none() {
            self.status = Some(EndpointStatus::Stalled);
        }
    }

    /// Finishes the task, consuming it into the endpoint's report (same
    /// contract as the tree-walking task).
    pub fn into_report(self) -> EndpointReport {
        EndpointReport {
            role: self.role,
            actions: self.actions,
            status: self.status.unwrap_or(EndpointStatus::Stalled),
        }
    }

    /// Advances by at most one visible communication over any transport,
    /// yielding [`StepOutcome::WouldBlock`] on an empty channel.
    ///
    /// The observer receives every action together with its pre-interned
    /// form when the site's template resolved (pass it to
    /// [`CompiledMonitor::observe_interned`](crate::monitor::CompiledMonitor::observe_interned)).
    pub fn step(
        &mut self,
        transport: &mut dyn Transport,
        observer: &mut dyn FnMut(&ValueAction, Option<&InternedAction>),
    ) -> StepOutcome {
        self.step_outer(&mut DynPort(transport), Some(observer), false)
    }

    /// Advances by one visible communication, blocking inside the transport
    /// when the next action is a receive.
    pub fn step_blocking(
        &mut self,
        transport: &mut dyn Transport,
        observer: &mut dyn FnMut(&ValueAction, Option<&InternedAction>),
    ) -> StepOutcome {
        self.step_outer(&mut DynPort(transport), Some(observer), true)
    }

    /// The in-memory fast path: peers addressed by dense index, frames
    /// passed without cloning detours. This is what the session server's
    /// shards call.
    pub fn step_mem(
        &mut self,
        transport: &mut InMemoryTransport,
        observer: &mut dyn FnMut(&ValueAction, Option<&InternedAction>),
    ) -> StepOutcome {
        self.step_outer(&mut MemPort(transport), Some(observer), false)
    }

    /// [`CompiledEndpointTask::step_mem`] without an observer: when trace
    /// recording is off too ([`ExecOptions::record_actions`]), the recorded
    /// [`ValueAction`] is never materialised at all — the true
    /// fire-and-forget stepping cost (transitions, statuses and step counts
    /// are identical to the observed variants).
    pub fn step_mem_quiet(&mut self, transport: &mut InMemoryTransport) -> StepOutcome {
        self.step_outer(&mut MemPort(transport), None, false)
    }

    fn step_outer<P: Port>(
        &mut self,
        port: &mut P,
        observer: Option<&mut dyn FnMut(&ValueAction, Option<&InternedAction>)>,
        block: bool,
    ) -> StepOutcome {
        if let Some(status) = &self.status {
            return StepOutcome::Done(status.clone());
        }
        match self.try_step(port, observer, block) {
            Ok(StepOutcome::Done(status)) => {
                self.status = Some(status.clone());
                StepOutcome::Done(status)
            }
            Ok(outcome) => outcome,
            Err(err) => {
                let status = EndpointStatus::Failed {
                    error: err.to_string(),
                };
                self.status = Some(status.clone());
                StepOutcome::Done(status)
            }
        }
    }

    fn try_step<P: Port>(
        &mut self,
        port: &mut P,
        mut observer: Option<&mut dyn FnMut(&ValueAction, Option<&InternedAction>)>,
        block: bool,
    ) -> Result<StepOutcome> {
        // Field-level borrows: the program is read-only while pc/slots/
        // actions mutate, so no per-step `Arc` traffic is needed.
        let program = &self.program;
        let compiled = program.program();
        let instrs = compiled.instrs();
        let mut admin = 0usize;
        let mut back_edges = 0usize;
        loop {
            match &instrs[self.pc as usize] {
                Instr::Finish => return Ok(StepOutcome::Done(EndpointStatus::Finished)),
                Instr::Cond {
                    cond,
                    then_pc,
                    else_pc,
                } => {
                    let target = if cond.eval(&self.slots)?.as_bool()? {
                        *then_pc
                    } else {
                        *else_pc
                    };
                    self.admin_tick(&mut admin, &mut back_edges, self.pc, target)?;
                    self.pc = target;
                }
                Instr::Read { action, slot, next } => {
                    self.admin_tick(&mut admin, &mut back_edges, self.pc, *next)?;
                    let name = &compiled.action_names()[*action as usize];
                    let result = self.externals.call(name, Value::Unit)?;
                    self.slots[*slot as usize] = result;
                    self.pc = *next;
                }
                Instr::Write { action, arg, next } => {
                    self.admin_tick(&mut admin, &mut back_edges, self.pc, *next)?;
                    let value = arg.eval(&self.slots)?;
                    let name = &compiled.action_names()[*action as usize];
                    self.externals.call(name, value)?;
                    self.pc = *next;
                }
                Instr::Interact {
                    action,
                    arg,
                    slot,
                    next,
                } => {
                    self.admin_tick(&mut admin, &mut back_edges, self.pc, *next)?;
                    let value = arg.eval(&self.slots)?;
                    let name = &compiled.action_names()[*action as usize];
                    let result = self.externals.call(name, value)?;
                    self.slots[*slot as usize] = result;
                    self.pc = *next;
                }
                Instr::Send {
                    peer,
                    payload,
                    event,
                    next,
                    ..
                } => {
                    if let Some(limit) = self.options.max_steps {
                        if self.steps >= limit {
                            return Ok(StepOutcome::Done(EndpointStatus::StepLimitReached));
                        }
                    }
                    let value = payload.eval(&self.slots)?;
                    let template = &program.templates[*event as usize];
                    // Materialise the action only for someone: an observer,
                    // or the recorded trace. The quiet unrecorded path — the
                    // server's fire-and-forget configuration — skips it
                    // entirely.
                    let action = if observer.is_some() || self.options.record_actions {
                        let sort = sort_of_value(&value);
                        // The pre-interned action is only valid when the
                        // runtime sort matches the statically inferred one
                        // (it almost always does); otherwise the observer's
                        // monitor falls back to its own lookups.
                        let interned = match &template.static_sort {
                            Some(static_sort) if *static_sort == sort => {
                                template.interned.as_ref()
                            }
                            _ => None,
                        };
                        let action = ValueAction::send(
                            self.role.clone(),
                            template.peer.clone(),
                            template.label.clone(),
                            sort,
                            value.clone(),
                        );
                        // Same ordering as the tree executor: observe the
                        // send before the frame is in flight.
                        if let Some(observer) = observer.as_mut() {
                            observer(&action, interned);
                        }
                        Some(action)
                    } else {
                        None
                    };
                    port.send(
                        &mut self.mem_peers,
                        peer.index(),
                        &template.peer,
                        &template.label,
                        &value,
                    )?;
                    if self.options.record_actions {
                        self.actions.extend(action);
                    }
                    self.steps += 1;
                    self.pc = *next;
                    return Ok(StepOutcome::Progress);
                }
                Instr::Recv { peer, arms } => {
                    if let Some(limit) = self.options.max_steps {
                        if self.steps >= limit {
                            return Ok(StepOutcome::Done(EndpointStatus::StepLimitReached));
                        }
                    }
                    let from = compiled.snapshot().role(*peer);
                    let Some((label, value)) =
                        port.recv(&mut self.mem_peers, peer.index(), from, block)?
                    else {
                        return Ok(StepOutcome::WouldBlock { from: from.clone() });
                    };
                    let snapshot = compiled.snapshot();
                    let Some(arm) = arms
                        .iter()
                        .find(|arm| snapshot.label(arm.label) == &label)
                    else {
                        return Err(RuntimeError::UnexpectedMessage {
                            from: from.clone(),
                            label,
                        });
                    };
                    let sort = snapshot.sort(arm.sort);
                    if !value.has_sort(sort) {
                        return Err(RuntimeError::BadPayload {
                            from: from.clone(),
                            label,
                        });
                    }
                    let template = &program.templates[arm.event as usize];
                    if observer.is_some() || self.options.record_actions {
                        let action = ValueAction::recv(
                            self.role.clone(),
                            from.clone(),
                            label,
                            sort.clone(),
                            value.clone(),
                        );
                        if let Some(observer) = observer.as_mut() {
                            observer(&action, template.interned.as_ref());
                        }
                        if self.options.record_actions {
                            self.actions.push(action);
                        }
                    }
                    self.slots[arm.slot as usize] = value;
                    self.steps += 1;
                    self.pc = arm.next;
                    return Ok(StepOutcome::Progress);
                }
            }
        }
    }

    /// Counts one internal action against the fuel, matching the tree
    /// semantics: `admin_normalize` gets a fresh fuel tank at every loop
    /// unfolding, so a backward jump (`next <= pc`, which in a compiled
    /// program is exactly a loop back-edge) resets the straight-line
    /// counter — while the back-edges themselves are bounded like the tree
    /// executor's unfoldings, so an all-internal cycle (`loop { if c then
    /// jump 0 else ... }` with `c` forever true) still fails instead of
    /// spinning.
    fn admin_tick(
        &self,
        admin: &mut usize,
        back_edges: &mut usize,
        from_pc: u32,
        to_pc: u32,
    ) -> Result<()> {
        if to_pc <= from_pc {
            *admin = 0;
            *back_edges += 1;
            if *back_edges > ADMIN_FUEL {
                return Err(RuntimeError::Process(ProcError::Stuck {
                    context: "recursion does not reach a communication".to_owned(),
                }));
            }
        }
        *admin += 1;
        // `>=`, not `>`: the tree's `admin_normalize` spends one of its
        // `ADMIN_FUEL` iterations on the final is-it-a-communication check,
        // so it performs at most `ADMIN_FUEL - 1` reductions.
        if *admin >= ADMIN_FUEL {
            return Err(RuntimeError::Process(ProcError::Stuck {
                context: "internal actions did not terminate within the fuel bound".to_owned(),
            }));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InMemoryNetwork;
    use zooid_proc::{Expr, RecvAlt};
    use zooid_mpst::Sort;

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    fn program(proc: &Proc, role: &Role) -> Arc<EndpointProgram> {
        Arc::new(EndpointProgram::compile(proc, role, &Externals::new()).unwrap())
    }

    #[test]
    fn a_compiled_exchange_runs_to_completion_on_one_thread() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut tp = net.take_endpoint(&r("p")).unwrap();
        let mut tq = net.take_endpoint(&r("q")).unwrap();

        let p = Proc::send(
            r("q"),
            "req",
            Expr::lit(41u64),
            Proc::recv1(r("q"), "resp", Sort::Nat, "y", Proc::Finish),
        );
        let q = Proc::recv1(
            r("p"),
            "req",
            Sort::Nat,
            "x",
            Proc::send(
                r("p"),
                "resp",
                Expr::add(Expr::var("x"), Expr::lit(1u64)),
                Proc::Finish,
            ),
        );
        let mut tasks = [
            (
                CompiledEndpointTask::new(program(&p, &r("p")), Externals::new(), ExecOptions::default()),
                &mut tp,
            ),
            (
                CompiledEndpointTask::new(program(&q, &r("q")), Externals::new(), ExecOptions::default()),
                &mut tq,
            ),
        ];
        let mut rounds = 0;
        while tasks.iter().any(|(t, _)| !t.is_done()) {
            rounds += 1;
            assert!(rounds < 100);
            for (task, transport) in &mut tasks {
                task.step_mem(transport, &mut |_, _| {});
            }
        }
        let [(p_task, _), (q_task, _)] = tasks;
        let p_report = p_task.into_report();
        assert!(p_report.status.is_finished());
        assert!(q_task.into_report().status.is_finished());
        assert_eq!(p_report.actions[1].value, Value::Nat(42));
    }

    #[test]
    fn loops_step_without_renormalisation_and_respect_limits() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut tp = net.take_endpoint(&r("p")).unwrap();
        let p = Proc::loop_(Proc::send(r("q"), "tick", Expr::lit(0u64), Proc::Jump(0)));
        let mut task = CompiledEndpointTask::new(
            program(&p, &r("p")),
            Externals::new(),
            ExecOptions::with_max_steps(10),
        );
        loop {
            match task.step_mem(&mut tp, &mut |_, _| {}) {
                StepOutcome::Progress => {}
                StepOutcome::Done(status) => {
                    assert_eq!(status, EndpointStatus::StepLimitReached);
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(task.steps(), 10);
    }

    #[test]
    fn recording_can_be_switched_off_while_steps_still_count() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut tp = net.take_endpoint(&r("p")).unwrap();
        let p = Proc::send(r("q"), "l", Expr::lit(1u64), Proc::Finish);
        let mut observed = 0;
        let mut task = CompiledEndpointTask::new(
            program(&p, &r("p")),
            Externals::new(),
            ExecOptions::default().record_actions(false),
        );
        while !task.is_done() {
            task.step_mem(&mut tp, &mut |_, _| observed += 1);
        }
        assert_eq!(observed, 1, "observers still see every action");
        assert_eq!(task.steps(), 1);
        let report = task.into_report();
        assert!(report.status.is_finished());
        assert!(report.actions.is_empty());
    }

    #[test]
    fn quiet_stepping_matches_observed_stepping() {
        let p = Proc::loop_(Proc::send(r("q"), "tick", Expr::lit(0u64), Proc::Jump(0)));
        let run = |quiet: bool| {
            let mut net = InMemoryNetwork::new([r("p"), r("q")]);
            let mut tp = net.take_endpoint(&r("p")).unwrap();
            let mut task = CompiledEndpointTask::new(
                program(&p, &r("p")),
                Externals::new(),
                ExecOptions::with_max_steps(5).record_actions(false),
            );
            loop {
                let outcome = if quiet {
                    task.step_mem_quiet(&mut tp)
                } else {
                    task.step_mem(&mut tp, &mut |_, _| {})
                };
                if let StepOutcome::Done(status) = outcome {
                    return (status, task.steps());
                }
            }
        };
        assert_eq!(run(true), run(false));
        assert_eq!(run(true).1, 5);
    }

    #[test]
    fn unexpected_labels_fail_like_the_tree_executor() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut tp = net.take_endpoint(&r("p")).unwrap();
        let mut tq = net.take_endpoint(&r("q")).unwrap();
        tp.send(&r("q"), &Label::new("bogus"), &Value::Unit).unwrap();
        let q = Proc::recv(
            r("p"),
            vec![RecvAlt::new("expected", Sort::Unit, "x", Proc::Finish)],
        );
        let mut task =
            CompiledEndpointTask::new(program(&q, &r("q")), Externals::new(), ExecOptions::default());
        match task.step_mem(&mut tq, &mut |_, _| {}) {
            StepOutcome::Done(EndpointStatus::Failed { error }) => {
                assert!(error.contains("unexpected message"), "{error}");
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn would_block_leaves_the_task_resumable() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut tp = net.take_endpoint(&r("p")).unwrap();
        let mut tq = net.take_endpoint(&r("q")).unwrap();
        let q = Proc::recv1(r("p"), "l", Sort::Nat, "x", Proc::Finish);
        let mut task =
            CompiledEndpointTask::new(program(&q, &r("q")), Externals::new(), ExecOptions::default());
        assert_eq!(
            task.step_mem(&mut tq, &mut |_, _| {}),
            StepOutcome::WouldBlock { from: r("p") }
        );
        tp.send(&r("q"), &Label::new("l"), &Value::Nat(7)).unwrap();
        assert_eq!(task.step_mem(&mut tq, &mut |_, _| {}), StepOutcome::Progress);
        assert_eq!(
            task.step_mem(&mut tq, &mut |_, _| {}),
            StepOutcome::Done(EndpointStatus::Finished)
        );
        assert_eq!(task.into_report().actions[0].value, Value::Nat(7));
    }

    #[test]
    fn externals_run_as_internal_actions() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut tp = net.take_endpoint(&r("p")).unwrap();
        let mut tq = net.take_endpoint(&r("q")).unwrap();
        let mut ext = Externals::new();
        ext.register_interact("double", Sort::Nat, Sort::Nat, |v| {
            Value::Nat(v.as_nat().unwrap() * 2)
        });
        let p = Proc::interact(
            "double",
            Expr::lit(21u64),
            "y",
            Proc::send(r("q"), "l", Expr::var("y"), Proc::Finish),
        );
        let q = Proc::recv1(r("p"), "l", Sort::Nat, "x", Proc::Finish);
        let pprog = Arc::new(EndpointProgram::compile(&p, &r("p"), &ext).unwrap());
        let mut ptask = CompiledEndpointTask::new(pprog, ext, ExecOptions::default());
        let mut qtask =
            CompiledEndpointTask::new(program(&q, &r("q")), Externals::new(), ExecOptions::default());
        while !ptask.is_done() {
            ptask.step_mem(&mut tp, &mut |_, _| {});
        }
        while !qtask.is_done() {
            qtask.step_mem(&mut tq, &mut |_, _| {});
        }
        assert_eq!(qtask.into_report().actions[0].value, Value::Nat(42));
    }
}
